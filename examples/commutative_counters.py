"""Semantic locking showcase: high-traffic counters without contention.

The paper's intro lists "arbitrary conflict-based locking" next to Moss'
read/write rule, citing Weihl's atomic data types.  This example runs a
page-view analytics service where dozens of concurrent sessions bump
shared counters: under Moss, every bump takes a write lock and sessions
serialize; under the ``semantic`` policy, bumps commute and run
concurrently -- with undo logs still giving exact subtransaction abort
semantics.

Run:  python examples/commutative_counters.py
"""

import random

from repro.adt import Counter, SetObject
from repro.engine import Engine
from repro.errors import LockDenied

PAGES = ["home", "docs", "pricing", "blog"]


def record_visit(engine, session_id, page, also_fails=False):
    """One analytics transaction: bump the page counter, bump the global
    total, tag the visitor set; optionally a doomed A/B-test leg."""
    with engine.begin_top() as visit:
        visit.perform(page, Counter.bump(1))
        visit.perform("total", Counter.bump(1))
        visit.perform("visitors", SetObject.insert(session_id))
        if also_fails:
            experiment = visit.begin_child()
            experiment.perform("total", Counter.bump(1000))
            experiment.abort()   # undo log removes exactly this bump


def run_workload(policy):
    engine = Engine(
        [Counter(page) for page in PAGES]
        + [Counter("total"), SetObject("visitors")],
        policy=policy,
    )
    rng = random.Random(99)
    concurrent = []
    denials = 0
    visits = 0
    for session_id in range(40):
        page = rng.choice(PAGES)
        try:
            record_visit(
                engine, session_id, page,
                also_fails=(session_id % 5 == 0),
            )
            visits += 1
        except LockDenied:
            denials += 1
        # Keep a few transactions open concurrently to expose conflicts.
        if session_id % 3 == 0:
            txn = engine.begin_top()
            try:
                txn.perform(rng.choice(PAGES), Counter.bump(1))
                concurrent.append(txn)
                visits += 1
            except LockDenied:
                txn.abort()
                denials += 1
    for txn in concurrent:
        txn.commit()
    return engine, visits, denials


def main():
    print("40 sessions + overlapping background bumps:")
    for policy in ("moss-rw", "semantic"):
        engine, visits, denials = run_workload(policy)
        total = engine.object_value("total")
        print(
            "  %-9s visits committed: %2d, lock denials: %2d, "
            "total counter: %d"
            % (policy, visits, denials, total)
        )
        if policy == "semantic":
            assert denials == 0, "commuting bumps must never conflict"
            semantic_total = total
        else:
            moss_denials = denials
    assert moss_denials > 0, "Moss should have hit write-lock conflicts"
    # The doomed A/B legs never leak their +1000 bumps.
    assert semantic_total < 1000
    print("commutative counters example OK")


if __name__ == "__main__":
    main()
