"""Travel booking: Argus-style nested remote services.

The paper's setting is distributed systems like Argus where "providing a
service will often require using other services, [so] the transactions
that implement services ought to be nested."  This example models a travel
agent whose `book_trip` service calls flight, hotel and car services, each
a subtransaction over shared inventory objects:

* the three reservations run as *sibling* subtransactions (they would be
  parallel RPCs in Argus; Moss locking keeps them atomic),
* a sold-out hotel aborts only the hotel leg; the agent retries a cheaper
  hotel rather than cancelling the flight,
* an unbookable trip aborts wholesale, releasing every seat it took.

Run:  python examples/travel_booking.py
"""

import random

from repro.adt import Counter, SetObject
from repro.checking import check_engine_trace
from repro.engine import Engine
from repro.errors import LockDenied

FLIGHT_SEATS = 10
HOTEL_ROOMS = {"grand": 4, "budget": 8}
CARS = 6


def build_inventory():
    objects = [
        Counter("flight-seats", initial=FLIGHT_SEATS),
        Counter("cars", initial=CARS),
        SetObject("manifest"),
    ]
    for hotel, rooms in HOTEL_ROOMS.items():
        objects.append(Counter("rooms-%s" % hotel, initial=rooms))
    return objects


def reserve(txn, counter_name):
    """Take one unit from a counter; abort the leg when sold out."""
    leg = txn.begin_child()
    try:
        remaining = leg.perform(counter_name, Counter.decrement(1))
    except LockDenied:
        leg.abort()
        return False
    if remaining < 0:
        leg.abort()          # undo the decrement: inventory restored
        return False
    leg.commit()
    return True


def book_trip(engine, customer):
    """The top-level service call: flight + hotel (with fallback) + car."""
    with engine.begin_top() as trip:
        if not reserve(trip, "flight-seats"):
            trip.abort()
            return None
        hotel_booked = None
        for hotel in ("grand", "budget"):
            if reserve(trip, "rooms-%s" % hotel):
                hotel_booked = hotel
                break
        if hotel_booked is None:
            trip.abort()     # releases the flight seat too
            return None
        reserve(trip, "cars")  # car is optional: failure tolerated
        manifest = trip.begin_child()
        manifest.perform("manifest", SetObject.insert(customer))
        manifest.commit()
        return hotel_booked
    return None


def main():
    rng = random.Random(7)
    engine = Engine(build_inventory(), trace=True)
    booked = {"grand": 0, "budget": 0}
    refused = 0
    for customer in range(18):
        hotel = book_trip(engine, "customer-%d" % customer)
        if hotel is None:
            refused += 1
        else:
            booked[hotel] += 1

    seats_left = engine.object_value("flight-seats")
    print("booked: %d grand, %d budget; refused: %d"
          % (booked["grand"], booked["budget"], refused))
    print("flight seats left: %d" % seats_left)

    # Inventory invariants: nothing oversold, aborted trips released seats.
    total_booked = booked["grand"] + booked["budget"]
    assert seats_left == FLIGHT_SEATS - total_booked
    assert seats_left >= 0
    for hotel, rooms in HOTEL_ROOMS.items():
        left = engine.object_value("rooms-%s" % hotel)
        assert left == rooms - booked[hotel]
        assert left >= 0
    manifest = engine.object_value("manifest")
    assert len(manifest) == total_booked

    conformance = check_engine_trace(engine)
    print(
        "trace of %d events refines Moss' model: %s; serially correct: %s"
        % (
            conformance.trace_length,
            conformance.refinement_ok,
            conformance.ok,
        )
    )
    assert conformance.ok
    print("travel booking example OK")


if __name__ == "__main__":
    main()
