"""Model checking Moss' algorithm: exhaustive verification on small types.

Where the paper proves Theorem 34 by hand for all system types, this
example *enumerates every schedule* of a small R/W Locking system and
checks serial correctness on each -- plus the degeneration claim: with all
accesses designated writes, the schedule set matches exclusive locking.

Run:  python examples/model_checking.py
"""

from repro.adt import IntRegister
from repro.core import (
    ROOT,
    RWLockingSystem,
    SystemTypeBuilder,
    check_serial_correctness,
)
from repro.ioa import explore_exhaustive


def micro_system(read_second_access):
    builder = SystemTypeBuilder()
    builder.add_object(IntRegister("x"))
    writer = builder.add_child(ROOT)
    builder.add_access(writer, "x", IntRegister.write(1))
    other = builder.add_child(ROOT)
    if read_second_access:
        builder.add_access(other, "x", IntRegister.read())
    else:
        builder.add_access(other, "x", IntRegister.write(2))
    return builder.build()


def reader_pair_system(read_both):
    """Two top-levels each doing one access; readers vs writers."""
    builder = SystemTypeBuilder()
    builder.add_object(IntRegister("x"))
    for index in range(2):
        top = builder.add_child(ROOT)
        if read_both:
            builder.add_access(top, "x", IntRegister.read())
        else:
            builder.add_access(top, "x", IntRegister.write(index))
    return builder.build()


def check_all_schedules(system_type, depth, cap):
    system = RWLockingSystem(system_type)
    result = explore_exhaustive(
        system, max_depth=depth, max_schedules=cap, collect_all=False
    )
    violations = 0
    for alpha in result.maximal_schedules:
        report = check_serial_correctness(system, alpha)
        if not report.ok:
            violations += 1
    return len(result.maximal_schedules), violations


def count_schedules(system_type, depth):
    system = RWLockingSystem(system_type, propose_aborts=False)
    result = explore_exhaustive(system, max_depth=depth)
    return len(result.schedules)


def main():
    print("== Theorem 34 by enumeration ==")
    for label, read_flag in (("read/write", True), ("write/write", False)):
        schedules, violations = check_all_schedules(
            micro_system(read_flag), depth=12, cap=3000
        )
        print(
            "  %s micro system: %4d maximal schedules checked, "
            "%d violations" % (label, schedules, violations)
        )
        assert violations == 0

    print("== Concurrency payoff of the read designation ==")
    read_count = count_schedules(reader_pair_system(True), 13)
    write_count = count_schedules(reader_pair_system(False), 13)
    print(
        "  abort-free schedules up to 13 events: "
        "two readers=%d  two writers=%d" % (read_count, write_count)
    )
    # Read designation permits strictly more interleavings.
    assert read_count > write_count
    print("model checking example OK")


if __name__ == "__main__":
    main()
