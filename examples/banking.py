"""Banking: money transfers with independently-abortable legs.

The scenario the nested-transaction literature is motivated by: a transfer
debits one account and credits another; each leg is a subtransaction so a
failed debit aborts *only its own work* and the parent decides what to do
-- retry against an alternative account, or give up cleanly.  A flat
transaction system would have to abort the entire transfer.

The example runs a batch of randomised transfers between ten accounts,
with insufficient-funds failures handled by falling back to a second
source account, then proves conservation of money and engine/model
conformance.

Run:  python examples/banking.py [--trace banking_trace.json]

With ``--trace`` the run is observed by the :mod:`repro.obs` layer and
exported as a Chrome trace-event file: load it in ``chrome://tracing``
or Perfetto to see one span per transaction, children nested inside
their parents.
"""

import argparse
import random

from repro.adt import BankAccount
from repro.checking import check_engine_trace
from repro.engine import Engine
from repro.errors import LockDenied

ACCOUNTS = ["acct%d" % index for index in range(10)]
INITIAL = 100


def try_transfer(engine, source, fallback, target, amount):
    """One nested transfer: debit source (or fallback), credit target.

    Returns the name of the account actually debited, or None if both
    legs failed and the transfer aborted.
    """
    with engine.begin_top() as transfer:
        debited = None
        for candidate in (source, fallback):
            leg = transfer.begin_child()
            try:
                if leg.perform(candidate, BankAccount.withdraw(amount)):
                    leg.commit()
                    debited = candidate
                    break
                # Insufficient funds: abort just this leg; its read of
                # the balance (and any partial work) is undone.
                leg.abort()
            except LockDenied:
                leg.abort()
        if debited is None:
            transfer.abort()
            return None
        credit = transfer.begin_child()
        credit.perform(target, BankAccount.deposit(amount))
        credit.commit()
    return debited


def total_money(engine):
    return sum(engine.object_value(name) for name in ACCOUNTS)


def main(trace_path=None):
    observer = None
    if trace_path is not None:
        from repro.obs import Observer

        observer = Observer()
    rng = random.Random(2024)
    engine = Engine(
        [BankAccount(name, INITIAL) for name in ACCOUNTS],
        trace=True,
        observer=observer,
    )
    succeeded = 0
    fell_back = 0
    failed = 0
    for _ in range(60):
        source, fallback, target = rng.sample(ACCOUNTS, 3)
        amount = rng.randrange(10, 120)
        debited = try_transfer(engine, source, fallback, target, amount)
        if debited is None:
            failed += 1
        elif debited == fallback:
            fell_back += 1
            succeeded += 1
        else:
            succeeded += 1

    print("transfers: %d ok (%d via fallback), %d aborted"
          % (succeeded, fell_back, failed))
    conservation = total_money(engine)
    print("total money: %d (expected %d)"
          % (conservation, INITIAL * len(ACCOUNTS)))
    assert conservation == INITIAL * len(ACCOUNTS), "money leaked!"

    conformance = check_engine_trace(engine)
    print(
        "trace of %d events refines Moss' model: %s; serially correct: %s"
        % (
            conformance.trace_length,
            conformance.refinement_ok,
            conformance.ok,
        )
    )
    assert conformance.ok
    if observer is not None:
        from repro.obs import write_chrome_trace

        observer.finish()
        write_chrome_trace(trace_path, observer)
        print("span trace written to %s (chrome://tracing / Perfetto)"
              % trace_path)
    print("banking example OK")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="export a Chrome trace-event file of the run",
    )
    main(trace_path=parser.parse_args().trace)
