"""Policy comparison: the system evaluation the paper motivates.

Sweeps the read fraction of a contended workload across the engine's
locking policies (Moss R/W, exclusive locking, flat 2PL, serial execution,
and the Reed-style MVTO extension) and prints throughput / latency /
abort tables.  This is a human-readable preview of benchmark E9.

Run:  python examples/policy_comparison.py
"""

from repro.sim import (
    SimulationConfig,
    WorkloadConfig,
    make_store,
    make_workload,
    run_simulation,
)

POLICIES = ("serial", "exclusive", "flat-2pl", "moss-rw", "mvto")
READ_FRACTIONS = (0.1, 0.5, 0.9)


def sweep(read_fraction):
    config = WorkloadConfig(
        programs=40,
        objects=12,
        read_fraction=read_fraction,
        zipf_skew=0.6,
        depth=2,
        fanout=2,
        accesses_per_block=2,
    )
    programs = make_workload(11, config)
    store = make_store(config)
    rows = []
    for policy in POLICIES:
        metrics = run_simulation(
            programs,
            store,
            SimulationConfig(mpl=8, policy=policy, seed=1),
        )
        rows.append(metrics.row())
    return rows


def print_table(read_fraction, rows):
    print("\nread fraction = %.0f%%" % (read_fraction * 100))
    header = ("policy", "committed", "throughput", "mean_latency",
              "p95_latency", "deadlock_aborts", "restarts")
    print("  " + "  ".join("%-12s" % column for column in header))
    for row in rows:
        print(
            "  "
            + "  ".join("%-12s" % row[column] for column in header)
        )


def main():
    for read_fraction in READ_FRACTIONS:
        rows = sweep(read_fraction)
        print_table(read_fraction, rows)
    print("\npolicy comparison OK")


if __name__ == "__main__":
    main()
