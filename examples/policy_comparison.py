"""Policy comparison: the system evaluation the paper motivates.

Runs the bundled ``bank`` scenario (a skewed debit/credit OLTP mix
against a long-running balance audit -- exactly the reader/writer
tension Moss R/W locking is about) across the engine's locking
policies and prints a league table.  A second sweep rewrites the
scenario's read mix inline to show how the declarative TOML layer
(docs/SCENARIOS.md) replaces the old hand-wired WorkloadConfig.

Run:  python examples/policy_comparison.py
"""

from repro.scenario import (
    compile_scenario,
    get_driver,
    load_library_scenario,
    load_scenario_text,
)

POLICIES = ("serial", "exclusive", "flat-2pl", "moss-rw", "mvto")

#: A custom spec, varied by read mix below: the same declarative text
#: a user would put in their own TOML file.
SWEEP_TOML = """
name = "sweep"
transactions = 40

[arrival]
process = "closed"
clients = 8

[[population]]
name = "r"
kind = "register"
count = 12
zipf_skew = 0.6

[[class]]
name = "work"

[[class.level]]
fanout = 2
accesses = 2
read_fraction = %(read_fraction)s

[[class.level]]
accesses = 2
read_fraction = %(read_fraction)s
"""


def league(compiled):
    rows = []
    for policy in POLICIES:
        result = get_driver("sim").run(compiled, scheme=policy)
        rows.append(result.row())
    return rows


def print_table(title, rows):
    print("\n%s" % title)
    header = ("scheme", "committed", "aborted", "retries",
              "throughput", "p95_latency")
    print("  " + "  ".join("%-11s" % column for column in header))
    for row in rows:
        print(
            "  "
            + "  ".join("%-11s" % row[column] for column in header)
        )


def main():
    bank = compile_scenario(load_library_scenario("bank"), 11,
                            transactions=40)
    print_table(
        "library scenario: bank (digest %s)" % bank.digest()[:16],
        league(bank),
    )
    for read_fraction in (0.1, 0.5, 0.9):
        spec = load_scenario_text(
            SWEEP_TOML % {"read_fraction": read_fraction}
        )
        compiled = compile_scenario(spec, 11)
        print_table(
            "custom spec, read fraction = %.0f%%"
            % (read_fraction * 100),
            league(compiled),
        )
    print("\npolicy comparison OK")


if __name__ == "__main__":
    main()
