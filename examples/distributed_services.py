"""Distributed services: the paper's Argus motivation, measured.

"In general distributed systems like Argus or Clouds, the basic services
are often provided by Remote Procedure Calls ... Since providing a
service will often require using other services, the transactions that
implement services ought to be nested."

This example deploys an order-processing service across sites -- a
front-end site owning customer records, a warehouse site owning stock,
and a ledger site owning accounts -- and compares three placements of the
same nested workload: everything co-located, service-aligned placement
(each program's hot data at its home), and a scattered worst case.

Run:  python examples/distributed_services.py
"""

from repro.adt import IntRegister
from repro.dist import (
    DistributedConfig,
    Topology,
    run_distributed_simulation,
)
from repro.sim import AccessOp, Block, Program

OBJECTS = [
    "customers",
    "stock",
    "ledger",
    "audit-log",
]


def make_order_program(index):
    """One order: check customer, then reserve stock and post to the
    ledger in parallel subtransactions, then append an audit record."""
    check = Block(
        steps=[AccessOp("customers", IntRegister.read(), duration=1.0)]
    )
    fulfil = Block(
        steps=[
            Block(
                steps=[AccessOp("stock", IntRegister.add(-1),
                                duration=1.0)]
            ),
            Block(
                steps=[AccessOp("ledger", IntRegister.add(10),
                                duration=1.0)]
            ),
        ],
        parallel=True,
    )
    audit = Block(
        steps=[AccessOp("audit-log", IntRegister.add(1), duration=0.5)]
    )
    return Program(
        body=Block(steps=[check, fulfil, audit], parallel=False),
        label="order-%d" % index,
    )


def run_placement(label, topology, programs, store):
    metrics = run_distributed_simulation(
        programs,
        store,
        topology,
        DistributedConfig(mpl=4, policy="moss-rw", seed=1),
    )
    print(
        "  %-16s makespan %7.1f   messages %4d   remote %4.0f%%   "
        "2PC rounds %d"
        % (
            label,
            metrics.makespan,
            metrics.messages,
            100 * metrics.remote_fraction,
            metrics.commit_rounds,
        )
    )
    assert metrics.committed == len(programs)
    return metrics


def main():
    store = [IntRegister(name, initial=1000) for name in OBJECTS]
    programs = [make_order_program(index) for index in range(12)]

    print("order service across sites (one-way latency = 2.0):")
    co_located = Topology(
        sites=1, placement={name: 0 for name in OBJECTS},
        one_way_latency=2.0,
    )
    service_aligned = Topology(
        sites=3,
        placement={
            "customers": 0,
            "stock": 1,
            "ledger": 2,
            "audit-log": 0,
        },
        one_way_latency=2.0,
    )
    scattered = Topology(
        sites=4,
        placement={name: (i + 1) % 4 for i, name in enumerate(OBJECTS)},
        one_way_latency=2.0,
    )
    local = run_placement("co-located", co_located, programs, store)
    aligned = run_placement(
        "service-aligned", service_aligned, programs, store
    )
    run_placement("scattered", scattered, programs, store)

    assert local.messages == 0
    assert aligned.messages > 0
    print("distributed services example OK")


if __name__ == "__main__":
    main()
