"""Quickstart: the three layers of the library in one file.

1. Build a nested-transaction *system type* (the paper's Section 3 tree).
2. Run its R/W Locking system (Moss' algorithm, Section 5) and check the
   main theorem: every schedule is serially correct for non-orphans.
3. Do the same work through the executable engine and verify the engine
   trace refines the formal model.

Run:  python examples/quickstart.py
"""

import random

from repro.adt import BankAccount, IntRegister
from repro.checking import check_engine_trace
from repro.core import (
    ROOT,
    RWLockingSystem,
    SystemTypeBuilder,
    check_serial_correctness,
)
from repro.engine import Engine
from repro.ioa import random_schedule


def build_system_type():
    """Two top-level transactions sharing a register and an account."""
    builder = SystemTypeBuilder()
    builder.add_object(IntRegister("x"))
    builder.add_object(BankAccount("acct", 100))

    transfer = builder.add_child(ROOT)
    leg = builder.add_child(transfer)
    builder.add_access(leg, "acct", BankAccount.withdraw(30))
    builder.add_access(leg, "x", IntRegister.add(1))

    audit = builder.add_child(ROOT)
    builder.add_access(audit, "acct", BankAccount.balance())
    builder.add_access(audit, "x", IntRegister.read())
    return builder.build()


def demo_model():
    print("== Formal model: Moss' algorithm as I/O automata ==")
    system_type = build_system_type()
    system = RWLockingSystem(system_type)
    rng = random.Random(42)
    for trial in range(3):
        alpha = random_schedule(system, 300, rng)
        report = check_serial_correctness(system, alpha)
        checked = len(report.reports)
        print(
            "  run %d: %3d events, %d transactions checked, "
            "serially correct: %s"
            % (trial, len(alpha), checked, report.ok)
        )
        assert report.ok


def demo_engine():
    print("== Executable engine: same algorithm, database-style API ==")
    engine = Engine(
        [BankAccount("a", 100), BankAccount("b", 0)], trace=True
    )
    with engine.begin_top() as transfer:
        with transfer.begin_child() as leg:
            ok = leg.perform("a", BankAccount.withdraw(30))
            assert ok is True
            leg.perform("b", BankAccount.deposit(30))
    print("  committed balances: a=%d b=%d"
          % (engine.object_value("a"), engine.object_value("b")))

    # A subtransaction abort restores state without touching the parent.
    with engine.begin_top() as txn:
        doomed = txn.begin_child()
        doomed.perform("a", BankAccount.withdraw(70))
        doomed.abort()
        balance = txn.perform("a", BankAccount.balance())
        print("  after child abort, parent still sees a=%d" % balance)

    conformance = check_engine_trace(engine)
    print(
        "  engine trace (%d events) refines the model: %s; "
        "serially correct: %s"
        % (
            conformance.trace_length,
            conformance.refinement_ok,
            conformance.ok,
        )
    )
    assert conformance.ok


if __name__ == "__main__":
    demo_model()
    demo_engine()
    print("quickstart OK")
