"""E3 (Lemmas 5, 26) and E4 (Lemma 6): structural guarantees.

Paper claims: every serial schedule and every concurrent schedule is
well-formed; in serial schedules only ancestrally-related transactions are
ever concurrently live.

Reproduction: generate schedules from both systems and check the
definitions on every schedule (and, for Lemma 6, every prefix).
"""

from conftest import print_table, run_once

from repro.checking.random_systems import random_system_type
from repro.core.systems import RWLockingSystem, SerialSystem
from repro.core.visibility import live_transactions
from repro.core.wellformed import is_well_formed
from repro.ioa.explorer import random_schedules


def test_e3_well_formedness(benchmark):
    def experiment():
        rows = []
        violations = 0
        for system_seed in range(4):
            system_type = random_system_type(system_seed)
            serial_bad = 0
            concurrent_bad = 0
            serial_events = 0
            concurrent_events = 0
            serial = SerialSystem(system_type)
            for alpha in random_schedules(
                serial, 5, 300, seed=system_seed
            ):
                serial_events += len(alpha)
                if not is_well_formed(system_type, alpha):
                    serial_bad += 1
            concurrent = RWLockingSystem(system_type)
            for alpha in random_schedules(
                concurrent, 5, 300, seed=system_seed
            ):
                concurrent_events += len(alpha)
                if not is_well_formed(system_type, alpha, locking=True):
                    concurrent_bad += 1
            violations += serial_bad + concurrent_bad
            rows.append(
                {
                    "system_seed": system_seed,
                    "serial_events": serial_events,
                    "serial_violations": serial_bad,
                    "concurrent_events": concurrent_events,
                    "concurrent_violations": concurrent_bad,
                }
            )
        return rows, violations

    rows, violations = run_once(benchmark, experiment)
    print_table("E3: well-formedness (Lemmas 5, 26)", rows)
    assert violations == 0


def test_e4_serial_liveness_chain(benchmark):
    """Lemma 6, checked on every prefix of every serial schedule."""

    def experiment():
        rows = []
        violations = 0
        for system_seed in range(4):
            system_type = random_system_type(system_seed)
            serial = SerialSystem(system_type)
            prefixes = 0
            for alpha in random_schedules(
                serial, 5, 300, seed=system_seed + 40
            ):
                prefix = []
                for event in alpha:
                    prefix.append(event)
                    prefixes += 1
                    live = sorted(live_transactions(prefix))
                    for index in range(len(live) - 1):
                        a, b = live[index], live[index + 1]
                        if b[: len(a)] != a:
                            violations += 1
            rows.append(
                {
                    "system_seed": system_seed,
                    "prefixes_checked": prefixes,
                    "violations": violations,
                }
            )
        return rows, violations

    rows, violations = run_once(benchmark, experiment)
    print_table("E4: serial liveness chains (Lemma 6)", rows)
    assert violations == 0
