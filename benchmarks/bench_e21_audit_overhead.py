"""E21 (audit-overhead guard): audited vs unaudited hot path.

Not a paper claim -- the cost ceiling of the online serializability
auditor (``repro.audit``) on the thread-safe facade's hot path.  Three
regimes drive an identical top-level commit loop:

* ``unaudited``   -- the facade as shipped, no observer attached;
* ``audited-full``-- auditor attached with ``sample_every=1`` (what
  the fuzzer-as-oracle and experimental schemes pay);
* ``sampled-16``  -- auditor attached with ``sample_every=16`` (the
  capability-dial default for model-conformant schemes).

The guard asserts the production promise: full auditing costs < 25%
throughput, sampled auditing < 5% (quick mode relaxes the sampled
bound to 15% -- sub-5% cannot be resolved above timer noise at smoke
op counts).  Machine-level drift (CPU frequency, noisy neighbours on
shared CI) dwarfs the effect under test, so the regimes are measured
*interleaved*: every round times all three back-to-back and the guard
takes each regime's minimum per-round overhead -- drift inflates some
rounds' ratios but the cleanest round approaches the true cost.

Environment knobs (for the CI audit-smoke job):

* ``E21_QUICK=1`` shrinks the op counts to smoke-test size;
* ``E21_JSON=<path>`` overrides where the JSON artifact is written
  (default: ``BENCH_E21.json`` at the repo root).
"""

import json
import os
import time

from conftest import print_table, run_once

from repro.adt import Counter
from repro.audit import AuditConfig
from repro.engine.threadsafe import ThreadSafeEngine

#: Interleaved rounds; the guard keeps each regime's *cleanest* round.
ROUNDS = 5


def _one_run(sample_every, tops):
    """Time one run of the commit loop; returns (tops/sec, report)."""
    facade = ThreadSafeEngine(
        [Counter("h"), Counter("k")], policy="moss-rw"
    )
    auditor = None
    if sample_every is not None:
        auditor = facade.attach_auditor(
            config=AuditConfig(sample_every=sample_every)
        )
    increment = Counter.increment(1)
    value = Counter.value()
    started = time.perf_counter()
    for _ in range(tops):
        top = facade.begin_top()
        top.perform("h", increment)
        top.perform("k", value)
        top.perform("h", value)
        top.commit()
    elapsed = time.perf_counter() - started
    report = auditor.report() if auditor is not None else None
    return tops / max(elapsed, 1e-9), report


def test_e21_audit_overhead(benchmark):
    quick = bool(os.environ.get("E21_QUICK"))
    tops = 600 if quick else 6_000

    def experiment():
        regimes = (
            ("unaudited", None),
            ("audited-full", 1),
            ("sampled-16", 16),
        )
        # Warm-up pass: JIT-free Python still pays first-touch costs
        # (imports, allocator growth, branch caches) that would land
        # on whichever regime runs first.
        for _, sample_every in regimes:
            _one_run(sample_every, max(tops // 10, 50))

        best = {name: 0.0 for name, _ in regimes}
        overhead = {name: 1.0 for name, _ in regimes}
        reports = {}
        for _ in range(ROUNDS):
            round_tps = {}
            for name, sample_every in regimes:
                tps, report = _one_run(sample_every, tops)
                round_tps[name] = tps
                best[name] = max(best[name], tps)
                if report is not None:
                    reports[name] = report
            baseline = round_tps["unaudited"]
            for name, _ in regimes:
                overhead[name] = min(
                    overhead[name],
                    max(0.0, 1.0 - round_tps[name] / baseline),
                )

        def row(regime):
            report = reports.get(regime)
            return {
                "regime": regime,
                "tops_per_sec": int(best[regime]),
                "overhead_pct": round(100 * overhead[regime], 1),
                "audited": (
                    report.stats["tops_audited"] if report else 0
                ),
                "collected": (
                    report.stats["vertices_collected"] if report else 0
                ),
                "verdict": report.verdict if report else "-",
            }

        return [row(name) for name, _ in regimes]

    rows = run_once(benchmark, experiment)
    print_table("E21: online-audit overhead (threadsafe hot path)", rows)

    json_path = os.environ.get("E21_JSON") or os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        os.pardir,
        "BENCH_E21.json",
    )
    with open(json_path, "w") as handle:
        json.dump(
            {"experiment": "e21_audit_overhead", "rows": rows},
            handle,
            indent=2,
        )

    by_regime = {row["regime"]: row for row in rows}
    # Auditing must never change verdicts on a correct scheme, and the
    # graph must actually be collected (bounded memory on the hot path).
    for regime in ("audited-full", "sampled-16"):
        assert by_regime[regime]["verdict"] == "clean"
        assert by_regime[regime]["collected"] > 0
    # The cost ceilings.
    assert by_regime["audited-full"]["overhead_pct"] < 25.0, rows
    sampled_budget = 15.0 if quick else 5.0
    assert (
        by_regime["sampled-16"]["overhead_pct"] < sampled_budget
    ), rows
