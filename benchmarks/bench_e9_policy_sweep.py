"""E9 (the motivating evaluation): locking-policy throughput sweep.

The paper's introduction motivates R/W locking over exclusive locking by
read concurrency, and nested transactions by structured concurrency.  The
paper itself runs no experiments; this bench supplies the standard
evaluation: throughput and latency of moss-rw vs exclusive vs flat-2pl vs
serial execution across a read-fraction sweep on a contended workload.

Expected shape (recorded in EXPERIMENTS.md): moss-rw tracks exclusive at
0% reads (degeneration) and pulls away as the read fraction grows; serial
execution wins under extreme contention (no wasted work) and loses its
lead as read sharing rises.
"""

from conftest import print_table, run_once

from repro.sim import (
    SimulationConfig,
    WorkloadConfig,
    make_store,
    make_workload,
    run_simulation,
)

POLICIES = ("serial", "exclusive", "flat-2pl", "moss-rw")


def sweep_row(policy, read_fraction, programs, store):
    metrics = run_simulation(
        programs,
        store,
        SimulationConfig(mpl=8, policy=policy, seed=2),
    )
    return {
        "read_fraction": read_fraction,
        "policy": policy,
        "committed": metrics.committed,
        "throughput": round(metrics.throughput, 3),
        "mean_latency": round(metrics.mean_latency, 2),
        "p95_latency": round(metrics.p95_latency, 2),
        "deadlock_aborts": metrics.deadlock_aborts,
        "wasted": round(metrics.wasted_access_fraction, 3),
    }


def test_e9_read_fraction_sweep(benchmark):
    def experiment():
        rows = []
        for read_fraction in (0.0, 0.25, 0.5, 0.75, 0.95):
            config = WorkloadConfig(
                programs=30,
                objects=10,
                read_fraction=read_fraction,
                zipf_skew=0.6,
                depth=2,
                fanout=2,
                accesses_per_block=2,
            )
            programs = make_workload(3, config)
            store = make_store(config)
            for policy in POLICIES:
                rows.append(
                    sweep_row(policy, read_fraction, programs, store)
                )
        return rows

    rows = run_once(benchmark, experiment)
    print_table("E9: policy x read-fraction sweep", rows)

    def throughput(policy, fraction):
        return next(
            row["throughput"]
            for row in rows
            if row["policy"] == policy
            and row["read_fraction"] == fraction
        )

    # Everyone commits the whole workload.
    assert all(row["committed"] == 30 for row in rows)
    # Shape 1: read sharing pays -- moss-rw beats exclusive at high reads.
    assert throughput("moss-rw", 0.95) > throughput("exclusive", 0.95)
    # Shape 2: the gap is larger at 95% reads than at 0% reads.
    gap_high = throughput("moss-rw", 0.95) / throughput("exclusive", 0.95)
    gap_low = throughput("moss-rw", 0.0) / throughput("exclusive", 0.0)
    assert gap_high > gap_low
    # Shape 3: moss-rw overtakes serial execution at high read fractions.
    assert throughput("moss-rw", 0.95) > throughput("serial", 0.95)


def test_e9_mpl_scaling(benchmark):
    """Throughput vs multiprogramming level on a read-heavy workload."""

    def experiment():
        config = WorkloadConfig(
            programs=30, objects=12, read_fraction=0.8, zipf_skew=0.4
        )
        programs = make_workload(5, config)
        store = make_store(config)
        rows = []
        for mpl in (1, 2, 4, 8, 16):
            metrics = run_simulation(
                programs,
                store,
                SimulationConfig(mpl=mpl, policy="moss-rw", seed=4),
            )
            rows.append(
                {
                    "mpl": mpl,
                    "throughput": round(metrics.throughput, 3),
                    "mean_latency": round(metrics.mean_latency, 2),
                    "deadlock_aborts": metrics.deadlock_aborts,
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    print_table("E9b: moss-rw throughput vs MPL", rows)
    # Concurrency pays at moderate MPL; under heavy contention the curve
    # may bend back down (lock thrashing), so assert the peak, not the
    # endpoint.
    peak = max(row["throughput"] for row in rows)
    assert peak > rows[0]["throughput"]


def test_e9c_open_system_response_time(benchmark):
    """Open-system arrivals: response time vs offered load (the classic
    knee curve)."""

    def experiment():
        config = WorkloadConfig(
            programs=40, objects=12, read_fraction=0.8, zipf_skew=0.3
        )
        programs = make_workload(7, config)
        store = make_store(config)
        rows = []
        for rate in (0.05, 0.2, 0.8, 3.2):
            metrics = run_simulation(
                programs,
                store,
                SimulationConfig(
                    mpl=4, policy="moss-rw", seed=6, arrival_rate=rate
                ),
            )
            rows.append(
                {
                    "arrival_rate": rate,
                    "committed": metrics.committed,
                    "mean_response": round(metrics.mean_latency, 2),
                    "p95_response": round(metrics.p95_latency, 2),
                    "makespan": round(metrics.makespan, 1),
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    print_table("E9c: open-system response time vs offered load", rows)
    assert all(row["committed"] == 40 for row in rows)
    responses = [row["mean_response"] for row in rows]
    # Response time rises monotonically toward saturation.
    assert responses[-1] > responses[0]
