"""E22 (WAL-overhead guard): logged vs unlogged commit hot path.

Not a paper claim -- the cost ceiling of the write-ahead log
(``repro.wal``) on the thread-safe facade's hot path.  Three regimes
drive an identical top-level commit loop:

* ``no-wal``      -- the facade as shipped, no log attached;
* ``wal-memory``  -- WAL attached with the in-memory sink (what the
  crash-fuzzing harness and the matrix tests pay);
* ``wal-file``    -- WAL attached with the file sink into a scratch
  directory, fsync on every top-level commit (the durable deployment
  shape; reported for context, not guarded -- fsync cost is the
  device's, not the code's).

The guard asserts the production promise: in-memory logging costs
< 20% commit throughput.  A recovery cross-check replays the
``wal-memory`` log and asserts the recovered committed values match
the live engine, so the benchmark cannot pass while logging garbage.

Machine-level drift (CPU frequency, noisy neighbours on shared CI)
dwarfs the effect under test, so the regimes are measured
*interleaved*: every round times all regimes back-to-back and the
guard takes each regime's minimum per-round overhead -- drift inflates
some rounds' ratios but the cleanest round approaches the true cost.

Environment knobs (for the CI recovery-smoke job):

* ``E22_QUICK=1`` shrinks the op counts to smoke-test size;
* ``E22_JSON=<path>`` overrides where the JSON artifact is written
  (default: ``BENCH_E22.json`` at the repo root).
"""

import json
import os
import shutil
import tempfile
import threading
import time

from conftest import print_table, run_once

from repro.adt import Counter
from repro.engine.threadsafe import ThreadSafeEngine
from repro.wal import FileWalSink, recover
from repro.wal.log import GroupCommitSink

#: Interleaved rounds; the guard keeps each regime's *cleanest* round.
#: Overhead estimates converge to the true cost from above as rounds
#: are added (drift only ever inflates a round), so more rounds means
#: a tighter -- never a laxer -- estimate.
ROUNDS = 7


def _one_run(sink_kind, tops):
    """Time one run of the commit loop; returns (tops/sec, wal)."""
    facade = ThreadSafeEngine(
        [Counter("h"), Counter("k")], policy="moss-rw"
    )
    wal = None
    scratch = None
    if sink_kind == "memory":
        wal = facade.attach_wal()
    elif sink_kind == "file":
        scratch = tempfile.mkdtemp(prefix="bench-e22-")
        wal = facade.attach_wal(sink=FileWalSink(scratch))
    increment = Counter.increment(1)
    value = Counter.value()
    started = time.perf_counter()
    for _ in range(tops):
        top = facade.begin_top()
        top.perform("h", increment)
        top.perform("k", value)
        top.perform("h", value)
        top.commit()
    elapsed = time.perf_counter() - started
    data = None
    if wal is not None and sink_kind == "memory":
        data = wal.sink.getvalue()
    stats = dict(wal.stats) if wal is not None else {}
    if scratch is not None:
        shutil.rmtree(scratch, ignore_errors=True)
    return tops / max(elapsed, 1e-9), data, stats


def test_e22_wal_overhead(benchmark):
    quick = bool(os.environ.get("E22_QUICK"))
    tops = 600 if quick else 6_000

    def experiment():
        regimes = ("no-wal", "wal-memory", "wal-file")
        # Warm-up pass: JIT-free Python still pays first-touch costs
        # (imports, allocator growth, branch caches) that would land
        # on whichever regime runs first.
        for sink_kind in (None, "memory", "file"):
            _one_run(sink_kind, max(tops // 10, 50))

        best = {name: 0.0 for name in regimes}
        rounds = {name: [] for name in regimes}
        stats = {}
        last_log = None
        for _ in range(ROUNDS):
            round_tps = {}
            for name in regimes:
                sink_kind = {
                    "no-wal": None,
                    "wal-memory": "memory",
                    "wal-file": "file",
                }[name]
                tps, data, run_stats = _one_run(sink_kind, tops)
                round_tps[name] = tps
                best[name] = max(best[name], tps)
                if run_stats:
                    stats[name] = run_stats
                if data is not None:
                    last_log = data
            baseline = round_tps["no-wal"]
            for name in regimes:
                rounds[name].append(
                    max(0.0, 1.0 - round_tps[name] / baseline)
                )
        # The guard takes the cleanest round (drift only inflates a
        # round, so the min bounds the true cost from above); the
        # median is reported alongside so the artifact also shows a
        # typical noisy-round figure.
        overhead = {name: min(rounds[name]) for name in regimes}
        median = {
            name: sorted(rounds[name])[ROUNDS // 2] for name in regimes
        }

        # Recovery cross-check: the log the benchmark just paid for
        # must replay to the values the live engine computed.
        state = recover(last_log)
        assert state.report.verdict == "complete"
        assert state.report.committed == {"h": tops, "k": 0}

        def row(regime):
            run_stats = stats.get(regime, {})
            return {
                "regime": regime,
                "tops_per_sec": int(best[regime]),
                "overhead_pct": round(100 * overhead[regime], 1),
                "overhead_median_pct": round(100 * median[regime], 1),
                "appends": run_stats.get("appends", 0),
                "bytes": run_stats.get("bytes", 0),
                "fsyncs": run_stats.get("fsyncs", 0),
            }

        return [row(name) for name in regimes]

    rows = run_once(benchmark, experiment)
    print_table("E22: WAL overhead (threadsafe hot path)", rows)

    json_path = os.environ.get("E22_JSON") or os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        os.pardir,
        "BENCH_E22.json",
    )
    with open(json_path, "w") as handle:
        json.dump(
            {"experiment": "e22_wal_overhead", "rows": rows},
            handle,
            indent=2,
        )

    by_regime = {row["regime"]: row for row in rows}
    # Every commit loop iteration logs BEGIN + 3 ACQUIREs + COMMIT; the
    # append counts prove the logged regimes actually logged.
    for regime in ("wal-memory", "wal-file"):
        assert by_regime[regime]["appends"] >= 5 * tops
        assert by_regime[regime]["bytes"] > 0
    assert by_regime["wal-file"]["fsyncs"] >= tops
    # The cost ceiling (in-memory sink only: the file regime's fsync
    # cost belongs to the device, not the hot path under guard).
    assert by_regime["wal-memory"]["overhead_pct"] < 20.0, rows


def _group_run(sink_factory, threads, tops):
    """Concurrent commit loop against one file-backed sink regime."""
    scratch = tempfile.mkdtemp(prefix="bench-e22g-")
    specs = [Counter("own%d" % index) for index in range(threads)]
    facade = ThreadSafeEngine(specs, policy="moss-rw")
    wal = facade.attach_wal(sink=sink_factory(scratch))
    barrier = threading.Barrier(threads + 1)
    increment = Counter.increment(1)

    def worker(worker_id):
        name = "own%d" % worker_id
        barrier.wait()
        for _ in range(tops):
            top = facade.begin_top()
            top.perform(name, increment)
            top.commit()

    pool = [
        threading.Thread(target=worker, args=(worker_id,))
        for worker_id in range(threads)
    ]
    for thread in pool:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - started
    stats = dict(wal.stats)
    wal.close()
    shutil.rmtree(scratch, ignore_errors=True)
    return threads * tops / max(elapsed, 1e-9), stats


def test_e22_group_commit_delta(benchmark):
    """Group commit: coalesced fsyncs under concurrent committers.

    The per-commit flush is the fsync regime's whole cost (E22 above
    prices it); :class:`GroupCommitSink` lets concurrent top-level
    commits share one fsync inside a small window.  This delta drives
    the same facade from 4 threads with both sinks and reports the
    fsync counts -- the coalescing is the point, so the guard asserts
    the group regime issued strictly fewer fsyncs than commits.
    """
    quick = bool(os.environ.get("E22_QUICK"))
    threads = 4
    tops = 60 if quick else 300

    def experiment():
        _group_run(FileWalSink, threads, max(tops // 10, 10))  # warm
        rows = []
        for regime, factory in (
            ("fsync-per-commit", FileWalSink),
            (
                "group-commit-2ms",
                lambda path: GroupCommitSink(path, window_ms=2.0),
            ),
        ):
            tps, stats = _group_run(factory, threads, tops)
            rows.append(
                {
                    "regime": regime,
                    "threads": threads,
                    "commits": threads * tops,
                    "tops_per_sec": int(tps),
                    "flushes": stats.get("flushes", 0),
                    "fsyncs": stats.get("fsyncs", 0),
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    for row in rows:
        row["fsyncs_per_commit"] = round(
            row["fsyncs"] / max(row["commits"], 1), 3
        )
    print_table("E22 delta: group commit fsync coalescing", rows)

    json_path = os.environ.get("E22_JSON") or os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        os.pardir,
        "BENCH_E22.json",
    )
    payload = {"experiment": "e22_wal_overhead", "rows": []}
    if os.path.exists(json_path):
        with open(json_path) as handle:
            payload = json.load(handle)
    payload["group_commit_rows"] = rows
    with open(json_path, "w") as handle:
        json.dump(payload, handle, indent=2)

    by_regime = {row["regime"]: row for row in rows}
    base = by_regime["fsync-per-commit"]
    group = by_regime["group-commit-2ms"]
    # The per-commit regime pays at least one fsync per commit; group
    # commit must have actually coalesced (fewer fsyncs than commits)
    # without losing durability accounting (every flush acknowledged).
    assert base["fsyncs"] >= base["commits"]
    assert group["fsyncs"] > 0
    assert group["fsyncs"] < group["commits"], rows
