"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one experiment from DESIGN.md's index (E1-E14)
and prints the rows/series it reports, so ``pytest benchmarks/
--benchmark-only -s`` reproduces the EXPERIMENTS.md tables.  Timings are
collected with one round per experiment: the quantity of interest is the
experiment's *output*, not its wall-clock, but pytest-benchmark still
records how long each reproduction takes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark; return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def print_table(title: str, rows: Sequence[Dict]) -> None:
    """Print rows as an aligned table (the series the experiment reports)."""
    print("\n== %s ==" % title)
    if not rows:
        print("  (no rows)")
        return
    columns = list(rows[0].keys())
    widths = {
        column: max(
            len(str(column)),
            max(len(str(row.get(column, ""))) for row in rows),
        )
        for column in columns
    }
    header = "  ".join(
        str(column).ljust(widths[column]) for column in columns
    )
    print("  " + header)
    print("  " + "-" * len(header))
    for row in rows:
        print(
            "  "
            + "  ".join(
                str(row.get(column, "")).ljust(widths[column])
                for column in columns
            )
        )
