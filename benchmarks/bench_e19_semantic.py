"""E19 (extension, [We]): commutativity-based locking vs Moss R/W.

The paper's introduction cites "arbitrary conflict-based locking" and
Weihl's atomic data types [We]; its closing Section 4.3 remark ("it is
legitimate to designate all accesses as writes") frames Moss' read/write
rule as a point on a spectrum of conflict relations.  This bench measures
the other direction: a *finer* relation where commuting operations
(counter bumps, set operations on distinct elements, account credits)
never conflict, with undo-log recovery replacing Moss' version map.

Expected shapes: on a bump-heavy counter hotspot the semantic policy
dominates Moss by a widening margin as skew grows; on plain read/write
register workloads the two coincide (the relation degenerates to Moss').
"""

from conftest import print_table, run_once

from repro.sim import (
    SimulationConfig,
    WorkloadConfig,
    make_store,
    make_workload,
    run_simulation,
)


def run_case(policy, object_kind, skew, read_fraction, seed=3):
    config = WorkloadConfig(
        programs=30,
        objects=4,
        read_fraction=read_fraction,
        zipf_skew=skew,
        depth=2,
        fanout=2,
        accesses_per_block=2,
        object_kind=object_kind,
    )
    programs = make_workload(5, config)
    return run_simulation(
        programs,
        make_store(config),
        SimulationConfig(mpl=8, policy=policy, seed=seed),
    )


def test_e19_commutative_hotspot(benchmark):
    def experiment():
        rows = []
        for skew in (0.0, 1.0):
            for policy in ("moss-rw", "semantic"):
                metrics = run_case(
                    policy, "commutative", skew, read_fraction=0.1
                )
                rows.append(
                    {
                        "zipf_skew": skew,
                        "policy": policy,
                        "committed": metrics.committed,
                        "throughput": round(metrics.throughput, 3),
                        "mean_latency": round(metrics.mean_latency, 2),
                        "deadlock_aborts": metrics.deadlock_aborts,
                    }
                )
        return rows

    rows = run_once(benchmark, experiment)
    print_table("E19: semantic vs Moss on a bump hotspot", rows)

    def throughput(policy, skew):
        return next(
            row["throughput"]
            for row in rows
            if row["policy"] == policy and row["zipf_skew"] == skew
        )

    assert all(row["committed"] == 30 for row in rows)
    # Commuting bumps buy a large margin at any skew: with only 4
    # counters the workload is hot even unskewed, so the gap is wide
    # everywhere rather than widening with skew.
    for skew in (0.0, 1.0):
        assert throughput("semantic", skew) > 2 * throughput(
            "moss-rw", skew
        )


def test_e19_registers_degenerate_to_moss(benchmark):
    """On plain read/write registers the ADT conflict relation is Moss',
    so the two policies make identical decisions."""

    def experiment():
        rows = []
        for policy in ("moss-rw", "semantic"):
            metrics = run_case(
                policy, "register", skew=0.6, read_fraction=0.5, seed=9
            )
            rows.append(
                {
                    "policy": policy,
                    "committed": metrics.committed,
                    "throughput": round(metrics.throughput, 3),
                    "deadlock_aborts": metrics.deadlock_aborts,
                    "denials": metrics.lock_denials,
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    print_table("E19b: register workloads (degeneration)", rows)
    moss, semantic = rows
    assert moss["committed"] == semantic["committed"] == 30
    assert moss["throughput"] == semantic["throughput"]
    assert moss["denials"] == semantic["denials"]
