"""E2 (Lemma 33): the constructive serializer.

Paper claim: for every concurrent schedule alpha and non-orphan T there is
a serial schedule write-equivalent to visible(alpha, T), produced by the
explicit rearrangement of the inductive proof.

Reproduction: run the incremental serializer over random concurrent
schedules; for every tracked non-orphan transaction check (a)
write-equivalence against visible(alpha, T) and (b) that the construction
is accepted by an independent serial-system replay.  Reported series:
rearrangement counts and serializer throughput.
"""

from conftest import print_table, run_once

from repro.checking.random_systems import random_system_type
from repro.core.correctness import replay_serial
from repro.core.equieffective import write_equivalent
from repro.core.serializer import Serializer
from repro.core.systems import RWLockingSystem, SerialSystem
from repro.core.visibility import visible
from repro.ioa.explorer import random_schedules


def test_e2_lemma33_construction(benchmark):
    def experiment():
        rows = []
        failures = 0
        for system_seed in range(4):
            system_type = random_system_type(system_seed)
            system = RWLockingSystem(system_type)
            serial = SerialSystem(system_type)
            checked = 0
            events = 0
            for alpha in random_schedules(
                system, 6, 300, seed=system_seed + 5
            ):
                events += len(alpha)
                serializer = Serializer(system_type)
                serializer.extend_all(alpha)
                for name in serializer.tracked():
                    if system_type.is_access(name):
                        continue
                    beta = serializer.serial_schedule_for(name)
                    checked += 1
                    if not write_equivalent(
                        system_type, visible(alpha, name), beta
                    ):
                        failures += 1
                    if replay_serial(serial, beta) is not None:
                        failures += 1
            rows.append(
                {
                    "system_seed": system_seed,
                    "events_serialized": events,
                    "serial_schedules_built": checked,
                    "failures": failures,
                }
            )
        return rows, failures

    rows, failures = run_once(benchmark, experiment)
    print_table("E2: Lemma 33 serializer", rows)
    assert failures == 0


def test_e2_serializer_throughput(benchmark):
    """How fast the rearrangement runs (events/second), as a timing row."""
    system_type = random_system_type(1)
    system = RWLockingSystem(system_type)
    schedules = list(random_schedules(system, 5, 300, seed=77))

    def serialize_all():
        total = 0
        for alpha in schedules:
            serializer = Serializer(system_type)
            serializer.extend_all(alpha)
            total += len(alpha)
        return total

    total = benchmark(serialize_all)
    assert total > 0
