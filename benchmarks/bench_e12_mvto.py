"""E12 (Reed [R] comparison): MVTO baseline vs Moss locking.

The paper cites Reed's multiversion timestamp scheme as the other route to
nested-transaction data management.  This bench sweeps contention (Zipf
skew) and read fraction across moss-rw and the simplified nested MVTO
engine.

Expected shape: MVTO never deadlocks (waits are timestamp-ordered) and
shines on read-heavy workloads (readers never block writers' *committed*
history); Moss pays deadlock restarts under skew but avoids MVTO's
timestamp aborts on write-heavy mixes.
"""

from conftest import print_table, run_once

from repro.sim import (
    SimulationConfig,
    WorkloadConfig,
    make_store,
    make_workload,
    run_simulation,
)


def run_case(policy, read_fraction, skew):
    config = WorkloadConfig(
        programs=30,
        objects=12,
        read_fraction=read_fraction,
        zipf_skew=skew,
        depth=2,
        fanout=2,
        accesses_per_block=2,
    )
    programs = make_workload(9, config)
    return run_simulation(
        programs,
        make_store(config),
        SimulationConfig(mpl=8, policy=policy, seed=7),
    )


def test_e12_mvto_vs_moss(benchmark):
    def experiment():
        rows = []
        for read_fraction in (0.2, 0.8):
            for skew in (0.0, 0.8):
                for policy in ("moss-rw", "mvto"):
                    metrics = run_case(policy, read_fraction, skew)
                    rows.append(
                        {
                            "read_fraction": read_fraction,
                            "zipf_skew": skew,
                            "policy": policy,
                            "committed": metrics.committed,
                            "throughput": round(metrics.throughput, 3),
                            "mean_latency": round(
                                metrics.mean_latency, 2
                            ),
                            "restarts": metrics.program_restarts,
                            "deadlocks": metrics.deadlock_aborts,
                        }
                    )
        return rows

    rows = run_once(benchmark, experiment)
    print_table("E12: MVTO vs Moss locking", rows)

    assert all(row["committed"] == 30 for row in rows)
    # MVTO is deadlock-free by construction.
    assert all(
        row["deadlocks"] == 0 for row in rows if row["policy"] == "mvto"
    )
    # On the read-heavy skewed case MVTO at least matches Moss.
    moss = next(
        row
        for row in rows
        if row["policy"] == "moss-rw"
        and row["read_fraction"] == 0.8
        and row["zipf_skew"] == 0.8
    )
    mvto = next(
        row
        for row in rows
        if row["policy"] == "mvto"
        and row["read_fraction"] == 0.8
        and row["zipf_skew"] == 0.8
    )
    assert mvto["throughput"] >= moss["throughput"]
