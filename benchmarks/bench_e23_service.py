"""E23 (service-regime guard): batching win and overload behaviour.

Not a paper claim -- the operational envelope of the ``repro.serve``
front-end.  Two regimes are measured against live in-process servers
on real sockets:

* **batching** -- one connection pipelines 64 ops per transaction
  into a server that coalesces (``max_batch=32``) vs one that cannot
  (``max_batch=1``).  Every coalesced batch saves executor hops, so
  the batched server must clear >= 1.5x the unbatched throughput.
* **overload** -- a rate-limited server (token bucket + in-flight
  cap) is offered 0.5x its admission rate (uncontended) and then 2x
  (overload).  The guards pin the shedding contract: in-flight stays
  bounded, the overloaded server sheds rather than queues, and the
  transactions it *does* accept finish almost as fast as the
  uncontended ones (p99 < 5x).

Like E22, wall-clock comparisons run *interleaved* and the guards
take each regime's best round: machine drift only ever slows a round
down, so the cleanest round bounds the true ratio.

Environment knobs (for the CI serve-smoke job):

* ``E23_QUICK=1`` shrinks durations/volumes to smoke-test size;
* ``E23_JSON=<path>`` overrides where the JSON artifact is written
  (default: ``BENCH_E23.json`` at the repo root).
"""

import json
import os
import threading
import time

from conftest import print_table, run_once

from repro.adt import Counter
from repro.serve.client import ServeError, SyncClient
from repro.serve.server import ServeConfig, TransactionServer

#: Interleaved rounds for the batching comparison; best round wins.
ROUNDS = 5
#: Pipeline depth per transaction in the batching regime.
PIPELINE = 64


def start_server(**config):
    # One counter per offering thread: the overload phases must
    # measure admission behaviour, not write-lock collisions (a
    # conflict waits up to the op timeout and would drown the p99).
    server = TransactionServer(
        [Counter("c%d" % index) for index in range(OFFER_THREADS)],
        scheme="moss-rw",
        config=ServeConfig(port=0, **config),
    )
    handle = server.start_in_thread()
    return server, handle


def percentile(samples, fraction):
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(
        len(ordered) - 1, int(round(fraction * (len(ordered) - 1)))
    )
    return ordered[index]


# ----------------------------------------------------------------------
# Part A: pipelined-batch throughput, coalescing on vs off
# ----------------------------------------------------------------------


def _pipeline_round(client, txns):
    """Run *txns* transactions of PIPELINE reads; return ops/sec."""
    started = time.perf_counter()
    for _ in range(txns):
        txn = client.begin()
        ops = [
            ("read", {"txn": list(txn), "object": "c0", "kind": "value"})
        ] * PIPELINE
        responses = client.pipeline(ops)
        assert all(response.get("ok") for response in responses), (
            "pipelined read failed: %r"
            % [r for r in responses if not r.get("ok")][:1]
        )
        client.commit(txn)
    elapsed = time.perf_counter() - started
    return (txns * PIPELINE) / max(elapsed, 1e-9)


def run_batching(quick):
    txns = 4 if quick else 16
    servers = {}
    for regime, max_batch in (("batched", 32), ("unbatched", 1)):
        servers[regime] = start_server(
            max_batch=max_batch,
            max_inflight=512,
            max_inflight_per_conn=512,
        )
    clients = {
        regime: SyncClient(*server.address, timeout=30.0)
        for regime, (server, _) in servers.items()
    }
    try:
        for client in clients.values():  # warm-up: connection + engine
            _pipeline_round(client, 1)
        best = {regime: 0.0 for regime in servers}
        for _ in range(ROUNDS):
            for regime, client in clients.items():
                best[regime] = max(
                    best[regime], _pipeline_round(client, txns)
                )
        rows = []
        for regime, (server, _) in servers.items():
            histograms = server.metrics.snapshot()["histograms"]
            batches = histograms.get("serve.batch_size", {})
            rows.append(
                {
                    "regime": regime,
                    "ops_per_sec": int(best[regime]),
                    "batch_max": batches.get("max", 0),
                    "batch_mean": round(batches.get("mean", 0.0), 2),
                }
            )
        return rows
    finally:
        for client in clients.values():
            client.close()
        for _, handle in servers.values():
            handle.stop()


# ----------------------------------------------------------------------
# Part B: admission under offered load, uncontended vs 2x overload
# ----------------------------------------------------------------------

#: Token-bucket admission rate (requests/sec) for the overload server.
ADMIT_RATE = 400.0
#: Worker threads offering load.
OFFER_THREADS = 8


def _offer_load(address, offered, duration):
    """Offer ~*offered* txns/sec of tiny write txns for *duration*.

    Each transaction is three requests (begin/write/commit); a shed at
    any step abandons the attempt (no retry -- the point is to
    measure what the admitted traffic experiences).  Returns
    (accepted latencies in seconds, accepted count, shed count).
    """
    host, port = address
    interval = OFFER_THREADS / offered
    latencies = []
    counts = {"accepted": 0, "shed": 0}
    lock = threading.Lock()

    def worker(index):
        with SyncClient(host, port, timeout=30.0) as client:
            next_at = time.perf_counter() + (index / OFFER_THREADS) * (
                interval
            )
            deadline = time.perf_counter() + duration
            while True:
                now = time.perf_counter()
                if now >= deadline:
                    return
                if now < next_at:
                    time.sleep(next_at - now)
                next_at += interval
                started = time.perf_counter()
                txn = None
                try:
                    txn = client.begin()
                    client.write(
                        txn,
                        "c%d" % index,
                        kind="increment",
                        args=[1],
                    )
                    client.commit(txn)
                    elapsed = time.perf_counter() - started
                    with lock:
                        counts["accepted"] += 1
                        latencies.append(elapsed)
                except ServeError as exc:
                    with lock:
                        counts["shed"] += 1
                    if txn is not None and exc.retryable:
                        try:
                            client.abort(txn)
                        except ServeError:
                            pass

    threads = [
        threading.Thread(target=worker, args=(index,))
        for index in range(OFFER_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return latencies, counts["accepted"], counts["shed"]


def run_overload(quick):
    duration = 0.8 if quick else 2.0
    server, handle = start_server(
        rate=ADMIT_RATE,
        burst=ADMIT_RATE / 4.0,
        max_inflight=32,
    )
    try:
        # Warm-up, then let the bucket refill.
        _offer_load(server.address, ADMIT_RATE / 4.0, 0.3)
        time.sleep(0.3)
        rows = []
        results = {}
        for phase, offered in (
            ("uncontended", ADMIT_RATE / 2.0 / 3.0),
            ("overload-2x", ADMIT_RATE * 2.0 / 3.0),
        ):
            # offered is txns/sec; each txn is 3 admission-checked
            # requests, so requests/sec is 3x -- the phases land at
            # 0.5x and 2x the admission rate respectively.
            latencies, accepted, shed = _offer_load(
                server.address, offered, duration
            )
            results[phase] = (latencies, accepted, shed)
            rows.append(
                {
                    "phase": phase,
                    "offered_rps": int(offered * 3),
                    "accepted": accepted,
                    "shed": shed,
                    "p50_ms": round(
                        1e3 * percentile(latencies, 0.50), 2
                    ),
                    "p99_ms": round(
                        1e3 * percentile(latencies, 0.99), 2
                    ),
                }
            )
            time.sleep(0.3)  # bucket refill between phases
        stats = server.stats()
        for row in rows:
            row["inflight_hw"] = stats["inflight_high_water"]
        return rows, results, stats
    finally:
        handle.stop()


def test_e23_service_regimes(benchmark):
    quick = bool(os.environ.get("E23_QUICK"))

    def experiment():
        batching = run_batching(quick)
        overload, results, stats = run_overload(quick)
        return {
            "batching": batching,
            "overload": overload,
            "_results": results,
            "_stats": stats,
        }

    outcome = run_once(benchmark, experiment)
    print_table("E23: pipelined batching (64-deep)", outcome["batching"])
    print_table("E23: admission under load", outcome["overload"])

    json_path = os.environ.get("E23_JSON") or os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        os.pardir,
        "BENCH_E23.json",
    )
    with open(json_path, "w") as handle:
        json.dump(
            {
                "experiment": "e23_service_regimes",
                "batching": outcome["batching"],
                "overload": outcome["overload"],
            },
            handle,
            indent=2,
        )

    # Guard 1: coalescing is a real win at 64-deep pipelines.
    by_regime = {row["regime"]: row for row in outcome["batching"]}
    assert by_regime["batched"]["batch_max"] > 1
    assert by_regime["unbatched"]["batch_max"] == 1
    ratio = by_regime["batched"]["ops_per_sec"] / max(
        by_regime["unbatched"]["ops_per_sec"], 1
    )
    assert ratio >= 1.5, (
        "batching speedup %.2fx < 1.5x: %r"
        % (ratio, outcome["batching"])
    )

    # Guard 2: overload sheds instead of queueing.
    by_phase = {row["phase"]: row for row in outcome["overload"]}
    calm, storm = by_phase["uncontended"], by_phase["overload-2x"]
    assert calm["accepted"] > 0 and storm["accepted"] > 0
    assert storm["shed"] > 0, "2x overload must shed: %r" % storm
    # In-flight stayed bounded by the cap the server was given.
    assert storm["inflight_hw"] <= 32, storm
    # The accepted traffic stayed fast: shedding, not queue bloat.
    calm_p99 = max(calm["p99_ms"], 1.0)  # sub-ms floor kills noise
    assert storm["p99_ms"] < 5.0 * calm_p99, (
        "accepted p99 %.2fms >= 5x uncontended %.2fms"
        % (storm["p99_ms"], calm_p99)
    )
