"""E25 (multiprocess sharding: does escaping the GIL buy throughput?).

Extends E18's facade-scalability report with a multiprocess regime.
E18 showed that on *pure-Python* operations the striped ThreadSafeEngine
cannot beat a global mutex on CPython -- the GIL serialises the work
whatever the locking regime.  The sharded engine (`repro.shard`) is the
other answer: N spawn worker processes, each running the single-threaded
Engine over its shard of the object store, with cross-shard trees
committed by presumed-abort 2PC at the coordinator.

The workload is E18's pure-Python one (three random register reads over
a 32-object pool, plus a per-thread counter increment every 10th
transaction), driven by the same 4 client threads against:

* ``striped-facade`` -- the in-process ThreadSafeEngine baseline;
* ``sharded-1w``     -- one worker process: everything takes the
  single-shard one-phase fast path, so this row prices the IPC seam
  (framed-JSON over a pipe per access) against the in-process facade;
* ``sharded-2w`` / ``sharded-4w`` -- the scaling regimes: reads spread
  over shards, most commits cross shards and pay real 2PC.

Headline: committed-transactions/second vs worker count.  The ``cpus``
column qualifies every row -- on a single-core host the workers time-
slice one core and IPC overhead is all you can see, so the acceptance
thresholds (>= 1.8x at 4 workers, fast-path overhead <= 25 percent)
only assert on hosts with >= 4 cores; elsewhere the rows are reported
for the record and only sanity floors are asserted.

Environment knobs (for the CI shard-smoke job):

* ``E25_QUICK=1`` shrinks the run to smoke-test size;
* ``E25_JSON=<path>`` writes the rows (plus speedup summary) as JSON.
"""

import json
import os
import random
import threading
import time

from conftest import print_table, run_once

from repro.adt import Counter, IntRegister
from repro.engine.threadsafe import ThreadSafeEngine
from repro.errors import LockDenied, TransactionAborted
from repro.shard import ShardedEngine

THREADS = 4
OBJECTS = 32


def _specs(threads, objects):
    specs = [IntRegister("r%d" % index) for index in range(objects)]
    specs += [Counter("own%d" % index) for index in range(threads)]
    return specs


def _drive(facade, threads, transactions, objects):
    """E18's pure-Python workload against any facade; returns timing.

    Conflict-free by construction (shared reads, per-thread counters),
    but wound-wait on the sharded path may still abort a tree that
    races a shard join, so the loop retries denials defensively.
    """
    barrier = threading.Barrier(threads + 1)
    errors = []

    def worker(worker_id):
        rng = random.Random(worker_id)
        barrier.wait()
        try:
            for index in range(transactions):
                for _attempt in range(50):
                    top = facade.begin_top()
                    try:
                        for _ in range(3):
                            top.perform(
                                "r%d" % rng.randrange(objects),
                                IntRegister.read(),
                            )
                        if index % 10 == 0:
                            top.perform(
                                "own%d" % worker_id,
                                Counter.increment(1),
                            )
                        top.commit()
                        break
                    except (TransactionAborted, LockDenied):
                        if top.is_active:
                            try:
                                top.abort()
                            except TransactionAborted:
                                pass
        except BaseException as exc:  # surfaced to the caller
            errors.append(exc)

    pool = [
        threading.Thread(target=worker, args=(worker_id,))
        for worker_id in range(threads)
    ]
    for thread in pool:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    committed = facade.engine.stats["commits"]
    assert committed >= threads * transactions
    return elapsed, committed


def _row(regime, workers, threads, cpus, elapsed, committed):
    return {
        "regime": regime,
        "workers": workers,
        "threads": threads,
        "cpus": cpus,
        "txns": committed,
        "seconds": round(elapsed, 3),
        "txns_per_sec": int(committed / max(elapsed, 1e-9)),
    }


def test_e25_sharding_scalability(benchmark):
    """Striped facade vs the multiprocess sharded engine."""
    quick = bool(os.environ.get("E25_QUICK"))
    transactions = 40 if quick else 250
    cpus = os.cpu_count() or 1

    def experiment():
        rows = []
        # Warm the in-process path (thread spawn, lock tables).
        _drive(
            ThreadSafeEngine(_specs(THREADS, OBJECTS)),
            THREADS,
            5,
            OBJECTS,
        )
        facade = ThreadSafeEngine(_specs(THREADS, OBJECTS))
        elapsed, committed = _drive(
            facade, THREADS, transactions, OBJECTS
        )
        rows.append(
            _row(
                "striped-facade", 0, THREADS, cpus, elapsed, committed
            )
        )
        for workers in (1, 2, 4):
            with ShardedEngine(
                _specs(THREADS, OBJECTS), workers=workers
            ) as sharded:
                # Warm outside the timed window: spawn + handshake
                # cost is a startup fee, not a per-transaction one.
                _drive(sharded, THREADS, 2, OBJECTS)
                base = sharded.engine.stats["commits"]
                elapsed, committed = _drive(
                    sharded, THREADS, transactions, OBJECTS
                )
                committed -= base
                rows.append(
                    _row(
                        "sharded-%dw" % workers,
                        sharded.shards,
                        THREADS,
                        cpus,
                        elapsed,
                        committed,
                    )
                )
        return rows

    rows = run_once(benchmark, experiment)
    by_regime = {row["regime"]: row for row in rows}
    baseline = by_regime["striped-facade"]["txns_per_sec"]
    for row in rows:
        row["speedup_vs_facade"] = round(
            row["txns_per_sec"] / max(baseline, 1), 2
        )
    print_table("E25: multiprocess sharding scalability", rows)
    json_path = os.environ.get("E25_JSON")
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(
                {
                    "experiment": "e25_sharding_scalability",
                    "cpus": cpus,
                    "rows": rows,
                },
                handle,
                indent=2,
            )
            handle.write("\n")
    # Sanity floors everywhere; the acceptance thresholds only make
    # sense with real cores to scale onto (see module docstring).
    assert all(row["txns_per_sec"] > 0 for row in rows)
    if cpus >= 4:
        assert (
            by_regime["sharded-4w"]["txns_per_sec"]
            >= 1.8 * baseline
        ), "4-worker sharding must beat the striped facade 1.8x"
        assert (
            by_regime["sharded-1w"]["txns_per_sec"]
            >= 0.75 * baseline
        ), "single-shard fast path may cost at most 25 percent"
