"""E16 (extension: the Moss-thesis distributed setting).

The paper's algorithm shipped inside a distributed system (Argus); its
footnote 9 declares the distribution machinery orthogonal to correctness.
This bench supplies the distribution *performance* dimension: nested
workloads over multi-site deployments where remote accesses pay round
trips and top-level commits run two-phase commit across participants.

Reported series: makespan / message counts vs (a) site count, (b) one-way
latency, (c) data locality.  Expected shapes: messages grow with sites
and with remoteness; makespan grows linearly in latency; placing a
program's data at its home site recovers local performance.
"""

from conftest import print_table, run_once

from repro.adt import IntRegister
from repro.dist import (
    DistributedConfig,
    Topology,
    run_distributed_simulation,
    uniform_topology,
)
from repro.sim import WorkloadConfig, make_store, make_workload


def base_workload():
    config = WorkloadConfig(
        programs=20,
        objects=12,
        read_fraction=0.7,
        zipf_skew=0.3,
        depth=2,
        fanout=2,
        accesses_per_block=2,
    )
    return make_workload(16, config), make_store(config)


def run_case(programs, store, topology):
    return run_distributed_simulation(
        programs,
        store,
        topology,
        DistributedConfig(mpl=4, policy="moss-rw", seed=4),
    )


def test_e16_site_count_sweep(benchmark):
    def experiment():
        programs, store = base_workload()
        names = [spec.name for spec in store]
        rows = []
        for sites in (1, 2, 4, 8):
            topology = uniform_topology(names, sites=sites)
            metrics = run_case(programs, store, topology)
            rows.append(
                {
                    "sites": sites,
                    "committed": metrics.committed,
                    "makespan": round(metrics.makespan, 1),
                    "messages": metrics.messages,
                    "remote_fraction": round(
                        metrics.remote_fraction, 3
                    ),
                    "commit_2pc_rounds": metrics.commit_rounds,
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    print_table("E16: distribution vs site count", rows)
    assert all(row["committed"] == 20 for row in rows)
    assert rows[0]["messages"] == 0
    # More sites -> more remoteness -> more messages, longer makespan.
    assert rows[-1]["messages"] > rows[1]["messages"]
    assert rows[-1]["makespan"] > rows[0]["makespan"]


def test_e16_latency_sweep(benchmark):
    def experiment():
        programs, store = base_workload()
        names = [spec.name for spec in store]
        rows = []
        for latency in (0.25, 1.0, 4.0):
            topology = uniform_topology(names, sites=4)
            topology.one_way_latency = latency
            metrics = run_case(programs, store, topology)
            rows.append(
                {
                    "one_way_latency": latency,
                    "committed": metrics.committed,
                    "makespan": round(metrics.makespan, 1),
                    "mean_latency": round(metrics.mean_latency, 2),
                    "messages": metrics.messages,
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    print_table("E16b: distribution vs message latency", rows)
    assert all(row["committed"] == 20 for row in rows)
    spans = [row["makespan"] for row in rows]
    assert spans[0] < spans[1] < spans[2]


def test_e16_locality(benchmark):
    """Perfect locality (every program's data at its home site) performs
    like a local system; anti-locality pays full freight."""

    def experiment():
        store = [IntRegister("r%d" % index) for index in range(4)]
        from repro.sim import AccessOp, Block, Program

        # Program i touches only object i.
        programs = [
            Program(
                body=Block(
                    steps=[
                        AccessOp("r%d" % (index % 4), IntRegister.add(1))
                        for _ in range(3)
                    ],
                    parallel=False,
                )
            )
            for index in range(8)
        ]
        rows = []
        # Local placement: object i on site i (homes are round-robin).
        local = Topology(
            sites=4,
            placement={"r%d" % i: i for i in range(4)},
            one_way_latency=5.0,
        )
        # Anti-local placement: object i on site (i + 1) % 4.
        remote = Topology(
            sites=4,
            placement={"r%d" % i: (i + 1) % 4 for i in range(4)},
            one_way_latency=5.0,
        )
        for label, topology in (("local", local), ("anti-local", remote)):
            metrics = run_distributed_simulation(
                programs,
                store,
                topology,
                DistributedConfig(mpl=8, policy="moss-rw", seed=5),
            )
            rows.append(
                {
                    "placement": label,
                    "committed": metrics.committed,
                    "makespan": round(metrics.makespan, 1),
                    "messages": metrics.messages,
                    "remote_fraction": round(
                        metrics.remote_fraction, 3
                    ),
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    print_table("E16c: data locality", rows)
    local_row, remote_row = rows
    assert local_row["messages"] == 0
    assert remote_row["messages"] > 0
    assert remote_row["makespan"] > local_row["makespan"]
