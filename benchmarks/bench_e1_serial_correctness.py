"""E1 (Theorem 34 / Corollary 35): serial correctness of R/W Locking.

Paper claim: every schedule of a R/W Locking system is serially correct
for every non-orphan non-access transaction, in particular for T0.

Reproduction: seeded random schedules over a family of random system
types; every generated schedule is serialised and replayed against the
serial system.  Reported series: per-system-type validation counts.
"""

from conftest import print_table, run_once

from repro.checking import validate_random_schedules
from repro.checking.random_systems import RandomSystemConfig


def test_e1_theorem34_validation(benchmark):
    def experiment():
        rows = []
        total_violations = 0
        for system_seed in range(5):
            stats = validate_random_schedules(
                system_seed=system_seed,
                schedules=10,
                max_steps=300,
                seed=system_seed + 1,
            )
            total_violations += stats.violations
            rows.append(
                {
                    "system_seed": system_seed,
                    "schedules": stats.schedules,
                    "events": stats.events,
                    "transactions_checked": stats.transactions_checked,
                    "violations": stats.violations,
                }
            )
        return rows, total_violations

    rows, total_violations = run_once(benchmark, experiment)
    print_table("E1: Theorem 34 validation", rows)
    assert total_violations == 0


def test_e1_read_fraction_robustness(benchmark):
    """Theorem 34 across the read-fraction spectrum."""

    def experiment():
        rows = []
        for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
            stats = validate_random_schedules(
                config=RandomSystemConfig(read_fraction=fraction),
                system_seed=11,
                schedules=6,
                max_steps=250,
                seed=int(fraction * 100) + 7,
            )
            rows.append(
                {
                    "read_fraction": fraction,
                    "schedules": stats.schedules,
                    "events": stats.events,
                    "violations": stats.violations,
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    print_table("E1b: Theorem 34 vs read fraction", rows)
    assert all(row["violations"] == 0 for row in rows)
