"""E20 (lock-path microbenchmark): the grant fast path vs the scan.

Not a paper claim -- a perf-trajectory report for the engine hot path.
Every lock grant must decide "is every conflicting holder an ancestor
of the requester?".  The unoptimised rule scans the holder sets with
tuple-prefix ancestry checks (O(holders x depth)); the fast path
answers from O(1) aggregates (interned ancestry sets, deepest-holder
tracking -- see ``docs/PERFORMANCE.md``).  This benchmark drives both
implementations through identical workloads and reports acquire
throughput across:

* nesting depth (deep chains accumulate one write + one read holder
  per level under ``moss-rw``, so depth doubles as holder count);
* read/write mix;
* scheme (``moss-rw``, ``exclusive``, ``flat-2pl``); and
* regime (raw engine, global-mutex facade, striped facade).

The scan baseline is the same code with ``ManagedObject.FAST_GRANTS``
off, so the comparison isolates the grant decision itself.

Environment knobs (for the CI bench-lockpath job):

* ``E20_QUICK=1`` shrinks the op counts to smoke-test size;
* ``E20_JSON=<path>`` overrides where the JSON artifact is written
  (default: ``BENCH_E20.json`` at the repo root).
"""

import json
import os
import time

from conftest import print_table, run_once

from repro.adt import Counter
from repro.engine import Engine
from repro.engine.lockmanager import ManagedObject
from repro.engine.threadsafe import ThreadSafeEngine

#: Depths to sweep.  Under moss-rw a depth-d chain holds ~2d+1 locks on
#: the hot object (one write + one read holder per level), so the
#: deepest row exercises the "depth >= 6 with >= 32 holders" regime the
#: acceptance criterion names.
DEPTHS = (2, 8, 32)

MIXES = {"read-heavy": 0.9, "write-heavy": 0.1}


def _build_chain(handle, depth):
    """Nest *handle* down to *depth* levels; return the whole chain."""
    chain = [handle]
    for _ in range(depth - 1):
        handle = handle.begin_child()
        chain.append(handle)
    return chain


def _seed_holders(chain):
    """One write + one read per level: the holder chain accumulates."""
    for handle in chain:
        handle.perform("h", Counter.increment(1))
        handle.perform("h", Counter.value())


def _measure(make_facade, scheme, depth, read_ratio, ops):
    """Acquire throughput of the deepest transaction; ops/second."""
    facade = make_facade(scheme)
    chain = _build_chain(facade.begin_top(), depth)
    _seed_holders(chain)
    deepest = chain[-1]
    read = Counter.value()
    write = Counter.increment(1)
    # Deterministic mix without per-op RNG overhead.
    period = 10
    reads_per_period = int(read_ratio * period)
    plan = [
        read if slot < reads_per_period else write
        for slot in range(period)
    ]
    started = time.perf_counter()
    for index in range(ops):
        deepest.perform("h", plan[index % period])
    elapsed = time.perf_counter() - started
    engine = facade.engine if hasattr(facade, "engine") else facade
    managed = engine.locks.object("h")
    write_holders, read_holders = managed.holders_view()
    return {
        "ops_per_sec": int(ops / max(elapsed, 1e-9)),
        "holders": len(write_holders) + len(read_holders),
    }


def _sweep(make_facade, regime, schemes, depths, ops):
    """Measure fast and scan paths over the grid; return report rows."""
    rows = []
    for scheme in schemes:
        for depth in depths:
            for mix, read_ratio in MIXES.items():
                fast = _measure(
                    make_facade, scheme, depth, read_ratio, ops
                )
                ManagedObject.FAST_GRANTS = False
                try:
                    scan = _measure(
                        make_facade, scheme, depth, read_ratio, ops
                    )
                finally:
                    ManagedObject.FAST_GRANTS = True
                rows.append(
                    {
                        "regime": regime,
                        "scheme": scheme,
                        "depth": depth,
                        "mix": mix,
                        "holders": fast["holders"],
                        "fast_ops_per_sec": fast["ops_per_sec"],
                        "scan_ops_per_sec": scan["ops_per_sec"],
                        "speedup": round(
                            fast["ops_per_sec"]
                            / max(scan["ops_per_sec"], 1),
                            2,
                        ),
                    }
                )
    return rows


def test_e20_lockpath(benchmark):
    quick = bool(os.environ.get("E20_QUICK"))
    ops = 2_000 if quick else 20_000
    facade_ops = 1_000 if quick else 8_000

    def experiment():
        rows = []
        # Full grid on the raw engine: the grant decision dominates.
        rows += _sweep(
            lambda scheme: Engine([Counter("h")], policy=scheme),
            "engine",
            ("moss-rw", "exclusive", "flat-2pl"),
            DEPTHS,
            ops,
        )
        # Facade regimes: the deep moss-rw case only (facade overhead
        # dilutes the grant cost; the row shows by how much).
        rows += _sweep(
            lambda scheme: ThreadSafeEngine(
                [Counter("h")], policy=scheme, stripes=0
            ),
            "facade-global",
            ("moss-rw",),
            DEPTHS[-1:],
            facade_ops,
        )
        rows += _sweep(
            lambda scheme: ThreadSafeEngine(
                [Counter("h")], policy=scheme
            ),
            "facade-striped",
            ("moss-rw",),
            DEPTHS[-1:],
            facade_ops,
        )
        return rows

    rows = run_once(benchmark, experiment)
    print_table("E20: lock-grant fast path vs holder scan", rows)

    json_path = os.environ.get("E20_JSON") or os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        os.pardir,
        "BENCH_E20.json",
    )
    with open(json_path, "w") as handle:
        json.dump(
            {"experiment": "e20_lockpath", "rows": rows},
            handle,
            indent=2,
        )

    # The acceptance row: deep nesting (depth 32 => ~65 holders under
    # moss-rw) on the raw engine.
    deep = [
        row
        for row in rows
        if row["regime"] == "engine"
        and row["scheme"] == "moss-rw"
        and row["depth"] == DEPTHS[-1]
    ]
    assert deep
    for row in deep:
        assert row["holders"] >= 32
        # CI guard (always on, quick mode included): the fast path must
        # never be >10% slower than the scan it replaces.
        assert row["speedup"] >= 0.9, row
        if not quick:
            # Full runs must show the headline win: >= 2x acquire
            # throughput at depth >= 6 with >= 32 holders.
            assert row["speedup"] >= 2.0, row
