"""E10 (motivation: independent subtransaction aborts).

Paper claim (introduction): nesting exists so that "operations which can
be aborted independently" lose only their own work.  A flat transaction
system must abort the whole transaction.

Reproduction: inject subtransaction failures at increasing rates and
compare Moss (subtree retried, siblings' work preserved) against flat 2PL
(abort escalates; the whole program restarts).  Reported series: wasted
work and latency vs failure probability.

Expected shape: wasted-access fraction and p95 latency grow much faster
for flat-2pl as the failure rate rises; at rate 0 the two coincide.
"""

from conftest import print_table, run_once

from repro.sim import (
    SimulationConfig,
    WorkloadConfig,
    make_store,
    make_workload,
    run_simulation,
)


def run_at(fail_prob, policy, retries):
    config = WorkloadConfig(
        programs=30,
        objects=24,
        read_fraction=0.6,
        zipf_skew=0.0,
        depth=2,
        fanout=3,
        accesses_per_block=2,
        fail_prob=fail_prob,
        retries=retries,
    )
    programs = make_workload(8, config)
    metrics = run_simulation(
        programs,
        make_store(config),
        SimulationConfig(mpl=6, policy=policy, seed=3),
    )
    return metrics


def test_e10_failure_rate_sweep(benchmark):
    def experiment():
        rows = []
        for fail_prob in (0.0, 0.1, 0.2, 0.4):
            for policy in ("moss-rw", "flat-2pl"):
                metrics = run_at(fail_prob, policy, retries=2)
                rows.append(
                    {
                        "fail_prob": fail_prob,
                        "policy": policy,
                        "committed": metrics.committed,
                        "injected_aborts": metrics.injected_aborts,
                        "subtree_retries": metrics.subtree_retries,
                        "program_restarts": metrics.program_restarts,
                        "wasted": round(
                            metrics.wasted_access_fraction, 3
                        ),
                        "mean_latency": round(metrics.mean_latency, 2),
                        "makespan": round(metrics.makespan, 1),
                    }
                )
        return rows

    rows = run_once(benchmark, experiment)
    print_table("E10: subtransaction failure injection", rows)

    def pick(policy, fail_prob, field):
        return next(
            row[field]
            for row in rows
            if row["policy"] == policy and row["fail_prob"] == fail_prob
        )

    # Everything still commits (retries/restarts mask the failures).
    assert all(row["committed"] == 30 for row in rows)
    # Nested aborts stay subtree-local under Moss...
    assert pick("moss-rw", 0.4, "subtree_retries") > 0
    # ...but escalate to whole-program restarts under flat 2PL.
    assert pick("flat-2pl", 0.4, "program_restarts") > 0
    # The headline shape: at high failure rates flat 2PL wastes more
    # work and takes longer end-to-end.
    assert pick("flat-2pl", 0.4, "wasted") > pick(
        "moss-rw", 0.4, "wasted"
    )
    assert pick("flat-2pl", 0.4, "makespan") > pick(
        "moss-rw", 0.4, "makespan"
    )
