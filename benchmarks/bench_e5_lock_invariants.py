"""E5 (Lemmas 21, 22) and E6 (Lemmas 23, 24): M(X) state soundness.

Paper claims:

* Lemma 21: whenever a write-lockholder exists, every pair of lockholders
  is ancestrally related (lock tables form chains).
* Lemma 22: a responded, non-orphan access's highest committed-at
  ancestor holds the appropriate lock.
* Lemma 23: essence(visible_X(alpha, T)) is a schedule of basic object X
  reaching the stored version map(T') -- versions are exactly the states
  the serial object would reach.
* Lemma 24: visible_X(alpha, T) is itself a schedule of X (resilience).

Reproduction: replay random concurrent schedules through M(X) and check
each invariant at every step / at the end.
"""

from conftest import print_table, run_once

from repro.checking.random_systems import random_system_type
from repro.core.equieffective import replay_basic_object
from repro.core.names import is_ancestor
from repro.core.rw_object import RWLockingObject
from repro.core.systems import RWLockingSystem
from repro.core.visibility import essence, is_orphan_at, visible_x
from repro.ioa.explorer import random_schedules


def object_projections(system_type, alpha, object_name):
    mx = RWLockingObject(system_type, object_name)
    return [event for event in alpha if mx.has_action(event)]


def test_e5_lock_table_invariants(benchmark):
    def experiment():
        rows = []
        violations = 0
        for system_seed in range(4):
            system_type = random_system_type(system_seed)
            system = RWLockingSystem(system_type)
            states_checked = 0
            for alpha in random_schedules(
                system, 5, 300, seed=system_seed + 9
            ):
                for object_name in system_type.object_names():
                    mx = RWLockingObject(system_type, object_name)
                    for event in alpha:
                        if not mx.has_action(event):
                            continue
                        mx.apply(event)
                        states_checked += 1
                        holders = (
                            mx.write_lockholders | mx.read_lockholders
                        )
                        for writer in mx.write_lockholders:
                            for holder in holders:
                                if not (
                                    is_ancestor(writer, holder)
                                    or is_ancestor(holder, writer)
                                ):
                                    violations += 1
                        if set(mx.map) != set(mx.write_lockholders):
                            violations += 1
            rows.append(
                {
                    "system_seed": system_seed,
                    "states_checked": states_checked,
                    "violations": violations,
                }
            )
        return rows, violations

    rows, violations = run_once(benchmark, experiment)
    print_table("E5: lock-table invariants (Lemma 21)", rows)
    assert violations == 0


def test_e6_version_map_soundness(benchmark):
    def experiment():
        rows = []
        violations = 0
        for system_seed in range(4):
            system_type = random_system_type(system_seed)
            system = RWLockingSystem(system_type)
            essences_checked = 0
            for alpha in random_schedules(
                system, 4, 300, seed=system_seed + 19
            ):
                created = {
                    event.transaction
                    for event in alpha
                    if type(event).__name__ == "Create"
                }
                for object_name in system_type.object_names():
                    projected = object_projections(
                        system_type, alpha, object_name
                    )
                    mx = RWLockingObject(system_type, object_name)
                    for event in projected:
                        mx.apply(event)
                    spec = system_type.object_spec(object_name)
                    for name in sorted(created)[:6]:
                        if is_orphan_at(projected, object_name, name):
                            continue
                        beta = essence(
                            visible_x(
                                projected, system_type, object_name, name
                            ),
                            system_type,
                            object_name,
                        )
                        final = replay_basic_object(
                            system_type, object_name, beta
                        )
                        essences_checked += 1
                        if final is None:
                            violations += 1
                            continue
                        holder = next(
                            (
                                name[:length]
                                for length in range(len(name), -1, -1)
                                if name[:length] in mx.write_lockholders
                            ),
                            None,
                        )
                        if holder is not None and not spec.values_equal(
                            final.value, mx.map[holder]
                        ):
                            violations += 1
            rows.append(
                {
                    "system_seed": system_seed,
                    "essences_checked": essences_checked,
                    "violations": violations,
                }
            )
        return rows, violations

    rows, violations = run_once(benchmark, experiment)
    print_table("E6: version-map soundness (Lemmas 23, 24)", rows)
    assert violations == 0
