"""E15 (Section 3.5 remark): orphans may see inconsistent data.

Paper claim: Theorem 34 covers *non-orphan* transactions only, and
deliberately so -- "It would be best if every transaction (whether an
orphan or not) saw consistent data.  Ensuring this requires a much more
intricate scheduler" (orphan elimination, [HLMW]).

Reproduction, both directions of the boundary:

* **orphans can misbehave** -- a constructed witness schedule (driven
  through the real composed automata) in which an orphan reads x = 0 and
  then x = 5 with no intervening write of its own: impossible in any
  serial execution;
* **non-orphans never do** -- the same anomaly detector sweeps every
  non-orphan subtree of hundreds of random Moss schedules and finds
  nothing.
"""

from conftest import print_table, run_once

from repro.checking.anomalies import (
    find_register_anomalies,
    orphan_anomaly_witness,
)
from repro.checking.random_systems import random_system_type
from repro.core.systems import RWLockingSystem
from repro.core.visibility import is_orphan
from repro.ioa.explorer import random_schedules


def test_e15_orphan_witness(benchmark):
    def experiment():
        witness = orphan_anomaly_witness()
        return witness

    witness = run_once(benchmark, experiment)
    print("\n== E15: orphan inconsistency witness ==")
    print("  schedule length: %d events" % len(witness.schedule))
    for anomaly in witness.anomalies:
        print("  %s" % anomaly)
    assert is_orphan(witness.schedule, witness.orphan)
    assert len(witness.anomalies) == 1
    assert witness.anomalies[0].expected == 0
    assert witness.anomalies[0].observed == 5


def test_e15_non_orphans_clean(benchmark):
    def experiment():
        rows = []
        violations = 0
        for system_seed in range(4):
            system_type = random_system_type(system_seed)
            system = RWLockingSystem(system_type)
            subtrees_checked = 0
            for alpha in random_schedules(
                system, 8, 300, seed=system_seed + 61
            ):
                for name in system_type.internal_transactions():
                    if is_orphan(alpha, name):
                        continue
                    subtrees_checked += 1
                    if find_register_anomalies(
                        system_type, alpha, name
                    ):
                        violations += 1
            rows.append(
                {
                    "system_seed": system_seed,
                    "non_orphan_subtrees_checked": subtrees_checked,
                    "anomalies": violations,
                }
            )
        return rows, violations

    rows, violations = run_once(benchmark, experiment)
    print_table("E15b: non-orphan subtrees are anomaly-free", rows)
    assert violations == 0
