"""E13 and E14: design-choice ablations called out in DESIGN.md.

E13 -- version-map cost: Moss keeps one object version per write-
lockholder so aborts restore state in O(1).  The ablation measures the
version-store population and turnover under varying abort pressure, and
the state-restoration payoff versus naive redo (flat restart).

E14 -- deadlock strategy: wound-wait prevention (default) vs waits-for
cycle detection, under hotspot skew.  Expected shape: detection aborts
less under light contention but degrades (restart storms / starvation
risk) as skew rises; wound-wait stays stable.
"""

from conftest import print_table, run_once

from repro.adt import Counter
from repro.engine import Engine
from repro.sim import (
    SimulationConfig,
    WorkloadConfig,
    make_store,
    make_workload,
    run_simulation,
)


def test_e13_version_map_cost(benchmark):
    """Version-store population scales with live writers, not history."""

    def experiment():
        rows = []
        for writers in (1, 4, 16):
            engine = Engine([Counter("hot")])
            tops = []
            for _ in range(writers):
                top = engine.begin_top()
                tops.append(top)
            # Only the first writer can proceed; the rest are blocked --
            # so drive nesting depth through one tree instead.
            txn = tops[0]
            chain = [txn]
            for _ in range(writers):
                child = chain[-1].begin_child()
                child.perform("hot", Counter.increment(1))
                chain.append(child)
            managed = engine.locks.object("hot")
            population = len(managed.versions.holders())
            for child in reversed(chain[1:]):
                child.commit()
            after_commit = len(managed.versions.holders())
            rows.append(
                {
                    "nesting_depth": writers,
                    "versions_live_peak": population,
                    "versions_after_commits": after_commit,
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    print_table("E13: version-map population vs nesting depth", rows)
    # One version per live write-lockholder (plus the root)...
    for row in rows:
        assert row["versions_live_peak"] == row["nesting_depth"] + 1
        # ...collapsing back toward the root as commits propagate.
        assert row["versions_after_commits"] == 2


def test_e13_restoration_beats_redo(benchmark):
    """Abort pressure: subtree state restoration vs whole-program redo."""

    def experiment():
        rows = []
        for policy in ("moss-rw", "flat-2pl"):
            config = WorkloadConfig(
                programs=24,
                objects=24,
                read_fraction=0.5,
                depth=2,
                fanout=3,
                accesses_per_block=2,
                fail_prob=0.3,
                retries=3,
            )
            programs = make_workload(12, config)
            metrics = run_simulation(
                programs,
                make_store(config),
                SimulationConfig(mpl=6, policy=policy, seed=9),
            )
            rows.append(
                {
                    "policy": policy,
                    "committed": metrics.committed,
                    "accesses_done": metrics.accesses_done,
                    "accesses_redone": metrics.accesses_redone,
                    "wasted": round(metrics.wasted_access_fraction, 3),
                    "makespan": round(metrics.makespan, 1),
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    print_table("E13b: restoration vs redo under 30% failures", rows)
    moss, flat = rows
    assert moss["committed"] == flat["committed"] == 24
    assert moss["wasted"] < flat["wasted"]


def test_e14_deadlock_strategy(benchmark):
    """Wound-wait prevention vs detection across hotspot skew."""

    def experiment():
        rows = []
        for skew in (0.0, 0.6, 1.2):
            for strategy in ("wound-wait", "detect", "timeout"):
                config = WorkloadConfig(
                    programs=24,
                    objects=10,
                    read_fraction=0.4,
                    zipf_skew=skew,
                    depth=2,
                    fanout=2,
                    accesses_per_block=2,
                )
                programs = make_workload(14, config)
                metrics = run_simulation(
                    programs,
                    make_store(config),
                    SimulationConfig(
                        mpl=8,
                        policy="moss-rw",
                        seed=11,
                        deadlock=strategy,
                        max_program_attempts=400,
                    ),
                )
                rows.append(
                    {
                        "zipf_skew": skew,
                        "strategy": strategy,
                        "committed": metrics.committed,
                        "throughput": round(metrics.throughput, 3),
                        "aborts": metrics.deadlock_aborts,
                        "mean_latency": round(metrics.mean_latency, 2),
                    }
                )
        return rows

    rows = run_once(benchmark, experiment)
    print_table("E14: deadlock strategy vs hotspot skew", rows)
    # Every strategy completes the whole workload...
    for row in rows:
        if row["strategy"] == "wound-wait":
            assert row["committed"] == 24
    # ...but timeout pays heavily in latency (it must wait out the
    # timeout before resolving anything).
    def latency(strategy, skew):
        return next(
            row["mean_latency"]
            for row in rows
            if row["strategy"] == strategy and row["zipf_skew"] == skew
        )

    for skew in (0.6, 1.2):
        assert latency("timeout", skew) > latency("wound-wait", skew)
