"""E8 (Section 1 / 4.3 remark): all-writes Moss == exclusive locking.

Paper claim: "if all accesses are designated as writes, Moss' algorithm
as given in this paper degenerates into exclusive locking" (recovering the
main result of [LM]).

Reproduction: (a) model level -- exhaustive schedule-set comparison of an
all-writes M(X) against an independently implemented exclusive-locking
object; (b) engine level -- identical grant/deny decision sequences of the
moss-rw and exclusive policies over randomised all-write workloads.
"""

import random

from conftest import print_table, run_once

from repro.adt import Counter, IntRegister
from repro.engine import Engine
from repro.errors import LockDenied


def test_e8_engine_decision_equality(benchmark):
    def experiment():
        rows = []
        mismatches = 0
        for seed in range(5):
            decisions = {}
            for policy in ("moss-rw", "exclusive"):
                rng = random.Random(seed)
                engine = Engine(
                    [IntRegister("x"), IntRegister("y"), Counter("c")],
                    policy=policy,
                )
                tops = [engine.begin_top() for _ in range(3)]
                trace = []
                operations = [
                    ("x", IntRegister.add(1)),
                    ("y", IntRegister.add(2)),
                    ("c", Counter.increment(1)),
                ]
                for _ in range(40):
                    txn = rng.choice(tops)
                    if not txn.is_active:
                        continue
                    roll = rng.random()
                    if roll < 0.75:
                        object_name, operation = rng.choice(operations)
                        try:
                            txn.perform(object_name, operation)
                            trace.append("grant")
                        except LockDenied:
                            trace.append("deny")
                    elif roll < 0.9:
                        if not txn.live_children():
                            txn.commit()
                            trace.append("commit")
                    else:
                        txn.abort()
                        trace.append("abort")
                decisions[policy] = trace
            equal = decisions["moss-rw"] == decisions["exclusive"]
            if not equal:
                mismatches += 1
            rows.append(
                {
                    "seed": seed,
                    "decisions": len(decisions["moss-rw"]),
                    "identical": equal,
                }
            )
        return rows, mismatches

    rows, mismatches = run_once(benchmark, experiment)
    print_table("E8: all-writes moss-rw vs exclusive decisions", rows)
    assert mismatches == 0


def test_e8_read_workload_diverges(benchmark):
    """Negative control: with genuine reads, the policies differ."""

    def experiment():
        differences = 0
        for seed in range(5):
            outcomes = {}
            for policy in ("moss-rw", "exclusive"):
                rng = random.Random(seed)
                engine = Engine([IntRegister("x")], policy=policy)
                tops = [engine.begin_top() for _ in range(3)]
                grants = 0
                for _ in range(20):
                    txn = rng.choice(tops)
                    if not txn.is_active:
                        continue
                    try:
                        txn.perform("x", IntRegister.read())
                        grants += 1
                    except LockDenied:
                        pass
                outcomes[policy] = grants
            if outcomes["moss-rw"] > outcomes["exclusive"]:
                differences += 1
        return differences

    differences = run_once(benchmark, experiment)
    print("\nE8 negative control: read workloads where moss-rw grants "
          "strictly more: %d/5" % differences)
    assert differences >= 4
