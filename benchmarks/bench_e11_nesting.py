"""E11 (Moss lock inheritance): sibling concurrency after child commit.

Paper mechanism: when a subtransaction commits, its locks pass to the
parent, at which point siblings (which conflict with non-ancestors only)
may proceed.  The payoff of nesting is intra-transaction concurrency.

Reproduction: sweep the nesting shape -- parallel vs sequential sibling
execution, and fan-out -- on a moderately contended workload; report
throughput/latency.  Expected shape: parallel siblings beat sequential
ones, and the gain grows with fan-out.
"""

from conftest import print_table, run_once

from repro.sim import (
    SimulationConfig,
    WorkloadConfig,
    make_store,
    make_workload,
    run_simulation,
)


def run_shape(parallel, fanout, depth=2):
    config = WorkloadConfig(
        programs=24,
        objects=32,
        read_fraction=0.6,
        zipf_skew=0.0,
        depth=depth,
        fanout=fanout,
        accesses_per_block=2,
        parallel_blocks=parallel,
    )
    programs = make_workload(6, config)
    return run_simulation(
        programs,
        make_store(config),
        SimulationConfig(mpl=4, policy="moss-rw", seed=5),
    )


def test_e11_sibling_concurrency(benchmark):
    def experiment():
        rows = []
        for fanout in (1, 2, 4):
            for parallel in (False, True):
                metrics = run_shape(parallel, fanout)
                rows.append(
                    {
                        "fanout": fanout,
                        "siblings": "parallel" if parallel else "sequential",
                        "committed": metrics.committed,
                        "throughput": round(metrics.throughput, 3),
                        "mean_latency": round(metrics.mean_latency, 2),
                        "makespan": round(metrics.makespan, 1),
                    }
                )
        return rows

    rows = run_once(benchmark, experiment)
    print_table("E11: nesting shape sweep (moss-rw)", rows)

    def latency(fanout, siblings):
        return next(
            row["mean_latency"]
            for row in rows
            if row["fanout"] == fanout and row["siblings"] == siblings
        )

    assert all(row["committed"] == 24 for row in rows)
    # Parallel siblings cut latency at every fan-out above 1 ...
    for fanout in (2, 4):
        assert latency(fanout, "parallel") < latency(fanout, "sequential")
    # ... and the sequential/parallel latency gap grows with fan-out.
    gap2 = latency(2, "sequential") / latency(2, "parallel")
    gap4 = latency(4, "sequential") / latency(4, "parallel")
    assert gap4 > gap2


def test_e11_depth_sweep(benchmark):
    """Deep trees still complete and inherit locks correctly."""

    def experiment():
        rows = []
        for depth in (1, 2, 3):
            metrics = run_shape(True, 2, depth=depth)
            rows.append(
                {
                    "depth": depth,
                    "committed": metrics.committed,
                    "throughput": round(metrics.throughput, 3),
                    "mean_latency": round(metrics.mean_latency, 2),
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    print_table("E11b: nesting depth sweep (moss-rw)", rows)
    assert all(row["committed"] == 24 for row in rows)
