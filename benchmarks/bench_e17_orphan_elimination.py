"""E17 (extension, [HLMW]): eager orphan elimination.

Paper pointer: consistent data for orphans "requires a much more
intricate scheduler"; the authors' companion work [HLMW] proves orphan-
elimination algorithms correct.  This bench measures the eager variant
implemented in :mod:`repro.core.orphan_elimination`:

* the plain R/W Locking system schedules the E15 anomaly; the eliminated
  system cannot (the orphan's observing step is never enabled);
* randomised sweeps: orphan anomalies per thousand events, plain vs
  eliminated, under abort-heavy exploration;
* the price: eliminated runs do strictly less work (orphan steps are
  starved), measured as events per run.
"""

from conftest import print_table, run_once

from repro.checking.anomalies import find_register_anomalies
from repro.checking.random_systems import random_system_type
from repro.core.correctness import check_serial_correctness
from repro.core.orphan_elimination import OrphanFreeRWLockingSystem
from repro.core.systems import RWLockingSystem
from repro.ioa.explorer import random_schedules


def sweep(system, system_type, seed):
    events = 0
    anomalies = 0
    orphan_subtrees = 0
    from repro.core.visibility import is_orphan

    for alpha in random_schedules(system, 12, 300, seed=seed):
        events += len(alpha)
        for name in system_type.internal_transactions():
            found = find_register_anomalies(system_type, alpha, name)
            anomalies += len(found)
            if is_orphan(alpha, name):
                orphan_subtrees += 1
    return events, anomalies, orphan_subtrees


def test_e17_elimination_sweep(benchmark):
    def experiment():
        rows = []
        for system_seed in range(4):
            system_type = random_system_type(system_seed)
            plain = RWLockingSystem(system_type)
            eager = OrphanFreeRWLockingSystem(system_type)
            plain_events, plain_anoms, plain_orphans = sweep(
                plain, system_type, seed=system_seed + 41
            )
            eager_events, eager_anoms, eager_orphans = sweep(
                eager, system_type, seed=system_seed + 41
            )
            rows.append(
                {
                    "system_seed": system_seed,
                    "plain_events": plain_events,
                    "plain_anomalies": plain_anoms,
                    "eager_events": eager_events,
                    "eager_anomalies": eager_anoms,
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    print_table("E17: eager orphan elimination", rows)
    # Elimination removes every anomaly...
    assert all(row["eager_anomalies"] == 0 for row in rows)
    # ...by starving orphans (never doing *more* work).
    assert all(
        row["eager_events"] <= row["plain_events"] * 1.05 for row in rows
    )


def test_e17_theorem34_preserved(benchmark):
    """The eliminated system stays serially correct (sub-automaton)."""

    def experiment():
        violations = 0
        checked = 0
        for system_seed in range(3):
            system_type = random_system_type(system_seed)
            system = OrphanFreeRWLockingSystem(system_type)
            for alpha in random_schedules(
                system, 5, 300, seed=system_seed + 47
            ):
                checked += 1
                if not check_serial_correctness(system, alpha).ok:
                    violations += 1
        return checked, violations

    checked, violations = run_once(benchmark, experiment)
    print(
        "\nE17b: %d eliminated-system schedules checked, %d violations"
        % (checked, violations)
    )
    assert violations == 0
