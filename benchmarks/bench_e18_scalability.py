"""E18 (performance characterisation of the reproduction itself).

Not a paper claim -- an engineering report: how the implementation's core
paths scale, so downstream users know what system sizes are practical.

* checker throughput: events/second of the full Theorem 34 pipeline
  (serialize + write-equivalence + serial replay) vs system size;
* engine throughput: committed transactions/second of the raw engine on
  an uncontended workload;
* M(X) step rate: automaton transitions/second.
"""

import random
import time

from conftest import print_table, run_once

from repro.adt import Counter, IntRegister
from repro.checking.random_systems import (
    RandomSystemConfig,
    random_system_type,
)
from repro.core.correctness import check_serial_correctness
from repro.core.systems import RWLockingSystem
from repro.engine import Engine
from repro.ioa.explorer import random_schedule


def test_e18_checker_scaling(benchmark):
    def experiment():
        rows = []
        for top_level in (2, 4, 8):
            config = RandomSystemConfig(
                top_level=top_level, objects=3, max_depth=3
            )
            system_type = random_system_type(3, config)
            system = RWLockingSystem(system_type)
            alpha = random_schedule(system, 600, random.Random(7))
            started = time.perf_counter()
            report = check_serial_correctness(system, alpha)
            elapsed = time.perf_counter() - started
            assert report.ok
            rows.append(
                {
                    "top_level_txns": top_level,
                    "tree_size": system_type.size(),
                    "events": len(alpha),
                    "check_seconds": round(elapsed, 3),
                    "events_per_sec": int(len(alpha) / max(elapsed, 1e-9)),
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    print_table("E18: Theorem 34 checker scaling", rows)
    assert all(row["events_per_sec"] > 50 for row in rows)


def test_e18_engine_throughput(benchmark):
    """Raw engine speed: uncontended nested transactions per second."""

    def run_batch():
        engine = Engine(
            [IntRegister("r%d" % index) for index in range(16)]
        )
        for index in range(300):
            top = engine.begin_top()
            child = top.begin_child()
            child.perform("r%d" % (index % 16), IntRegister.add(1))
            child.commit()
            top.commit()
        return engine.stats["commits"]

    commits = benchmark(run_batch)
    assert commits == 600  # 300 tops + 300 children


def test_e18_mx_step_rate(benchmark):
    """M(X) automaton transition rate on a hot single-object run."""
    from repro.core.events import Create, InformCommitAt
    from repro.core.names import ROOT, SystemTypeBuilder
    from repro.core.rw_object import RWLockingObject

    builder = SystemTypeBuilder()
    builder.add_object(Counter("c"))
    tops = []
    for _ in range(100):
        top = builder.add_child(ROOT)
        builder.add_access(top, "c", Counter.increment(1))
        tops.append(top)
    system_type = builder.build()

    def run_object():
        mx = RWLockingObject(system_type, "c")
        steps = 0
        for top in tops:
            access = top + (0,)
            mx.apply(Create(access))
            action = next(iter(mx.enabled_outputs()))
            mx.apply(action)
            mx.apply(InformCommitAt("c", access))
            mx.apply(InformCommitAt("c", top))
            steps += 4
        return steps

    steps = benchmark(run_object)
    assert steps == 400
