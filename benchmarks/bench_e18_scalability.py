"""E18 (performance characterisation of the reproduction itself).

Not a paper claim -- an engineering report: how the implementation's core
paths scale, so downstream users know what system sizes are practical.

* checker throughput: events/second of the full Theorem 34 pipeline
  (serialize + write-equivalence + serial replay) vs system size;
* engine throughput: committed transactions/second of the raw engine on
  an uncontended workload;
* M(X) step rate: automaton transitions/second;
* facade scalability: real-thread throughput of the striped
  ThreadSafeEngine vs its global-mutex baseline, in two regimes:

  - *pure-Python operations* (read-heavy registers).  The GIL
    serialises these whatever the locking regime, so this row reports
    the striped path's bookkeeping overhead honestly (expect ~1x, not
    a win, on CPython);
  - *GIL-releasing operations* (sha256 over a large payload, which
    CPython hashes with the GIL dropped).  The global regime holds its
    one mutex across the engine transition, so even GIL-free C work
    serialises; stripes let performs on different objects overlap for
    real.  This is the multi-core measurement -- the reported
    ``cpus`` column says how much parallelism the host could offer
    (on a single-core container both regimes are necessarily ~equal).

Environment knobs (for the CI bench-smoke job):

* ``E18_QUICK=1`` shrinks the thread benchmark to smoke-test size;
* ``E18_JSON=<path>`` writes the facade-scalability rows as JSON.
"""

import hashlib
import json
import os
import random
import threading
import time

from conftest import print_table, run_once

from repro.adt import Counter, IntRegister
from repro.checking.random_systems import (
    RandomSystemConfig,
    random_system_type,
)
from repro.core.correctness import check_serial_correctness
from repro.core.object_spec import ObjectSpec, Operation
from repro.core.systems import RWLockingSystem
from repro.engine import Engine
from repro.engine.threadsafe import ThreadSafeEngine
from repro.errors import ReproError
from repro.ioa.explorer import random_schedule


def test_e18_checker_scaling(benchmark):
    def experiment():
        rows = []
        for top_level in (2, 4, 8):
            config = RandomSystemConfig(
                top_level=top_level, objects=3, max_depth=3
            )
            system_type = random_system_type(3, config)
            system = RWLockingSystem(system_type)
            alpha = random_schedule(system, 600, random.Random(7))
            started = time.perf_counter()
            report = check_serial_correctness(system, alpha)
            elapsed = time.perf_counter() - started
            assert report.ok
            rows.append(
                {
                    "top_level_txns": top_level,
                    "tree_size": system_type.size(),
                    "events": len(alpha),
                    "check_seconds": round(elapsed, 3),
                    "events_per_sec": int(len(alpha) / max(elapsed, 1e-9)),
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    print_table("E18: Theorem 34 checker scaling", rows)
    assert all(row["events_per_sec"] > 50 for row in rows)


def test_e18_engine_throughput(benchmark):
    """Raw engine speed: uncontended nested transactions per second."""

    def run_batch():
        engine = Engine(
            [IntRegister("r%d" % index) for index in range(16)]
        )
        for index in range(300):
            top = engine.begin_top()
            child = top.begin_child()
            child.perform("r%d" % (index % 16), IntRegister.add(1))
            child.commit()
            top.commit()
        return engine.stats["commits"]

    commits = benchmark(run_batch)
    assert commits == 600  # 300 tops + 300 children


def test_e18_mx_step_rate(benchmark):
    """M(X) automaton transition rate on a hot single-object run."""
    from repro.core.events import Create, InformCommitAt
    from repro.core.names import ROOT, SystemTypeBuilder
    from repro.core.rw_object import RWLockingObject

    builder = SystemTypeBuilder()
    builder.add_object(Counter("c"))
    tops = []
    for _ in range(100):
        top = builder.add_child(ROOT)
        builder.add_access(top, "c", Counter.increment(1))
        tops.append(top)
    system_type = builder.build()

    def run_object():
        mx = RWLockingObject(system_type, "c")
        steps = 0
        for top in tops:
            access = top + (0,)
            mx.apply(Create(access))
            action = next(iter(mx.enabled_outputs()))
            mx.apply(action)
            mx.apply(InformCommitAt("c", access))
            mx.apply(InformCommitAt("c", top))
            steps += 4
        return steps

    steps = benchmark(run_object)
    assert steps == 400


def _facade_throughput(stripes, threads, transactions, objects):
    """Committed transactions/second with real threads on the facade.

    Read-heavy and conflict-free by construction (shared reads under
    moss-rw share locks; each thread writes only its own counter), so
    the measurement isolates the facade's locking regime: one global
    mutex vs per-object stripes.
    """
    specs = [IntRegister("r%d" % index) for index in range(objects)]
    specs += [Counter("own%d" % index) for index in range(threads)]
    facade = ThreadSafeEngine(specs, stripes=stripes)
    barrier = threading.Barrier(threads + 1)

    def worker(worker_id):
        rng = random.Random(worker_id)
        barrier.wait()
        for index in range(transactions):
            top = facade.begin_top()
            for _ in range(3):
                top.perform(
                    "r%d" % rng.randrange(objects), IntRegister.read()
                )
            if index % 10 == 0:
                top.perform(
                    "own%d" % worker_id, Counter.increment(1)
                )
            top.commit()

    pool = [
        threading.Thread(target=worker, args=(worker_id,))
        for worker_id in range(threads)
    ]
    for thread in pool:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - started
    committed = facade.engine.stats["commits"]
    assert committed >= threads * transactions
    return elapsed, committed


_DIGEST_PAYLOAD = b"\xa5" * (256 * 1024)


class _DigestLog(ObjectSpec):
    """An ADT whose write is dominated by GIL-releasing C work.

    ``absorb()`` folds a fixed 256 KiB payload into a running sha256
    (CPython drops the GIL while hashing buffers this large), standing
    in for the checksumming/compression work a real storage engine
    does inside a transaction.
    """

    def initial_value(self) -> bytes:
        return b""

    @staticmethod
    def absorb() -> Operation:
        return Operation("absorb", (), is_read=False)

    def apply(self, value, operation):
        if operation.kind == "absorb":
            new_value = hashlib.sha256(
                value + _DIGEST_PAYLOAD
            ).digest()
            return new_value, new_value
        raise ReproError(
            "%r: unknown operation %s" % (self.name, operation)
        )


def _facade_gil_release(stripes, threads, transactions):
    """Transactions/second when the op itself releases the GIL.

    Each thread digests into its own object: zero lock conflicts, so
    any gap between regimes is the mutex scope.  The global regime
    holds its single mutex across ``perform``, serialising even the
    GIL-free hashing; stripes only serialise per object.
    """
    specs = [_DigestLog("d%d" % index) for index in range(threads)]
    facade = ThreadSafeEngine(specs, stripes=stripes)
    barrier = threading.Barrier(threads + 1)

    def worker(worker_id):
        name = "d%d" % worker_id
        barrier.wait()
        for _ in range(transactions):
            top = facade.begin_top()
            top.perform(name, _DigestLog.absorb())
            top.commit()

    pool = [
        threading.Thread(target=worker, args=(worker_id,))
        for worker_id in range(threads)
    ]
    for thread in pool:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - started
    committed = facade.engine.stats["commits"]
    assert committed == threads * transactions
    return elapsed, committed


def test_e18_facade_striping(benchmark):
    """Striped vs global-mutex ThreadSafeEngine under real threads."""
    quick = bool(os.environ.get("E18_QUICK"))
    threads = 4
    transactions = 150 if quick else 600
    digests = 25 if quick else 100
    objects = 32
    cpus = os.cpu_count() or 1

    def experiment():
        rows = []
        # Warm both paths (thread spawn, payload page-in, hash init)
        # so the first timed regime doesn't pay the cold start.
        _facade_throughput(None, threads, 10, objects)
        _facade_gil_release(None, threads, 2)
        for label, stripes in (("global-mutex", 0), ("striped", None)):
            elapsed, committed = _facade_throughput(
                stripes, threads, transactions, objects
            )
            rows.append(
                {
                    "workload": "pure-python",
                    "regime": label,
                    "threads": threads,
                    "cpus": cpus,
                    "txns": committed,
                    "seconds": round(elapsed, 3),
                    "txns_per_sec": int(committed / max(elapsed, 1e-9)),
                }
            )
        for label, stripes in (("global-mutex", 0), ("striped", None)):
            elapsed, committed = _facade_gil_release(
                stripes, threads, digests
            )
            rows.append(
                {
                    "workload": "gil-releasing",
                    "regime": label,
                    "threads": threads,
                    "cpus": cpus,
                    "txns": committed,
                    "seconds": round(elapsed, 3),
                    "txns_per_sec": int(committed / max(elapsed, 1e-9)),
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    speedups = {}
    for workload in ("pure-python", "gil-releasing"):
        pair = {
            row["regime"]: row
            for row in rows
            if row["workload"] == workload
        }
        speedup = pair["striped"]["txns_per_sec"] / max(
            pair["global-mutex"]["txns_per_sec"], 1
        )
        speedups[workload] = speedup
        for row in pair.values():
            row["speedup_vs_global"] = round(
                row["txns_per_sec"]
                / max(pair["global-mutex"]["txns_per_sec"], 1),
                2,
            )
    print_table("E18: facade striping (real threads)", rows)
    json_path = os.environ.get("E18_JSON")
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(
                {"experiment": "e18_facade_striping", "rows": rows},
                handle,
                indent=2,
            )
    # The smoke assertions are deliberately loose (CI runners are
    # noisy, often single-core VMs where no parallel win is possible);
    # the headline numbers belong in the printed table and the JSON
    # artifact, not a flaky threshold.
    assert speedups["pure-python"] > 0.5
    assert speedups["gil-releasing"] > 0.5
