"""E24 (scenario league table): one spec, every scheme, every backend.

Not a paper claim -- the cross-backend contract of the declarative
scenario layer (``repro.scenario``).  Each bundled library scenario
(bank, inventory, social-feed, ticketing) is compiled once per seed
and executed on two backends (the DES simulator and the threaded
:class:`ThreadSafeEngine`) under three locking schemes (moss-rw,
flat-2pl, exclusive), producing a league table of committed /
aborted / retries / throughput per cell.

Guards pin the contract rather than any absolute number:

* every cell of one scenario reports the *same* operation-stream
  digest -- the compiler, not the backend, owns the workload;
* every cell conserves transactions (committed + aborted == total)
  and commits at least one;
* moss-rw commits everything the serial-equivalent simulator commits
  (lock inheritance never loses transactions that exclusive-mode
  retries could strand).

Environment knobs (for the CI scenario-smoke job):

* ``E24_QUICK=1`` shrinks each run to a 12-transaction prefix;
* ``E24_JSON=<path>`` overrides where the JSON artifact is written
  (default: ``BENCH_E24.json`` at the repo root).
"""

import json
import os

from conftest import print_table, run_once

from repro.scenario import (
    compile_scenario,
    get_driver,
    library_names,
    load_library_scenario,
)

SEED = 7
BACKENDS = ("sim", "threadsafe")
SCHEMES = ("moss-rw", "flat-2pl", "exclusive")


def run_league(quick):
    transactions = 12 if quick else None
    rows = []
    digests = {}
    for name in library_names():
        spec = load_library_scenario(name)
        compiled = compile_scenario(
            spec, SEED, transactions=transactions
        )
        digests[name] = compiled.digest()
        for backend in BACKENDS:
            driver = get_driver(backend)
            for scheme in SCHEMES:
                result = driver.run(compiled, scheme=scheme)
                rows.append(result.row())
    return rows, digests


def test_e24_scenario_league(benchmark):
    quick = bool(os.environ.get("E24_QUICK"))

    def experiment():
        rows, digests = run_league(quick)
        return {"rows": rows, "digests": digests}

    outcome = run_once(benchmark, experiment)
    rows, digests = outcome["rows"], outcome["digests"]
    print_table("E24: scenario league table", rows)

    json_path = os.environ.get("E24_JSON") or os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        os.pardir,
        "BENCH_E24.json",
    )
    with open(json_path, "w") as handle:
        json.dump(
            {
                "experiment": "e24_scenario_league",
                "seed": SEED,
                "quick": quick,
                "backends": list(BACKENDS),
                "schemes": list(SCHEMES),
                "rows": rows,
            },
            handle,
            indent=2,
        )

    # Guard 1: the compiler owns the workload -- every cell of one
    # scenario reports the same digest regardless of backend/scheme.
    for row in rows:
        expected = digests[row["scenario"]][:16]
        assert row["digest"] == expected, (
            "digest drift in %r" % (row,)
        )

    # Guard 2: transaction conservation and liveness in every cell.
    for row in rows:
        total = row["committed"] + row["aborted"]
        assert total == row["transactions"], row
        assert row["committed"] > 0, row

    # Guard 3: moss-rw never strands transactions that the scheme's
    # retries could not push through -- on either backend.
    for row in rows:
        if row["scheme"] == "moss-rw":
            assert row["aborted"] == 0, row
