"""E7 (Section 4.3, Lemma 20): semantic conditions and write-equality.

Paper claims: CREATE operations and read-access responses are transparent
(semantic conditions 1-3), and write-equal well-formed schedules of a
basic object are equieffective.

Reproduction: for every ADT in the library, generate random well-formed
basic-object schedules, (a) strip all read responses / move CREATEs and
confirm equieffectiveness, (b) generate pairs that are write-equal by
construction and confirm the Lemma 20 conclusion.
"""

import random

from conftest import print_table, run_once

from repro.adt import BankAccount, Counter, FifoQueue, IntRegister, SetObject
from repro.core.equieffective import equieffective
from repro.core.events import Create, RequestCommit
from repro.core.names import ROOT, SystemTypeBuilder


def random_operations(rng, spec, count):
    pool = list(spec.example_operations())
    return [rng.choice(pool) for _ in range(count)]


def build_type_and_schedule(rng, spec, operations):
    """A linear system type plus the canonical schedule running it."""
    builder = SystemTypeBuilder()
    builder.add_object(spec)
    top = builder.add_child(ROOT)
    accesses = [
        builder.add_access(top, spec.name, operation)
        for operation in operations
    ]
    system_type = builder.build()
    value = spec.initial_value()
    schedule = []
    for access, operation in zip(accesses, operations):
        result, value = spec.apply(value, operation)
        schedule.append(Create(access))
        schedule.append(RequestCommit(access, result))
    return system_type, schedule


SPECS = [
    IntRegister("x"),
    Counter("c"),
    SetObject("s"),
    FifoQueue("q"),
    BankAccount("b", 100),
]


def test_e7_read_transparency_and_lemma20(benchmark):
    def experiment():
        rng = random.Random(123)
        rows = []
        violations = 0
        for spec in SPECS:
            pairs_checked = 0
            for _ in range(20):
                operations = random_operations(rng, spec, 6)
                system_type, schedule = build_type_and_schedule(
                    rng, spec, operations
                )
                # (a) Dropping every read access is equieffective.
                reads_stripped = []
                skip = set()
                for index, operation in enumerate(operations):
                    if operation.is_read:
                        skip.add((0, index))
                reads_stripped = [
                    event
                    for event in schedule
                    if event.transaction not in skip
                ]
                pairs_checked += 1
                if not equieffective(
                    system_type, spec.name,
                    tuple(schedule), tuple(reads_stripped),
                ):
                    violations += 1
                # (b) Moving every CREATE to the front (write-equal
                # permutation) is equieffective.
                fronted = (
                    [e for e in schedule if isinstance(e, Create)]
                    + [e for e in schedule if not isinstance(e, Create)]
                )
                pairs_checked += 1
                if not equieffective(
                    system_type, spec.name,
                    tuple(schedule), tuple(fronted),
                ):
                    violations += 1
            rows.append(
                {
                    "spec": type(spec).__name__,
                    "pairs_checked": pairs_checked,
                    "violations": violations,
                }
            )
        return rows, violations

    rows, violations = run_once(benchmark, experiment)
    print_table("E7: semantic conditions / Lemma 20", rows)
    assert violations == 0


def test_e7_write_reorder_detected(benchmark):
    """Negative control: swapping two non-commuting write responses is NOT
    equieffective, so the decision procedure has discriminating power."""

    def experiment():
        spec = IntRegister("x")
        builder = SystemTypeBuilder()
        builder.add_object(spec)
        top = builder.add_child(ROOT)
        first = builder.add_access(top, "x", IntRegister.write(1))
        second = builder.add_access(top, "x", IntRegister.write(2))
        system_type = builder.build()
        one = (
            Create(first), RequestCommit(first, 0),
            Create(second), RequestCommit(second, 1),
        )
        other = (
            Create(second), RequestCommit(second, 0),
            Create(first), RequestCommit(first, 2),
        )
        return equieffective(system_type, "x", one, other)

    same = run_once(benchmark, experiment)
    print("\nE7 negative control: reordered writes equieffective ->", same)
    assert same is False
