"""End-to-end: the fuzzer finds, minimises, and replays known bugs.

This is the acceptance test for the fuzz subsystem: seed a known-broken
policy (``NoInheritPolicy`` -- commit of an access-leaf *drops* its
locks instead of inheriting them to the parent, the exact mistake the
paper's INFORM_COMMIT rule exists to prevent) and prove the pipeline

    fuzz_search -> check_engine_trace -> shrink_choices -> replay

deterministically catches it, reduces it, and reproduces it byte for
byte.  Fault modes that do *not* break the model (crashes, denial
spikes, orphan creation) must conversely stay conformant: the engine's
guards absorb them.
"""

from dataclasses import replace

import pytest

from repro.fuzz import (
    FuzzConfig,
    emit_regression_test,
    fuzz_search,
    run_case,
    same_failure,
    shrink_choices,
)

BROKEN = FuzzConfig(seed=7, faults="broken-no-inherit")


@pytest.fixture(scope="module")
def found():
    search = fuzz_search(BROKEN, runs=5)
    assert search.failure is not None, "fuzzer missed a known bug"
    return search


class TestFindsNoInheritViolation:
    def test_first_attempt_finds_it(self, found):
        # The violation is schedule-independent, so attempt one on the
        # base seed must already expose it.
        assert found.attempts == 1
        assert found.failure.config.seed == 7

    def test_classified_as_conformance_failure(self, found):
        failure = found.failure
        assert failure.kind == "conformance"
        assert failure.failed
        # Dropped inheritance shows up both as a lock-discipline race
        # and as linter violations of the R/W rules.
        assert "RACE001" in failure.rule_codes
        assert "RW001" in failure.rule_codes

    def test_finding_lines_mention_rules(self, found):
        text = "\n".join(found.failure.finding_lines)
        assert "RW007" in text
        assert "rejected" in text  # the refinement replay diagnosis

    def test_shrinks_to_empty_schedule(self, found):
        # No particular interleaving is needed -- the policy is broken
        # on *every* schedule -- so ddmin must reach the empty list.
        result = shrink_choices(found.failure.config, found.failure)
        assert result.minimized.choices == []
        assert result.removed == len(found.failure.choices)
        assert same_failure(result.minimized, found.failure.signature)

    def test_replay_is_byte_for_byte(self, found):
        first = run_case(BROKEN, choices=found.failure.choices)
        second = run_case(BROKEN, choices=found.failure.choices)
        assert first.digest == second.digest == found.failure.digest
        assert first.decisions == found.failure.decisions

    def test_emitted_regression_test_pins_the_failure(self, found):
        source = emit_regression_test(found.failure)
        assert "def test_fuzz_regression_seed_7" in source
        assert "broken-no-inherit" in source
        assert found.failure.digest in source
        # The emitted file must be importable python.
        compile(source, "<emitted>", "exec")

    def test_correct_policy_same_schedule_is_clean(self, found):
        # Same seed, same choice list, correct policy: conformant.
        # This pins the blame on the policy, not the schedule.
        fixed = replace(found.failure.config, faults="none")
        result = run_case(fixed, choices=found.failure.choices)
        assert not result.failed


ORPHAN = FuzzConfig(
    seed=7,
    faults="orphan",
    transactions_per_worker=3,
    steps_per_transaction=5,
)


class TestOrphanFaultMode:
    """The new fault mode: inject orphans, engine must refuse them."""

    @pytest.fixture(scope="class")
    def orphan_case(self):
        return run_case(ORPHAN)

    def test_orphans_are_created_and_refused(self, orphan_case):
        hits = sum(
            log.orphan_guard_hits for log in orphan_case.logs
        )
        assert hits > 0

    def test_trace_stays_conformant(self, orphan_case):
        # Orphaned work never reaches the lock tables, so the trace
        # must still refine M(X).
        assert not orphan_case.failed
        assert orphan_case.kind == "ok"

    def test_orphan_run_is_deterministic(self, orphan_case):
        again = run_case(ORPHAN)
        assert again.digest == orphan_case.digest


class TestBenignFaultsStayConformant:
    @pytest.mark.parametrize("faults", ["crash", "deny-spike"])
    def test_single_run(self, faults):
        result = run_case(FuzzConfig(seed=3, faults=faults))
        assert not result.failed

    def test_crashes_actually_happen(self):
        result = run_case(FuzzConfig(seed=5, faults="crash"))
        assert sum(log.crashed for log in result.logs) > 0
        assert not result.failed

    @pytest.mark.slow
    @pytest.mark.parametrize("faults", ["chaos", "crash", "orphan"])
    def test_many_seeds(self, faults):
        for seed in range(8):
            result = run_case(FuzzConfig(seed=seed, faults=faults))
            assert not result.failed, (
                "seed %d faults=%s: %s %s"
                % (seed, faults, result.kind, result.rule_codes)
            )
