"""The delta-debugging shrinker, against a synthetic failure model.

``shrink_choices`` judges candidates by re-running the case, so these
tests substitute a fake ``run_case`` whose failure condition is a known
function of the choice list -- the shrinker must then recover the known
minimum.  An end-to-end shrink of a real engine failure lives in
``test_fuzzer_finds_violation.py``.
"""

from dataclasses import dataclass, field
from typing import List, Tuple

import pytest

import repro.fuzz.shrink as shrink_module
from repro.fuzz import FuzzConfig
from repro.fuzz.shrink import _chunks, shrink_choices


@dataclass
class _FakeResult:
    """Just enough of FuzzCaseResult for the shrinker."""

    choices: List[int]
    kind: str
    rule_codes: Tuple[str, ...] = ()
    digest: str = "fake"
    failed_flag: bool = True
    logs: List = field(default_factory=list)

    @property
    def failed(self):
        return self.kind != "ok"

    @property
    def signature(self):
        return (self.kind, self.rule_codes)


def _install_fake(monkeypatch, failing_predicate):
    calls = []

    def fake_run_case(config, choices=None):
        choices = list(choices or [])
        calls.append(choices)
        if failing_predicate(choices):
            return _FakeResult(
                choices=choices,
                kind="conformance",
                rule_codes=("RW007",),
            )
        return _FakeResult(choices=choices, kind="ok")

    monkeypatch.setattr(shrink_module, "run_case", fake_run_case)
    return calls


class TestChunks:
    def test_partitions_preserve_order(self):
        assert _chunks([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]
        assert _chunks([1, 2, 3], 3) == [[1], [2], [3]]

    def test_more_chunks_than_items(self):
        assert _chunks([1, 2], 5) == [[1], [2]]


class TestShrink:
    def test_finds_single_critical_choice(self, monkeypatch):
        # The failure needs a 2 somewhere; everything else is noise.
        _install_fake(monkeypatch, lambda cs: 2 in cs)
        failing = _FakeResult(
            choices=[0, 1, 0, 2, 1, 0, 1, 2, 0, 1],
            kind="conformance",
            rule_codes=("RW007",),
        )
        result = shrink_choices(FuzzConfig(seed=0), failing)
        assert result.minimized.choices == [2]
        assert result.removed == 9

    def test_preserves_ordered_pair(self, monkeypatch):
        # Needs a 1 followed (not necessarily adjacently) by a 2.
        def needs_pair(cs):
            try:
                return 2 in cs[cs.index(1) + 1:]
            except ValueError:
                return False

        _install_fake(monkeypatch, needs_pair)
        failing = _FakeResult(
            choices=[0, 2, 1, 0, 0, 2, 1, 2, 0],
            kind="conformance",
            rule_codes=("RW007",),
        )
        result = shrink_choices(FuzzConfig(seed=0), failing)
        assert result.minimized.choices == [1, 2]

    def test_one_minimality(self, monkeypatch):
        # Whatever survives, removing any single element must pass.
        def predicate(cs):
            return cs.count(1) >= 2 and 0 in cs

        _install_fake(monkeypatch, predicate)
        failing = _FakeResult(
            choices=[1, 0, 1, 1, 0, 0, 1],
            kind="conformance",
            rule_codes=("RW007",),
        )
        minimized = shrink_choices(
            FuzzConfig(seed=0), failing
        ).minimized.choices
        assert predicate(minimized)
        for index in range(len(minimized)):
            dropped = minimized[:index] + minimized[index + 1:]
            assert not predicate(dropped)

    def test_schedule_independent_failure_shrinks_to_empty(
        self, monkeypatch
    ):
        _install_fake(monkeypatch, lambda cs: True)
        failing = _FakeResult(
            choices=[0, 1, 2] * 8,
            kind="conformance",
            rule_codes=("RW007",),
        )
        result = shrink_choices(FuzzConfig(seed=0), failing)
        assert result.minimized.choices == []

    def test_signature_mismatch_not_accepted(self, monkeypatch):
        # Shorter lists fail *differently* (other rule code): the
        # shrinker must not wander onto the unrelated failure.
        def fake_run_case(config, choices=None):
            choices = list(choices or [])
            if len(choices) >= 4:
                return _FakeResult(
                    choices=choices,
                    kind="conformance",
                    rule_codes=("RW007",),
                )
            return _FakeResult(
                choices=choices, kind="stall", rule_codes=()
            )

        monkeypatch.setattr(
            shrink_module, "run_case", fake_run_case
        )
        failing = _FakeResult(
            choices=[0, 1, 2, 0, 1, 2],
            kind="conformance",
            rule_codes=("RW007",),
        )
        result = shrink_choices(FuzzConfig(seed=0), failing)
        assert len(result.minimized.choices) == 4
        assert result.minimized.kind == "conformance"

    def test_budget_bounds_evaluations(self, monkeypatch):
        calls = _install_fake(monkeypatch, lambda cs: 2 in cs)
        failing = _FakeResult(
            choices=[2] + [0] * 40,
            kind="conformance",
            rule_codes=("RW007",),
        )
        result = shrink_choices(
            FuzzConfig(seed=0), failing, max_evaluations=7
        )
        assert result.evaluations <= 7
        assert len(calls) <= 7


class TestEvaluationsAccounting:
    def test_counts_match_runs(self, monkeypatch):
        calls = _install_fake(monkeypatch, lambda cs: 2 in cs)
        failing = _FakeResult(
            choices=[0, 2, 0, 0],
            kind="conformance",
            rule_codes=("RW007",),
        )
        result = shrink_choices(FuzzConfig(seed=0), failing)
        assert result.evaluations == len(calls)
        assert result.minimized.choices == [2]


@pytest.mark.parametrize("length", [1, 2, 9])
def test_chunks_roundtrip(length):
    items = list(range(length))
    for n in range(1, length + 1):
        flattened = [
            item for chunk in _chunks(items, n) for item in chunk
        ]
        assert flattened == items
