"""Determinism and replay of the interleaving controller."""

import pytest

from repro.fuzz import (
    BoundedPreemptionStrategy,
    FuzzConfig,
    ReplayStrategy,
    run_case,
)


@pytest.fixture(scope="module")
def clean_case():
    return run_case(FuzzConfig(seed=11))


class TestDeterminism:
    def test_same_seed_same_run(self, clean_case):
        again = run_case(FuzzConfig(seed=11))
        assert again.decisions == clean_case.decisions
        assert again.digest == clean_case.digest
        assert again.trace_length == clean_case.trace_length

    def test_different_seed_different_schedule(self, clean_case):
        other = run_case(FuzzConfig(seed=12))
        assert other.digest != clean_case.digest

    def test_replay_choice_list_is_exact(self, clean_case):
        replay = run_case(
            FuzzConfig(seed=11), choices=clean_case.decisions
        )
        assert replay.decisions == clean_case.decisions
        assert replay.digest == clean_case.digest

    def test_clean_run_is_conformant(self, clean_case):
        assert not clean_case.failed
        assert clean_case.kind == "ok"
        assert clean_case.rule_codes == ()

    def test_workers_all_made_progress(self, clean_case):
        assert len(clean_case.logs) == 3
        assert all(log.performed for log in clean_case.logs)


class TestReplayFallback:
    def test_short_choice_list_is_deterministic(self):
        first = run_case(FuzzConfig(seed=11), choices=[2, 2, 1])
        second = run_case(FuzzConfig(seed=11), choices=[2, 2, 1])
        assert first.digest == second.digest
        # The canonical reproducer input is echoed back, while the
        # full decision record keeps going past it.
        assert first.choices == [2, 2, 1]
        assert first.decision_count > 3

    def test_invalid_choice_falls_back(self):
        # Worker 9 never exists: every decision falls back to the
        # lowest runnable id, same as an empty list.
        via_invalid = run_case(FuzzConfig(seed=11), choices=[9] * 50)
        via_empty = run_case(FuzzConfig(seed=11), choices=[])
        assert via_invalid.digest == via_empty.digest


class TestStrategies:
    def test_replay_strategy_falls_back_to_min(self):
        strategy = ReplayStrategy([1])
        assert strategy.pick(0, (0, 1, 2)) == 1
        assert strategy.pick(1, (0, 2)) == 0
        assert strategy.pick(5, (2,)) == 2

    def test_bounded_strategy_is_nonpreemptive_by_default(self):
        strategy = BoundedPreemptionStrategy()
        assert strategy.pick(0, (0, 1, 2)) == 0
        assert strategy.pick(1, (0, 1, 2)) == 0
        # Current worker blocks: switch to the lowest runnable.
        assert strategy.pick(2, (1, 2)) == 1
        assert strategy.pick(3, (1, 2)) == 1

    def test_bounded_strategy_preempts_at_chosen_decision(self):
        strategy = BoundedPreemptionStrategy({1: 0})
        assert strategy.pick(0, (0, 1, 2)) == 0
        # Preemption: leave worker 0 for the next worker over.
        assert strategy.pick(1, (0, 1, 2)) == 1
        assert strategy.pick(2, (0, 1, 2)) == 1

    def test_bounded_run_is_deterministic(self):
        first = run_case(
            FuzzConfig(seed=11),
            strategy=BoundedPreemptionStrategy({3: 0}),
        )
        second = run_case(
            FuzzConfig(seed=11),
            strategy=BoundedPreemptionStrategy({3: 0}),
        )
        assert first.digest == second.digest
        assert not first.failed
