"""Fuzzing arbitrary registered schemes through the kernel registry."""

import pytest

from repro.fuzz import FuzzConfig, run_case

SCHEMES = ("moss-rw", "exclusive", "flat-2pl", "mvto")


class TestSchemeSelection:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_clean_run_per_scheme(self, scheme):
        result = run_case(FuzzConfig(seed=3, scheme=scheme))
        assert not result.failed, (result.kind, result.stall_reason)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_runs_are_deterministic(self, scheme):
        config = FuzzConfig(seed=7, scheme=scheme)
        assert run_case(config).digest == run_case(config).digest

    def test_schemes_actually_differ(self):
        config = FuzzConfig(seed=3)
        moss = run_case(config)
        mvto = run_case(FuzzConfig(seed=3, scheme="mvto"))
        assert moss.digest != mvto.digest

    def test_fault_policy_overrides_the_requested_scheme(self):
        # The broken-no-inherit preset must keep injecting its policy
        # (and the oracle must keep catching it) whatever scheme the
        # config asks for.
        result = run_case(
            FuzzConfig(seed=3, faults="broken-no-inherit",
                       scheme="mvto")
        )
        assert result.kind == "conformance"
        assert result.rule_codes


class TestNonConformantSchemes:
    def test_mvto_skips_the_replay_oracle(self):
        result = run_case(FuzzConfig(seed=3, scheme="mvto"))
        # MVTO keeps no model-alphabet trace: the digest still covers
        # decisions and yield events, but the trace contribution is
        # empty rather than an error.
        assert result.trace_length == 0
        assert result.kind == "ok"

    @pytest.mark.parametrize("faults", ["crash", "orphan", "chaos"])
    def test_mvto_survives_fault_presets(self, faults):
        result = run_case(
            FuzzConfig(seed=5, scheme="mvto", faults=faults)
        )
        assert not result.failed, (result.kind, result.stall_reason)
