"""Observer unit tests plus engine-integration coverage.

The integration half checks the subsystem's core promise: the recorded
span tree mirrors the transaction tree, counters agree with what the
engine actually did, and an engine without an observer behaves exactly
as before.
"""

import pytest

from repro.adt import BankAccount, Counter, IntRegister
from repro.engine import Engine
from repro.obs import Observer


class FakeClock:
    """A settable clock so observer tests are deterministic."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def tick(self, amount=1.0):
        self.now += amount
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def observer(clock):
    return Observer(clock=clock)


class TestObserverUnit:
    def test_use_clock_repoints_time(self, observer):
        observer.use_clock(lambda: 123.0)
        assert observer.now() == 123.0

    def test_commit_latency_measured_by_clock(self, observer, clock):
        observer.txn_begin((0,))
        clock.tick(2.5)
        observer.txn_commit((0,))
        snap = observer.metrics.snapshot()
        assert snap["counters"]["txn.begin{scope=top}"] == 1
        assert snap["counters"]["txn.commit{scope=top}"] == 1
        histogram = snap["histograms"]["txn.commit_latency{scope=top}"]
        assert histogram["count"] == 1
        assert histogram["sum"] == 2.5

    def test_active_gauge_tracks_concurrency(self, observer):
        observer.txn_begin((0,))
        observer.txn_begin((1,))
        observer.txn_commit((0,))
        gauge = observer.metrics.gauge("txn.active")
        assert gauge.value == 1
        assert gauge.high_water == 2

    def test_abort_cause_first_tag_wins(self, observer):
        observer.txn_begin((3,))
        observer.mark_abort_cause((3,), "wound-wait")
        observer.mark_abort_cause((3,), "deadlock")
        observer.txn_abort((3,))
        snap = observer.metrics.snapshot()
        assert (
            snap["counters"]["txn.abort{cause=wound-wait,scope=top}"]
            == 1
        )

    def test_abort_without_tag_uses_given_cause(self, observer):
        observer.txn_begin((0, 1))
        observer.txn_abort((0, 1), cause="ancestor-abort")
        snap = observer.metrics.snapshot()
        assert (
            snap["counters"][
                "txn.abort{cause=ancestor-abort,scope=child}"
            ]
            == 1
        )

    def test_wound_counts_and_tags_victim_top(self, observer):
        observer.txn_begin((7,))
        observer.wound((7, 0), by=(1,))
        observer.txn_abort((7,))
        snap = observer.metrics.snapshot()
        assert snap["counters"]["woundwait.victims"] == 1
        assert (
            snap["counters"]["txn.abort{cause=wound-wait,scope=top}"]
            == 1
        )

    def test_lock_wait_feeds_metrics_contention_and_trace(
        self, observer
    ):
        observer.lock_wait((1,), "x", 2.0, 5.0)
        snap = observer.metrics.snapshot()
        assert snap["counters"]["lock.waits"] == 1
        assert snap["histograms"]["lock.wait_time"]["sum"] == 3.0
        assert observer.contention.objects["x"].total_wait == 3.0
        (span,) = observer.tracer.completed()
        assert span.category == "wait"
        assert span.duration == 3.0

    def test_lock_transition_counts_inheritance(self, observer):
        observer.lock_transition("commit", (0, 1), ("x", "y"))
        observer.lock_transition("commit", (0,), ("x",))  # to ROOT
        observer.lock_transition("abort", (2,), ("z",))
        snap = observer.metrics.snapshot()
        assert snap["counters"]["lock.inherited"] == 2
        assert snap["counters"]["lock.released_abort"] == 1
        assert "lock.inherited" in snap["counters"]

    def test_trace_disabled_observer_still_aggregates(self, clock):
        observer = Observer(trace=False, clock=clock)
        observer.txn_begin((0,))
        observer.txn_commit((0,))
        observer.lock_wait((1,), "x", 0.0, 1.0)
        assert observer.tracer.completed() == []
        snap = observer.metrics.snapshot()
        assert snap["counters"]["txn.commit{scope=top}"] == 1
        assert snap["counters"]["lock.waits"] == 1


class TestEngineIntegration:
    def run_nested(self, observer):
        engine = Engine(
            [BankAccount("a", 100), IntRegister("log")],
            observer=observer,
        )
        with engine.begin_top() as top:
            child = top.begin_child()
            child.perform("a", BankAccount.withdraw(10))
            grandchild = child.begin_child()
            grandchild.perform("log", IntRegister.add(1))
            grandchild.commit()
            child.commit()
            doomed = top.begin_child()
            doomed.perform("a", BankAccount.balance())
            doomed.abort()
        observer.finish()
        return engine

    def test_span_tree_mirrors_transaction_tree(self, observer):
        self.run_nested(observer)
        spans = {
            span.txn: span
            for span in observer.tracer.completed()
            if span.category == "txn"
        }
        # One span per transaction the run created (access leaves take
        # child slots too, so the grandchild is (0, 0, 1)).
        assert set(spans) == {(0,), (0, 0), (0, 0, 1), (0, 1)}
        for name, span in spans.items():
            assert span.parent == name[:-1]
        # Children nest inside their parents in time.
        for name, span in spans.items():
            if len(name) == 1:
                continue
            parent = spans[name[:-1]]
            assert parent.start <= span.start
            assert span.end <= parent.end

    def test_outcomes_match_run(self, observer):
        self.run_nested(observer)
        outcomes = {
            span.txn: span.args["outcome"]
            for span in observer.tracer.completed()
            if span.category == "txn"
        }
        assert outcomes[(0,)] == "commit"
        assert outcomes[(0, 0)] == "commit"
        assert outcomes[(0, 1)] == "abort"

    def test_counters_match_run(self, observer):
        self.run_nested(observer)
        snap = observer.metrics.snapshot()
        counters = snap["counters"]
        assert counters["txn.begin{scope=top}"] == 1
        assert counters["txn.begin{scope=child}"] == 3
        assert counters["txn.commit{scope=top}"] == 1
        assert counters["txn.commit{scope=child}"] == 2
        assert counters["txn.abort{cause=explicit,scope=child}"] == 1
        # withdraw + add are writes; balance is a read.
        assert counters["access{mode=write}"] == 2
        assert counters["access{mode=read}"] == 1

    def test_child_commit_inherits_locks(self, observer):
        self.run_nested(observer)
        counters = observer.metrics.snapshot()["counters"]
        # Child commits moved locks to parents at least once.
        assert counters["lock.inherited"] >= 2

    def test_denial_reaches_contention_profiler(self, observer):
        from repro.errors import LockDenied

        engine = Engine([Counter("c")], observer=observer)
        holder = engine.begin_top()
        holder.perform("c", Counter.increment(1))
        waiter = engine.begin_top()
        with pytest.raises(LockDenied):
            waiter.perform("c", Counter.increment(1))
        observer.finish()
        counters = observer.metrics.snapshot()["counters"]
        assert counters["lock.denials"] == 1
        entry = observer.contention.objects["c"]
        assert entry.denials == 1
        assert entry.pairs == {((1,), (0,)): 1}

    def test_engine_without_observer_is_unobserved(self):
        engine = Engine([Counter("c")])
        assert engine.obs is None
        top = engine.begin_top()
        top.perform("c", Counter.increment(1))
        top.commit()
        assert engine.object_value("c") == 1

    def test_observed_run_matches_unobserved_values(self, observer):
        observed = self.run_nested(observer)
        engine = Engine([BankAccount("a", 100), IntRegister("log")])
        with engine.begin_top() as top:
            child = top.begin_child()
            child.perform("a", BankAccount.withdraw(10))
            grandchild = child.begin_child()
            grandchild.perform("log", IntRegister.add(1))
            grandchild.commit()
            child.commit()
            doomed = top.begin_child()
            doomed.perform("a", BankAccount.balance())
            doomed.abort()
        assert observed.object_value("a") == engine.object_value("a")
        assert observed.object_value("log") == engine.object_value("log")
