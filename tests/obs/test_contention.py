"""Unit tests for the lock-contention profiler (repro.obs.contention)."""

from repro.obs.contention import ContentionProfiler, ObjectContention


class TestObjectContention:
    def test_mean_wait_of_empty_is_zero(self):
        entry = ObjectContention("x")
        assert entry.mean_wait == 0.0

    def test_hottest_pairs_orders_by_count_then_pair(self):
        entry = ObjectContention("x")
        entry.pairs = {
            ((0,), (1,)): 2,
            ((2,), (1,)): 5,
            ((1,), (0,)): 2,
        }
        ordered = entry.hottest_pairs(limit=2)
        assert ordered[0] == (((2,), (1,)), 5)
        assert ordered[1] == (((0,), (1,)), 2)


class TestContentionProfiler:
    def test_record_denial_counts_top_level_pairs(self):
        profiler = ContentionProfiler()
        profiler.record_denial("x", (1, 0), [(0, 2), (0, 3)])
        entry = profiler.objects["x"]
        assert entry.denials == 1
        # Both blockers collapse to top-level T0.
        assert entry.pairs == {((1,), (0,)): 2}

    def test_record_wait_aggregates(self):
        profiler = ContentionProfiler()
        profiler.record_wait("x", (1,), 2.0)
        profiler.record_wait("x", (2,), 6.0)
        entry = profiler.objects["x"]
        assert entry.waits == 2
        assert entry.total_wait == 8.0
        assert entry.mean_wait == 4.0
        assert entry.max_wait == 6.0

    def test_top_orders_by_total_wait_then_denials(self):
        profiler = ContentionProfiler()
        profiler.record_wait("cold", (0,), 1.0)
        profiler.record_wait("hot", (0,), 10.0)
        profiler.record_denial("noisy", (0,), [(1,)])
        profiler.record_denial("noisy", (0,), [(1,)])
        top = profiler.top(limit=2)
        assert [entry.object_name for entry in top] == ["hot", "cold"]
        everything = profiler.top(limit=10)
        # Zero-wait objects sort after waited-on ones, by denials.
        assert everything[-1].object_name == "noisy"

    def test_snapshot_is_json_ready(self):
        profiler = ContentionProfiler()
        profiler.record_denial("x", (1, 0), [(0,)])
        profiler.record_wait("x", (1, 0), 0.5)
        (record,) = profiler.snapshot()
        assert record["object"] == "x"
        assert record["denials"] == 1
        assert record["waits"] == 1
        assert record["pairs"] == [
            {"waiter": "T0.1", "holder": "T0.0", "count": 1}
        ]

    def test_render_empty_and_nonempty(self):
        profiler = ContentionProfiler()
        assert "no lock contention" in profiler.render()
        profiler.record_denial("x", (1,), [(0,)])
        text = profiler.render()
        assert "object" in text
        assert "T0.1<-T0.0 x1" in text
