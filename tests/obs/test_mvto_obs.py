"""Observer integration for the MVTO scheme.

MVTO used to sit outside the observability layer; as a first-class
kernel scheme it must emit the same spans, counters and contention
entries the locking engines do.
"""

import pytest

from repro.adt import Counter
from repro.engine.threadsafe import ThreadSafeEngine
from repro.errors import LockDenied, RetryLater
from repro.obs import Observer
from repro.obs.workloads import run_contended_sim


class TestSimulatedMVTO:
    def test_counters_agree_with_runner_accounting(self):
        observer = Observer()
        metrics = run_contended_sim(
            observer, seed=3, programs=16, objects=4, mpl=6,
            policy="mvto",
        )
        counters = observer.metrics.snapshot()["counters"]
        assert counters["txn.commit{scope=top}"] == metrics.committed
        assert metrics.lock_denials > 0
        assert counters["lock.denials"] == metrics.lock_denials
        total_denials = sum(
            entry.denials
            for entry in observer.contention.objects.values()
        )
        assert total_denials == metrics.lock_denials

    def test_ts_conflicts_tagged_as_abort_cause(self):
        observer = Observer()
        metrics = run_contended_sim(
            observer, seed=3, programs=16, objects=4, mpl=6,
            policy="mvto",
        )
        assert metrics.program_restarts > 0
        counters = observer.metrics.snapshot()["counters"]
        ts_aborts = sum(
            value
            for key, value in counters.items()
            if key.startswith("txn.abort{cause=ts-conflict")
        )
        assert ts_aborts >= 1

    def test_all_spans_closed_after_finish(self):
        observer = Observer()
        run_contended_sim(
            observer, seed=5, programs=10, objects=3, policy="mvto"
        )
        assert observer.tracer._open == {}

    def test_observed_run_matches_unobserved(self):
        observed = run_contended_sim(
            Observer(), seed=11, programs=10, policy="mvto"
        )
        plain = run_contended_sim(
            Observer(trace=False), seed=11, programs=10, policy="mvto"
        )
        assert observed.committed == plain.committed
        assert observed.makespan == plain.makespan
        assert observed.lock_denials == plain.lock_denials


class TestThreadSafeMVTO:
    def test_wait_timeout_records_span_and_denial(self):
        observer = Observer()
        facade = ThreadSafeEngine(
            [Counter("c")], policy="mvto", observer=observer
        )
        writer = facade.begin_top()
        writer.perform("c", Counter.increment(1))
        # The reader has a later timestamp, so it waits on the pending
        # earlier writer (RetryLater) until its timeout expires.
        reader = facade.begin_top()
        with pytest.raises(LockDenied):
            reader.perform("c", Counter.value(), timeout=0.05)
        writer.commit()
        observer.finish()
        counters = observer.metrics.snapshot()["counters"]
        assert counters["lock.denials"] >= 1
        assert counters["lock.waits"] == 1
        wait_spans = [
            span
            for span in observer.tracer.completed()
            if span.category == "wait"
        ]
        assert len(wait_spans) == 1
        assert wait_spans[0].args["object"] == "c"

    def test_direct_engine_wait_counts_denial(self):
        observer = Observer()
        from repro.kernel import get_scheme

        engine = get_scheme("mvto").build(
            [Counter("c")], observer=observer
        )
        writer = engine.begin_top()
        writer.perform("c", Counter.increment(1))
        reader = engine.begin_top()
        with pytest.raises(RetryLater):
            reader.perform("c", Counter.value())
        observer.finish()
        counters = observer.metrics.snapshot()["counters"]
        assert counters["lock.denials"] == 1
        assert engine.stats["denials"] == 1
