"""Exporter tests: Chrome trace-event JSON, JSONL stream, text report."""

import json
from collections import defaultdict

from repro.obs import (
    Observer,
    iter_jsonl,
    render_report,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.workloads import run_quickstart


def observed_quickstart():
    observer = Observer()
    run_quickstart(observer, seed=0)
    return observer


def assert_tracks_are_consistent(events):
    """Spans on each track must stack: contained or disjoint, never
    partially overlapping, with non-negative ts/dur."""
    by_track = defaultdict(list)
    for event in events:
        if event["ph"] != "X":
            continue
        assert event["ts"] >= 0
        assert event["dur"] >= 0
        by_track[event["tid"]].append(event)
    assert by_track, "no complete events exported"
    for track_events in by_track.values():
        track_events.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for event in track_events:
            start, end = event["ts"], event["ts"] + event["dur"]
            while stack and start >= stack[-1][1]:
                stack.pop()
            if stack:
                # Opened inside the enclosing span: must end inside it.
                assert end <= stack[-1][1], (
                    "span %r partially overlaps its predecessor"
                    % event["name"]
                )
            stack.append((start, end))


class TestChromeTrace:
    def test_round_trips_through_json(self, tmp_path):
        observer = observed_quickstart()
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), observer)
        payload = json.loads(path.read_text())
        assert payload["traceEvents"]
        assert payload["displayTimeUnit"] == "ms"

    def test_structure(self):
        observer = observed_quickstart()
        payload = to_chrome_trace(observer)
        events = payload["traceEvents"]
        phases = {event["ph"] for event in events}
        assert phases == {"M", "X", "i"}
        metadata = [e for e in events if e["ph"] == "M"]
        assert all(e["name"] == "thread_name" for e in metadata)
        # One metadata record per track, tids 1..N.
        assert sorted(e["tid"] for e in metadata) == list(
            range(1, len(metadata) + 1)
        )
        assert all(e["pid"] == 1 for e in events)

    def test_one_span_per_transaction(self):
        observer = observed_quickstart()
        payload = to_chrome_trace(observer)
        txn_events = [
            event
            for event in payload["traceEvents"]
            if event.get("cat") == "txn"
        ]
        begun = observer.metrics.counter("txn.begin", scope="top").value
        begun += observer.metrics.counter(
            "txn.begin", scope="child"
        ).value
        assert len(txn_events) == begun
        names = [event["args"]["txn"] for event in txn_events]
        assert len(names) == len(set(names))

    def test_ts_dur_monotonically_consistent_per_track(self):
        observer = observed_quickstart()
        payload = to_chrome_trace(observer)
        assert_tracks_are_consistent(payload["traceEvents"])

    def test_trace_starts_at_zero(self):
        observer = observed_quickstart()
        payload = to_chrome_trace(observer)
        timestamps = [
            event["ts"]
            for event in payload["traceEvents"]
            if "ts" in event
        ]
        assert min(timestamps) == 0.0

    def test_outcomes_exported_in_args(self):
        observer = observed_quickstart()
        payload = to_chrome_trace(observer)
        outcomes = {
            event["args"].get("outcome")
            for event in payload["traceEvents"]
            if event.get("cat") == "txn"
        }
        assert "commit" in outcomes


class TestJsonl:
    def test_every_line_parses_and_ends_with_aggregates(self, tmp_path):
        observer = observed_quickstart()
        path = tmp_path / "trace.jsonl"
        write_jsonl(str(path), observer)
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        kinds = [record["type"] for record in records]
        assert kinds[-2:] == ["metrics", "contention"]
        assert "span" in kinds
        assert "instant" in kinds

    def test_span_records_carry_txn_names(self):
        observer = observed_quickstart()
        records = [json.loads(line) for line in iter_jsonl(observer)]
        spans = [r for r in records if r["type"] == "span"]
        assert all(r["txn"] for r in spans if r["cat"] == "txn")


class TestReport:
    def test_sections_present(self):
        observer = observed_quickstart()
        text = render_report(observer, top=5)
        assert "== spans ==" in text
        assert "== metrics ==" in text
        assert "== lock contention (top 5) ==" in text
        assert "txn.commit" in text

    def test_metrics_only_report(self):
        observer = Observer(trace=False)
        run_quickstart(observer, seed=0)
        text = render_report(observer)
        assert "tracing disabled" in text
        assert "txn.commit" in text
