"""Unit tests for the span tracer (repro.obs.tracer)."""

from repro.obs.tracer import NullTracer, SpanTracer


class TestSpanTracer:
    def test_begin_end_records_span_with_outcome(self):
        tracer = SpanTracer()
        tracer.begin_txn((0,), 1.0)
        tracer.end_txn((0,), 3.0, "commit")
        (span,) = tracer.completed()
        assert span.name == "T0.0"
        assert span.category == "txn"
        assert span.start == 1.0
        assert span.end == 3.0
        assert span.duration == 2.0
        assert span.args["outcome"] == "commit"
        assert span.txn == (0,)
        assert span.parent == ()

    def test_child_span_parent_is_transaction_parent(self):
        tracer = SpanTracer()
        tracer.begin_txn((0, 1), 1.0)
        tracer.end_txn((0, 1), 2.0, "abort", cause="explicit")
        (span,) = tracer.completed()
        assert span.parent == (0,)
        assert span.args["cause"] == "explicit"

    def test_end_without_begin_synthesises_zero_length_span(self):
        tracer = SpanTracer()
        tracer.end_txn((4,), 9.0, "commit")
        (span,) = tracer.completed()
        assert span.start == 9.0
        assert span.end == 9.0
        assert span.duration == 0.0

    def test_finish_closes_open_spans_as_unfinished(self):
        tracer = SpanTracer()
        tracer.begin_txn((0,), 1.0)
        tracer.begin_txn((1,), 2.0)
        tracer.end_txn((1,), 3.0, "commit")
        tracer.finish(10.0)
        spans = tracer.completed()
        assert len(spans) == 2
        unfinished = [
            s for s in spans if s.args["outcome"] == "unfinished"
        ]
        assert len(unfinished) == 1
        assert unfinished[0].txn == (0,)
        assert unfinished[0].end == 10.0

    def test_add_span_clamps_end_to_start(self):
        tracer = SpanTracer()
        tracer.add_span("wait x", "wait", 5.0, 4.0, txn=(0,))
        (span,) = tracer.completed()
        assert span.end == 5.0
        assert span.duration == 0.0

    def test_instants_and_tracks(self):
        tracer = SpanTracer()
        tracer.instant("r x", "access", 1.5, txn=(0, 0), object="x")
        assert len(tracer.instants) == 1
        event = tracer.instants[0]
        assert dict(event.args)["object"] == "x"
        assert tracer.tracks() == [event.track]

    def test_completed_is_sorted_by_start(self):
        tracer = SpanTracer()
        tracer.add_span("b", "wait", 5.0, 6.0)
        tracer.add_span("a", "wait", 1.0, 2.0)
        spans = tracer.completed()
        assert [s.start for s in spans] == [1.0, 5.0]


class TestNullTracer:
    def test_everything_is_a_noop(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.begin_txn((0,), 1.0)
        tracer.end_txn((0,), 2.0, "commit")
        tracer.add_span("w", "wait", 1.0, 2.0)
        tracer.instant("i", "access", 1.0)
        tracer.finish(3.0)
        assert tracer.completed() == []
        assert tracer.tracks() == []
