"""Observer integration with the execution layers above the engine.

Covers the simulation runner (simulated clock, cause tagging,
contention aggregation), the thread-safe facade (wait spans, wound
causes), the distributed runner (message/2PC metrics), and the fuzzer
(attaching an observer does not perturb the schedule digest).
"""

import pytest

from repro.adt import Counter
from repro.engine.threadsafe import ThreadSafeEngine
from repro.errors import LockDenied
from repro.obs import Observer
from repro.obs.workloads import run_contended_sim


class TestSimulationObserver:
    def test_contended_run_records_everything(self):
        observer = Observer()
        metrics = run_contended_sim(
            observer, seed=3, programs=12, objects=4, mpl=6
        )
        counters = observer.metrics.snapshot()["counters"]
        # The observer agrees with the runner's own accounting.
        assert counters["txn.commit{scope=top}"] == metrics.committed
        assert counters["lock.denials"] == metrics.lock_denials
        total_denials = sum(
            entry.denials
            for entry in observer.contention.objects.values()
        )
        assert total_denials == metrics.lock_denials

    def test_wound_wait_victims_tagged(self):
        observer = Observer()
        metrics = run_contended_sim(
            observer, seed=3, programs=24, objects=4, mpl=8
        )
        counters = observer.metrics.snapshot()["counters"]
        assert metrics.program_restarts > 0
        assert counters["woundwait.victims"] >= 1
        wound_aborts = sum(
            value
            for key, value in counters.items()
            if key.startswith("txn.abort{cause=wound-wait")
        )
        assert wound_aborts >= 1

    def test_spans_use_simulated_time(self):
        observer = Observer()
        metrics = run_contended_sim(
            observer, seed=3, programs=12, objects=4, mpl=6
        )
        spans = [
            span
            for span in observer.tracer.completed()
            if span.category == "txn"
        ]
        assert spans
        # Simulated clocks end at the makespan, not at wall time.
        assert max(span.end for span in spans) <= metrics.makespan
        assert min(span.start for span in spans) >= 0.0

    def test_all_spans_closed_after_finish(self):
        observer = Observer()
        run_contended_sim(observer, seed=5, programs=8, objects=3)
        assert observer.tracer._open == {}

    def test_observed_run_matches_unobserved(self):
        observed = run_contended_sim(Observer(), seed=11, programs=10)
        plain = run_contended_sim(
            Observer(trace=False), seed=11, programs=10
        )
        assert observed.committed == plain.committed
        assert observed.makespan == plain.makespan
        assert observed.lock_denials == plain.lock_denials


class TestThreadSafeObserver:
    def test_timeout_records_wait_and_denial(self):
        observer = Observer()
        facade = ThreadSafeEngine([Counter("c")], observer=observer)
        holder = facade.begin_top()
        holder.perform("c", Counter.increment(1))
        # The holder is older, so the waiter cannot wound it and must
        # wait out its timeout.
        waiter = facade.begin_top()
        with pytest.raises(LockDenied):
            waiter.perform("c", Counter.increment(1), timeout=0.05)
        holder.commit()
        observer.finish()
        counters = observer.metrics.snapshot()["counters"]
        assert counters["lock.denials"] >= 1
        assert counters["lock.waits"] == 1
        entry = observer.contention.objects["c"]
        assert entry.waits == 1
        assert entry.total_wait > 0.0
        wait_spans = [
            span
            for span in observer.tracer.completed()
            if span.category == "wait"
        ]
        assert len(wait_spans) == 1
        assert wait_spans[0].args["object"] == "c"

    def test_wound_tags_victim_cause(self):
        observer = Observer()
        facade = ThreadSafeEngine([Counter("c")], observer=observer)
        # Registration order is engine age: the first top is older.
        older = facade.begin_top()
        younger = facade.begin_top()
        younger.perform("c", Counter.increment(1))
        # The older transaction hits the younger's lock and wounds it.
        older.perform("c", Counter.increment(1))
        older.commit()
        observer.finish()
        counters = observer.metrics.snapshot()["counters"]
        assert counters["woundwait.victims"] == 1
        assert counters["txn.abort{cause=wound-wait,scope=top}"] == 1
        assert not younger.is_active

    def test_observer_does_not_change_results(self):
        observer = Observer()
        facade = ThreadSafeEngine([Counter("c")], observer=observer)
        top = facade.begin_top()
        top.perform("c", Counter.increment(5))
        top.commit()
        assert facade.object_value("c") == 5


class TestDistributedObserver:
    def test_message_metrics_recorded(self):
        from repro.dist import (
            DistributedConfig,
            run_distributed_simulation,
            uniform_topology,
        )
        from repro.sim import WorkloadConfig, make_store, make_workload

        config = WorkloadConfig(programs=8, objects=6)
        workload = make_workload(2, config)
        store = make_store(config)
        topology = uniform_topology(
            [spec.name for spec in store], sites=3, one_way_latency=1.0
        )
        observer = Observer(trace=False)
        metrics = run_distributed_simulation(
            workload,
            store,
            topology,
            DistributedConfig(mpl=4, seed=2),
            observer=observer,
        )
        counters = observer.metrics.snapshot()["counters"]
        sent = sum(
            value
            for key, value in counters.items()
            if key.startswith("dist.messages{")
        )
        assert sent == metrics.messages
        assert (
            counters.get("dist.access{kind=remote}", 0)
            == metrics.remote_accesses
        )
        assert (
            counters.get("dist.commit_rounds", 0)
            == metrics.commit_rounds
        )


class TestFuzzObserver:
    def test_observer_does_not_perturb_digest(self):
        from repro.fuzz import FuzzConfig, run_case

        config = FuzzConfig(seed=5)
        baseline = run_case(config)
        observed = run_case(config, observer=Observer())
        assert observed.digest == baseline.digest
        assert observed.kind == baseline.kind
        assert observed.decisions == baseline.decisions

    def test_observer_sees_the_fuzzed_run(self):
        from repro.fuzz import FuzzConfig, run_case

        observer = Observer()
        run_case(FuzzConfig(seed=5), observer=observer)
        observer.finish()
        counters = observer.metrics.snapshot()["counters"]
        begun = sum(
            value
            for key, value in counters.items()
            if key.startswith("txn.begin")
        )
        assert begun > 0
        assert observer.tracer.completed()
