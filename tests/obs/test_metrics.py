"""Unit tests for the metric primitives (repro.obs.metrics)."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Summary,
    exponential_buckets,
    percentile,
)


class TestPercentile:
    """The pinned edge-case contract of the canonical percentile."""

    def test_empty_returns_zero(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([], 0.0) == 0.0
        assert percentile([], 1.0) == 0.0

    def test_single_sample_for_every_fraction(self):
        for fraction in (0.0, 0.25, 0.5, 0.95, 1.0):
            assert percentile([42.0], fraction) == 42.0

    def test_fraction_zero_is_minimum(self):
        assert percentile([5.0, 1.0, 3.0], 0.0) == 1.0

    def test_fraction_one_is_maximum(self):
        assert percentile([5.0, 1.0, 3.0], 1.0) == 5.0

    def test_median_of_odd_count(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_nearest_rank_interior(self):
        values = list(range(1, 11))  # 1..10
        # round() half-rounds to even: round(0.5 * 9) == 4 -> 5th value.
        assert percentile(values, 0.5) == 5
        assert percentile(values, 0.95) == 10
        assert percentile(values, 0.1) == 2

    def test_input_order_is_irrelevant(self):
        assert percentile([9.0, 1.0, 5.0], 0.5) == percentile(
            [1.0, 5.0, 9.0], 0.5
        )

    @pytest.mark.parametrize("fraction", [-0.01, 1.01, 2.0, -1.0])
    def test_fraction_outside_unit_interval_raises(self, fraction):
        with pytest.raises(ValueError):
            percentile([1.0], fraction)


class TestExponentialBuckets:
    def test_geometric_spacing(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 2.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 1.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 2.0, 0)

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert len(DEFAULT_BUCKETS) == 16


class TestCounterGauge:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_tracks_high_water(self):
        gauge = Gauge()
        gauge.add(3)
        gauge.add(2)
        gauge.add(-4)
        assert gauge.value == 1
        assert gauge.high_water == 5


class TestHistogram:
    def test_bucketing_with_inclusive_upper_edges(self):
        histogram = Histogram(bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 10.0, 11.0):
            histogram.observe(value)
        assert histogram.bucket_counts == [2, 2, 1]
        assert histogram.count == 5
        assert histogram.min == 0.5
        assert histogram.max == 11.0

    def test_mean(self):
        histogram = Histogram(bounds=(10.0,))
        histogram.observe(2.0)
        histogram.observe(4.0)
        assert histogram.mean == 3.0

    def test_empty_snapshot_is_all_zero(self):
        snap = Histogram(bounds=(1.0,)).snapshot()
        assert snap["count"] == 0
        assert snap["mean"] == 0.0
        assert snap["min"] == 0.0
        assert snap["max"] == 0.0
        assert snap["p50"] == 0.0

    def test_quantile_reports_bucket_upper_edge(self):
        histogram = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 0.6, 0.7, 3.0):
            histogram.observe(value)
        # Ranks 0..2 fall in the first bucket (edge 1.0, capped at max
        # observed if lower); rank 3 in the 4.0 bucket.
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(1.0) == 3.0  # edge capped at max seen

    def test_quantile_monotone_in_q(self):
        histogram = Histogram()
        import random

        rng = random.Random(7)
        for _ in range(200):
            histogram.observe(rng.expovariate(1.0))
        previous = float("-inf")
        for step in range(0, 101, 5):
            estimate = histogram.quantile(step / 100.0)
            assert estimate >= previous
            previous = estimate

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_overflow_bucket_uses_observed_max(self):
        histogram = Histogram(bounds=(1.0,))
        histogram.observe(500.0)
        assert histogram.quantile(0.5) == 500.0


class TestSummary:
    def test_values_list_is_live(self):
        backing = [1.0, 2.0]
        summary = Summary(backing)
        summary.add(3.0)
        assert summary.count == 3
        assert summary.mean == 2.0

    def test_percentile_matches_canonical(self):
        summary = Summary([4.0, 1.0, 3.0, 2.0])
        for fraction in (0.0, 0.5, 0.95, 1.0):
            assert summary.percentile(fraction) == percentile(
                summary.values, fraction
            )

    def test_to_histogram(self):
        summary = Summary([0.5, 1.5])
        histogram = summary.to_histogram(bounds=(1.0,))
        assert histogram.bucket_counts == [1, 1]
        assert histogram.count == 2


class TestMetricsRegistry:
    def test_get_or_create_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("txn.abort", cause="wound")
        b = registry.counter("txn.abort", cause="wound")
        c = registry.counter("txn.abort", cause="deadlock")
        assert a is b
        assert a is not c

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("x", p="1", q="2")
        b = registry.counter("x", q="2", p="1")
        assert a is b

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.gauge("active").add(2)
        registry.histogram("latency", bounds=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"hits": 3}
        assert snap["gauges"]["active"]["high_water"] == 2
        assert snap["histograms"]["latency"]["count"] == 1

    def test_render_is_deterministic_and_labelled(self):
        registry = MetricsRegistry()
        registry.counter("txn.abort", cause="wound").inc()
        registry.counter("txn.abort", cause="deadlock").inc(2)
        text = registry.render()
        assert "txn.abort{cause=deadlock}" in text
        assert "txn.abort{cause=wound}" in text
        # Sorted: deadlock line precedes wound line.
        assert text.index("deadlock") < text.index("wound")
