"""The lock-grant fast path is invisible: differential + pinning tests.

``ManagedObject`` answers grant questions from O(1) aggregates
(deepest write holder, read-chain tracking) when it can, falling back
to the unoptimised ``blocking_holders`` scan when it cannot.  These
tests drive a fast object and a scan-only object (``FAST_GRANTS =
False``) through identical random histories and require bit-identical
behaviour: grants, denials, blocker sets, error messages, holder
sets, and observer/stats emission.
"""

import random

import pytest

from repro.adt import Counter, IntRegister
from repro.core.names import ROOT
from repro.engine import Engine
from repro.engine.lockmanager import LockManager, ManagedObject
from repro.engine.locks import LockMode
from repro.errors import LockDenied


class ScanManagedObject(ManagedObject):
    """The pre-optimisation behaviour: every grant runs the full scan,
    and the manager treats the class as unindexed (full-scan
    commit/abort propagation), like any unknown managed-object class.
    """

    FAST_GRANTS = False
    HOLDER_INDEXED = False


def random_names(rng, count):
    """Random transaction names over a narrow alphabet (depth <= 4)."""
    out = []
    for _ in range(count):
        depth = rng.randint(1, 4)
        out.append(tuple(rng.randint(0, 2) for _ in range(depth)))
    return out


def apply_step(managed, step):
    """Apply one (kind, ...) step; return a comparable outcome."""
    kind = step[0]
    if kind == "acquire":
        _, name, mode = step
        operation = (
            Counter.increment(1)
            if mode is LockMode.WRITE
            else Counter.value()
        )
        try:
            return ("ok", managed.acquire(name, operation, mode))
        except LockDenied as denial:
            return ("denied", str(denial), frozenset(denial.blockers))
    if kind == "commit":
        _, name = step
        if managed.holds_lock(name):
            managed.on_commit(name)
            return ("committed", name)
        return ("skip",)
    _, name = step
    managed.on_abort(name)
    return ("aborted", name)


def random_history(seed, steps=120):
    rng = random.Random(seed)
    pool = random_names(rng, 12)
    history = []
    for _ in range(steps):
        roll = rng.random()
        name = rng.choice(pool)
        if roll < 0.6:
            mode = (
                LockMode.WRITE if rng.random() < 0.5 else LockMode.READ
            )
            history.append(("acquire", name, mode))
        elif roll < 0.85:
            history.append(("commit", name))
        else:
            history.append(("abort", name))
    return history


class TestFastScanEquivalence:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_histories_agree(self, seed):
        fast = ManagedObject(Counter("c"))
        scan = ScanManagedObject(Counter("c"))
        for step in random_history(seed):
            assert apply_step(fast, step) == apply_step(scan, step)
            assert fast.write_holders == scan.write_holders
            assert fast.read_holders == scan.read_holders
            assert (
                fast.versions.holders() == scan.versions.holders()
            )

    @pytest.mark.parametrize("seed", range(25))
    def test_fast_path_aggregates_stay_truthful(self, seed):
        """After every step the aggregates match a recomputation."""
        managed = ManagedObject(Counter("c"))
        for step in random_history(seed):
            apply_step(managed, step)
            writes = managed.write_holders
            if writes:
                assert managed._deepest_write in writes
                assert all(
                    len(h) <= len(managed._deepest_write)
                    for h in writes
                )
            else:
                assert managed._deepest_write is None
            reads = sorted(managed.read_holders, key=len)
            chain = all(
                deep[: len(shallow)] == shallow
                for shallow, deep in zip(reads, reads[1:])
            )
            assert managed._reads_chain == chain
            if chain and reads:
                assert managed._deepest_read == reads[-1]


class TestDenialPinning:
    def test_cached_then_invalidated_denial_is_byte_identical(self):
        """Regression pin: the fast path must never alter a denial.

        (0,) takes a write lock -- its descendants are then fast-granted.
        After (0,) commits (a lock movement that bumps the generation
        and moves the lock to ROOT), a *different* tree writes, and the
        original tree's next acquire must be denied with exactly the
        blockers and message the unoptimised scan produces.
        """
        managed = ManagedObject(Counter("c"))
        managed.acquire((0,), Counter.increment(1), LockMode.WRITE)
        # Fast-grant a descendant (the "cached" ancestry answer).
        managed.acquire((0, 3), Counter.value(), LockMode.READ)
        generation = managed.generation
        managed.on_commit((0, 3))
        managed.on_commit((0,))
        assert managed.generation > generation  # movement invalidates
        managed.acquire((1, 0), Counter.increment(5), LockMode.WRITE)
        with pytest.raises(LockDenied) as info:
            managed.acquire((0, 4), Counter.increment(1), LockMode.WRITE)
        assert info.value.blockers == frozenset({(1, 0)})
        assert str(info.value) == "c blocked on (0, 4) by [(1, 0)]"
        # And the scan path raises the very same error.
        scan = ScanManagedObject(Counter("c"))
        scan.acquire((0,), Counter.increment(1), LockMode.WRITE)
        scan.acquire((0, 3), Counter.value(), LockMode.READ)
        scan.on_commit((0, 3))
        scan.on_commit((0,))
        scan.acquire((1, 0), Counter.increment(5), LockMode.WRITE)
        with pytest.raises(LockDenied) as scan_info:
            scan.acquire((0, 4), Counter.increment(1), LockMode.WRITE)
        assert scan_info.value.blockers == info.value.blockers
        assert str(scan_info.value) == str(info.value)

    def test_non_chain_readers_fall_back_to_scan_blockers(self):
        managed = ManagedObject(Counter("c"))
        managed.acquire((0, 0), Counter.value(), LockMode.READ)
        managed.acquire((1, 0), Counter.value(), LockMode.READ)
        assert not managed._reads_chain
        with pytest.raises(LockDenied) as info:
            managed.acquire((2, 0), Counter.increment(1), LockMode.WRITE)
        assert info.value.blockers == frozenset({(0, 0), (1, 0)})


class TestEngineLevelParity:
    """Stats, observer counters, and spans match with the fast path off."""

    def _drive(self, fast_grants):
        from repro.obs import Observer

        original = ManagedObject.FAST_GRANTS
        ManagedObject.FAST_GRANTS = fast_grants
        try:
            observer = Observer()
            engine = Engine(
                [Counter("c"), IntRegister("x")], observer=observer
            )
            t0 = engine.begin_top()
            t1 = engine.begin_top()
            a = t0.begin_child()
            a.perform("c", Counter.increment(1))
            with pytest.raises(LockDenied) as info:
                t1.perform("c", Counter.increment(1))
            a.commit()
            t0.perform("x", IntRegister.add(2))
            t0.commit()
            t1.perform("c", Counter.increment(4))
            t1.commit()
            return (
                dict(engine.stats),
                str(info.value),
                frozenset(info.value.blockers),
                engine.object_value("c"),
                observer.metrics.snapshot()["counters"],
            )
        finally:
            ManagedObject.FAST_GRANTS = original

    def test_fast_and_scan_runs_are_identical(self):
        assert self._drive(True) == self._drive(False)


class TestGenerationCounter:
    def test_acquire_does_not_bump(self):
        managed = ManagedObject(Counter("c"))
        managed.acquire((0,), Counter.increment(1), LockMode.WRITE)
        managed.acquire((0, 1), Counter.value(), LockMode.READ)
        assert managed.generation == 0

    def test_movement_bumps(self):
        managed = ManagedObject(Counter("c"))
        managed.acquire((0, 0), Counter.increment(1), LockMode.WRITE)
        managed.on_commit((0, 0))
        assert managed.generation == 1
        managed.on_abort((0,))
        assert managed.generation == 2

    def test_noop_abort_does_not_bump(self):
        managed = ManagedObject(Counter("c"))
        managed.acquire((0, 0), Counter.increment(1), LockMode.WRITE)
        before = managed.generation
        managed.on_abort((7,))  # nothing held below (7,)
        assert managed.generation == before
        assert (0, 0) in managed.write_holders

    def test_rehome_bumps(self):
        managed = ManagedObject(Counter("c"))
        managed.acquire((0, 0), Counter.increment(1), LockMode.WRITE)
        managed.rehome((0, 0), (0,), LockMode.WRITE)
        assert managed.generation == 1
        assert (0,) in managed.write_holders
        assert (0, 0) not in managed.write_holders


class TestHoldersView:
    def test_view_is_zero_copy_and_holders_still_copies(self):
        managed = ManagedObject(Counter("c"))
        view_writes, view_reads = managed.holders_view()
        assert view_writes is managed.write_holders
        assert view_reads is managed.read_holders
        copy_writes, copy_reads = managed.holders()
        assert copy_writes == view_writes
        assert copy_writes is not managed.write_holders
        assert copy_reads is not managed.read_holders


class TestManagerHolderIndex:
    def test_touched_order_matches_registration_order(self):
        specs = [Counter("m%d" % i) for i in range(6)]
        manager = LockManager(specs)
        # Acquire in an order unlike registration order.
        for name in ("m4", "m1", "m3"):
            manager.object(name).acquire(
                (0, 0), Counter.increment(1), LockMode.WRITE
            )
        assert manager.on_commit((0, 0)) == ["m1", "m3", "m4"]
        assert manager.on_commit((0,)) == ["m1", "m3", "m4"]
        # Completed top-level: the index entry is retired.
        assert (0,) not in manager._held_by_top

    def test_abort_prunes_index(self):
        manager = LockManager([Counter("c"), Counter("d")])
        manager.object("c").acquire(
            (1, 0), Counter.increment(1), LockMode.WRITE
        )
        manager.object("d").acquire(
            (1, 1), Counter.increment(1), LockMode.WRITE
        )
        assert manager._held_by_top[(1,)] == {"c", "d"}
        assert manager.on_abort((1, 0)) == ["c"]
        assert manager._held_by_top[(1,)] == {"d"}
        assert manager.on_abort((1,)) == ["d"]
        assert (1,) not in manager._held_by_top

    def test_index_matches_full_scan_on_random_histories(self):
        rng = random.Random(99)
        specs = [Counter("o%d" % i) for i in range(4)]
        indexed = LockManager(specs)
        scan = LockManager(specs, make_managed=ScanManagedObject)
        assert not scan._indexed  # unknown class: full-scan fallback
        pool = random_names(rng, 10)
        for _ in range(200):
            roll = rng.random()
            name = rng.choice(pool)
            spot = "o%d" % rng.randrange(4)
            if roll < 0.55:
                mode = (
                    LockMode.WRITE
                    if rng.random() < 0.5
                    else LockMode.READ
                )
                operation = (
                    Counter.increment(1)
                    if mode is LockMode.WRITE
                    else Counter.value()
                )
                for manager in (indexed, scan):
                    try:
                        manager.object(spot).acquire(
                            name, operation, mode
                        )
                    except LockDenied:
                        pass
            elif roll < 0.8:
                if indexed.object(spot).holds_lock(name):
                    assert indexed.on_commit(name) == scan.on_commit(
                        name
                    )
            else:
                assert indexed.on_abort(name) == scan.on_abort(name)
        for spot in ("o0", "o1", "o2", "o3"):
            assert (
                indexed.object(spot).write_holders
                == scan.object(spot).write_holders
            )
            assert (
                indexed.object(spot).read_holders
                == scan.object(spot).read_holders
            )


class TestAbortEarlyOut:
    def test_early_out_leaves_sets_untouched(self):
        managed = ManagedObject(Counter("c"))
        managed.acquire((0,), Counter.increment(1), LockMode.WRITE)
        writes_before = set(managed.write_holders)
        managed.on_abort((1,))
        assert managed.write_holders == writes_before

    def test_early_out_still_discards_stranded_versions(self):
        """Broken policies can leave a version with no lock; the
        early-out must still clear it (and count the movement)."""
        managed = ManagedObject(Counter("c"))
        managed.versions.install((2, 0), 7)
        assert not managed.is_locked_by_subtree((2,))
        before = managed.generation
        managed.on_abort((2,))
        assert (2, 0) not in managed.versions.holders()
        assert managed.generation == before + 1
