"""Unit tests for lock modes and conflict rules."""

from repro.engine.locks import LockMode, blocking_holders, conflicts


class TestConflicts:
    def test_write_conflicts_with_everything(self):
        assert conflicts(LockMode.WRITE, LockMode.WRITE)
        assert conflicts(LockMode.WRITE, LockMode.READ)
        assert conflicts(LockMode.READ, LockMode.WRITE)

    def test_reads_compatible(self):
        assert not conflicts(LockMode.READ, LockMode.READ)


class TestBlockingHolders:
    def test_ancestor_write_holder_never_blocks(self):
        blockers = blocking_holders(
            (0, 1, 2), LockMode.WRITE, write_holders={(0, 1)}, read_holders=set()
        )
        assert blockers == set()

    def test_root_never_blocks(self):
        blockers = blocking_holders(
            (3,), LockMode.WRITE, write_holders={()}, read_holders=set()
        )
        assert blockers == set()

    def test_foreign_write_blocks_read(self):
        blockers = blocking_holders(
            (1, 0), LockMode.READ, write_holders={(0,)}, read_holders=set()
        )
        assert blockers == {(0,)}

    def test_foreign_read_blocks_write_only(self):
        holders = dict(write_holders=set(), read_holders={(0,)})
        assert blocking_holders((1, 0), LockMode.READ, **holders) == set()
        assert blocking_holders((1, 0), LockMode.WRITE, **holders) == {(0,)}

    def test_descendant_holder_blocks(self):
        """A child's lock blocks its own parent (non-ancestor direction)."""
        blockers = blocking_holders(
            (0, 9), LockMode.WRITE,
            write_holders={(0, 1)}, read_holders=set(),
        )
        assert blockers == {(0, 1)}

    def test_mixed_holders(self):
        blockers = blocking_holders(
            (2, 0),
            LockMode.WRITE,
            write_holders={(0,), ()},
            read_holders={(1,), (2,)},
        )
        assert blockers == {(0,), (1,)}
