"""Tests for commutativity-based (semantic) locking with undo recovery."""

import pytest

from repro.adt import BankAccount, Counter, IntRegister, SetObject
from repro.engine import Engine, make_policy
from repro.engine.semantic import SemanticManagedObject, SemanticPolicy
from repro.errors import EngineError, LockDenied


@pytest.fixture
def engine():
    return Engine(
        [Counter("c"), SetObject("s"), BankAccount("a", 100)],
        policy="semantic",
    )


class TestPolicyRegistration:
    def test_make_policy(self):
        policy = make_policy("semantic")
        assert isinstance(policy, SemanticPolicy)
        assert policy.moves_locks
        assert not policy.model_conformant

    def test_engine_uses_semantic_objects(self, engine):
        assert isinstance(
            engine.locks.object("c"), SemanticManagedObject
        )


class TestConflictRelation:
    def test_bumps_commute_across_trees(self, engine):
        one = engine.begin_top()
        two = engine.begin_top()
        one.perform("c", Counter.bump(5))
        two.perform("c", Counter.bump(3))  # no LockDenied
        assert engine.object_value("c", committed=False) == 8

    def test_moss_would_block_the_same_bumps(self):
        moss = Engine([Counter("c")], policy="moss-rw")
        one = moss.begin_top()
        two = moss.begin_top()
        one.perform("c", Counter.bump(5))
        with pytest.raises(LockDenied):
            two.perform("c", Counter.bump(3))

    def test_observing_reads_still_conflict(self, engine):
        one = engine.begin_top()
        two = engine.begin_top()
        one.perform("c", Counter.bump(5))
        with pytest.raises(LockDenied):
            two.perform("c", Counter.value())

    def test_set_distinct_elements_commute(self, engine):
        one = engine.begin_top()
        two = engine.begin_top()
        one.perform("s", SetObject.insert("x"))
        two.perform("s", SetObject.insert("y"))
        assert two.perform("s", SetObject.contains("z")) is False

    def test_set_same_element_conflicts(self, engine):
        one = engine.begin_top()
        two = engine.begin_top()
        one.perform("s", SetObject.insert("x"))
        with pytest.raises(LockDenied) as info:
            two.perform("s", SetObject.contains("x"))
        assert (0,) in info.value.blockers

    def test_credits_commute(self, engine):
        one = engine.begin_top()
        two = engine.begin_top()
        one.perform("a", BankAccount.credit(10))
        two.perform("a", BankAccount.credit(20))
        one.commit()
        two.commit()
        assert engine.object_value("a") == 130


class TestUndoRecovery:
    def test_abort_undoes_only_the_subtree(self, engine):
        one = engine.begin_top()
        two = engine.begin_top()
        one.perform("c", Counter.bump(5))
        two.perform("c", Counter.bump(3))
        two.abort()
        assert engine.object_value("c", committed=False) == 5
        one.commit()
        assert engine.object_value("c") == 5

    def test_out_of_order_undo_is_sound(self, engine):
        """Abort the *earlier* writer after a later commuting write."""
        one = engine.begin_top()
        two = engine.begin_top()
        one.perform("c", Counter.bump(5))   # first
        two.perform("c", Counter.bump(3))   # second
        one.abort()                          # undo the first
        two.commit()
        assert engine.object_value("c") == 3

    def test_set_insert_undo_respects_prior_membership(self, engine):
        setup = engine.begin_top()
        setup.perform("s", SetObject.insert("x"))
        setup.commit()
        txn = engine.begin_top()
        # Inserting an existing element: undo must NOT remove it.
        assert txn.perform("s", SetObject.insert("x")) is False
        txn.abort()
        assert "x" in engine.object_value("s")

    def test_failed_withdraw_needs_no_undo(self, engine):
        txn = engine.begin_top()
        assert txn.perform("a", BankAccount.withdraw(10 ** 6)) is False
        txn.abort()
        assert engine.object_value("a") == 100

    def test_nested_commit_then_top_abort(self, engine):
        top = engine.begin_top()
        child = top.begin_child()
        child.perform("c", Counter.bump(7))
        child.commit()
        top.abort()
        assert engine.object_value("c") == 0

    def test_committed_value_masks_uncommitted(self, engine):
        one = engine.begin_top()
        one.perform("c", Counter.bump(9))
        assert engine.object_value("c", committed=True) == 0
        assert engine.object_value("c", committed=False) == 9


class TestConformanceGate:
    def test_semantic_traces_not_model_conformant(self):
        from repro.checking import check_engine_trace

        engine = Engine([Counter("c")], policy="semantic", trace=True)
        with pytest.raises(EngineError):
            check_engine_trace(engine)


class TestClassicalOracle:
    def test_semantic_runs_state_equivalent(self):
        """Random semantic runs: final state equals a serial replay under
        the *generalized* conflict relation (no edges between commuting
        operations)."""
        import random

        rng = random.Random(11)
        engine = Engine(
            [Counter("c"), SetObject("s")], policy="semantic"
        )
        tops = [engine.begin_top() for _ in range(4)]
        expected_total = 0
        expected_set = set()
        plans = []
        for index, top in enumerate(tops):
            bumps = [rng.randrange(1, 5) for _ in range(3)]
            element = "e%d" % index
            plans.append((top, bumps, element))
        for top, bumps, element in plans:
            for amount in bumps:
                top.perform("c", Counter.bump(amount))
            top.perform("s", SetObject.insert(element))
        # Abort one tree, commit the rest.
        doomed = plans[1][0]
        doomed.abort()
        for top, bumps, element in plans:
            if top is doomed:
                continue
            top.commit()
            expected_total += sum(bumps)
            expected_set.add(element)
        assert engine.object_value("c") == expected_total
        assert set(engine.object_value("s")) == expected_set
