"""Unit tests for the Moss lock manager."""

import pytest

from repro.adt import Counter, IntRegister
from repro.core.names import ROOT
from repro.engine.lockmanager import LockManager, ManagedObject
from repro.engine.locks import LockMode
from repro.errors import EngineError, LockDenied


@pytest.fixture
def managed():
    return ManagedObject(Counter("c"))


class TestAcquire:
    def test_write_grant(self, managed):
        result = managed.acquire(
            (0, 0), Counter.increment(2), LockMode.WRITE
        )
        assert result == 2
        assert (0, 0) in managed.write_holders
        assert managed.current_value() == 2
        assert managed.committed_value() == 0

    def test_read_grant_leaves_versions(self, managed):
        result = managed.acquire((0, 0), Counter.value(), LockMode.READ)
        assert result == 0
        assert (0, 0) in managed.read_holders
        assert managed.versions.holders() == (ROOT,)

    def test_conflicting_grant_denied_with_blockers(self, managed):
        managed.acquire((0, 0), Counter.increment(1), LockMode.WRITE)
        with pytest.raises(LockDenied) as info:
            managed.acquire((1, 0), Counter.value(), LockMode.READ)
        assert info.value.blockers == frozenset({(0, 0)})

    def test_descendant_of_holder_may_access(self, managed):
        managed.acquire((0,), Counter.increment(1), LockMode.WRITE)
        result = managed.acquire((0, 5), Counter.value(), LockMode.READ)
        assert result == 1


class TestCommitPropagation:
    def test_lock_and_version_flow_to_root(self, managed):
        managed.acquire((0, 0), Counter.increment(3), LockMode.WRITE)
        managed.on_commit((0, 0))
        assert (0,) in managed.write_holders
        managed.on_commit((0,))
        assert managed.write_holders == {ROOT}
        assert managed.committed_value() == 3

    def test_commit_of_root_rejected(self, managed):
        with pytest.raises(EngineError):
            managed.on_commit(ROOT)


class TestAbortPropagation:
    def test_abort_discards_and_restores(self, managed):
        managed.acquire((0, 0), Counter.increment(3), LockMode.WRITE)
        managed.on_commit((0, 0))
        managed.on_abort((0,))
        assert managed.write_holders == {ROOT}
        assert managed.current_value() == 0

    def test_abort_spares_other_subtrees(self, managed):
        managed.acquire((0,), Counter.increment(1), LockMode.WRITE)
        managed.on_abort((1,))
        assert (0,) in managed.write_holders


class TestLockManager:
    def test_duplicate_object_rejected(self):
        with pytest.raises(EngineError):
            LockManager([Counter("c"), Counter("c")])

    def test_unknown_object_rejected(self):
        manager = LockManager([Counter("c")])
        with pytest.raises(EngineError):
            manager.object("nope")

    def test_on_commit_touches_only_holding_objects(self):
        manager = LockManager([Counter("c"), IntRegister("x")])
        manager.object("c").acquire(
            (0,), Counter.increment(1), LockMode.WRITE
        )
        touched = manager.on_commit((0,))
        assert touched == ["c"]

    def test_on_abort_reports_subtree_objects(self):
        manager = LockManager([Counter("c"), IntRegister("x")])
        manager.object("c").acquire(
            (0, 0), Counter.increment(1), LockMode.WRITE
        )
        manager.object("x").acquire(
            (0, 1), IntRegister.add(1), LockMode.WRITE
        )
        touched = manager.on_abort((0,))
        assert sorted(touched) == ["c", "x"]
        assert manager.object("c").write_holders == {ROOT}
