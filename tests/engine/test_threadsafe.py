"""Tests for the thread-safe blocking facade."""

import threading
import time

import pytest

from repro.adt import BankAccount, Counter
from repro.engine.threadsafe import ThreadSafeEngine
from repro.errors import (
    InvalidTransactionState,
    LockDenied,
    TransactionAborted,
)


@pytest.fixture
def facade():
    return ThreadSafeEngine([BankAccount("acct", 100), Counter("c")])


class TestSingleThread:
    def test_basic_flow(self, facade):
        with facade.begin_top() as txn:
            txn.perform("acct", BankAccount.deposit(10))
        assert facade.object_value("acct") == 110

    def test_context_manager_aborts_on_error(self, facade):
        with pytest.raises(RuntimeError):
            with facade.begin_top() as txn:
                txn.perform("acct", BankAccount.deposit(10))
                raise RuntimeError("boom")
        assert facade.object_value("acct") == 100

    def test_children(self, facade):
        top = facade.begin_top()
        child = top.begin_child()
        child.perform("c", Counter.increment(1))
        child.commit()
        top.commit()
        assert facade.object_value("c") == 1

    def test_timeout_raises_lock_denied(self, facade):
        holder = facade.begin_top()
        holder.perform("acct", BankAccount.deposit(1))
        # An older waiter cannot wound... make the waiter YOUNGER so it
        # waits (wound-wait: younger waits on older).
        waiter = facade.begin_top()
        with pytest.raises(LockDenied):
            waiter.perform(
                "acct", BankAccount.balance(), timeout=0.05
            )
        holder.commit()


class TestThreads:
    def test_blocking_wait_resolves(self, facade):
        """A younger reader blocks until the older writer commits."""
        holder = facade.begin_top()
        holder.perform("acct", BankAccount.withdraw(40))
        results = {}

        def reader():
            txn = facade.begin_top()
            results["balance"] = txn.perform(
                "acct", BankAccount.balance(), timeout=5.0
            )
            txn.commit()

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.05)
        holder.commit()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert results["balance"] == 60

    def test_wound_wait_aborts_younger_holder(self, facade):
        """An older transaction wounds the younger lock-holder."""
        elder = facade.begin_top()
        younger = facade.begin_top()
        younger.perform("acct", BankAccount.deposit(5))
        # The elder wants the lock: the younger holder is wounded.
        balance = elder.perform("acct", BankAccount.balance(), timeout=5.0)
        assert balance == 100
        assert not younger.is_active
        with pytest.raises(InvalidTransactionState):
            younger.perform("acct", BankAccount.balance())
        elder.commit()

    def test_many_threads_conserve_money(self, facade):
        """Concurrent transfers keep the committed total constant."""
        errors = []

        def worker(index):
            for _ in range(5):
                try:
                    txn = facade.begin_top()
                    txn.perform(
                        "acct",
                        BankAccount.deposit(1),
                        timeout=5.0,
                    )
                    txn.perform("c", Counter.increment(1), timeout=5.0)
                    txn.commit()
                except (TransactionAborted, InvalidTransactionState):
                    continue  # wounded: drop this iteration
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert all(not thread.is_alive() for thread in threads)
        # Deposits and the counter moved in lockstep: every committed
        # transaction did exactly one of each.
        deposited = facade.object_value("acct") - 100
        assert deposited == facade.object_value("c")
        assert 0 < deposited <= 20


class TestTimeoutDeadline:
    def test_timeout_bounds_total_wait_under_signal_storm(
        self, facade
    ):
        """Regression: *timeout* is a deadline, not a per-wait budget.

        The condition variable is signalled by every commit in the
        system.  A waiter whose 0.15 s timeout were re-applied to each
        individual wait would never expire while unrelated commits keep
        arriving every ~10 ms; with a monotonic deadline it must raise
        within the timeout regardless of signal traffic.
        """
        holder = facade.begin_top()
        holder.perform("acct", BankAccount.deposit(1))
        stop = threading.Event()

        def noise():
            # Unrelated commits, each of which signals the condition.
            while not stop.is_set():
                txn = facade.begin_top()
                txn.perform("c", Counter.increment(1), timeout=5.0)
                txn.commit()
                time.sleep(0.01)

        thread = threading.Thread(target=noise)
        thread.start()
        try:
            waiter = facade.begin_top()
            started = time.monotonic()
            with pytest.raises(LockDenied):
                waiter.perform(
                    "acct", BankAccount.balance(), timeout=0.15
                )
            elapsed = time.monotonic() - started
        finally:
            stop.set()
            thread.join(timeout=5.0)
        assert elapsed < 1.0, (
            "timeout restarted on every signal: %.2fs" % elapsed
        )
        holder.commit()


class TestWoundWaitEdges:
    def test_victim_already_inactive_is_not_wounded(self, facade):
        """A blocker that died before the wound lands is left alone."""
        elder = facade.begin_top()
        younger = facade.begin_top()
        younger.perform("acct", BankAccount.deposit(5))
        younger.abort()
        # Hand _wound a stale denial still naming the dead transaction
        # (the race: the blocker aborted between the denial and the
        # wound).  It must decline to wound and not blow up.
        denial = LockDenied(
            "stale", blockers={younger._inner.name}
        )
        with facade._mutex:
            assert facade._wound(elder._inner, denial) is False
        # The elder still gets the (now free) lock.
        assert elder.perform("acct", BankAccount.balance()) == 100
        elder.commit()

    def test_sibling_blocker_is_waited_for_not_wounded(self, facade):
        """Blockers under the waiter's own top are relatives: no wound.

        A younger-created child holding a conflicting sibling lock must
        make its sibling *wait* (here: time out), never abort it --
        wounding within one's own tree would be self-sabotage.
        """
        top = facade.begin_top()
        writer = top.begin_child()
        writer.perform("c", Counter.increment(1))
        reader = top.begin_child()
        with pytest.raises(LockDenied):
            reader.perform("c", Counter.value(), timeout=0.05)
        # Nothing in the family was aborted by the denial.
        assert top.is_active
        assert writer.is_active
        assert reader.is_active
        # Once the writer commits, the lock is inherited by `top`, an
        # ancestor of the reader, so the read proceeds.
        writer.commit()
        assert reader.perform("c", Counter.value()) == 1
        reader.commit()
        top.commit()

    def test_abort_races_blocked_perform(self, facade):
        """Aborting a transaction parked inside perform() unblocks it.

        The waiter sits in the condition wait; another thread aborts it
        (exactly what a wound does).  The retry after wake-up must
        surface the death as an exception, not hang or succeed.
        """
        holder = facade.begin_top()
        holder.perform("acct", BankAccount.deposit(1))
        waiter = facade.begin_top()
        outcome = {}

        def blocked_reader():
            try:
                outcome["value"] = waiter.perform(
                    "acct", BankAccount.balance(), timeout=10.0
                )
            except Exception as exc:
                outcome["error"] = exc

        thread = threading.Thread(target=blocked_reader)
        thread.start()
        time.sleep(0.1)  # let it park in the condition wait
        waiter.abort()  # signals the condition; waiter retries, dies
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert "value" not in outcome
        assert isinstance(
            outcome["error"],
            (TransactionAborted, InvalidTransactionState),
        )
        holder.commit()

    def test_commit_races_blocked_perform(self, facade):
        """A commit that lands while a sibling thread waits unblocks it
        with the result, exercising the release -> retry path."""
        holder = facade.begin_top()
        holder.perform("acct", BankAccount.deposit(7))
        waiter = facade.begin_top()
        outcome = {}

        def blocked_reader():
            outcome["value"] = waiter.perform(
                "acct", BankAccount.balance(), timeout=10.0
            )
            waiter.commit()

        thread = threading.Thread(target=blocked_reader)
        thread.start()
        time.sleep(0.05)
        holder.commit()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert outcome["value"] == 107
