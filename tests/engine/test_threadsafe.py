"""Tests for the thread-safe blocking facade."""

import threading
import time

import pytest

from repro.adt import BankAccount, Counter
from repro.engine.threadsafe import ThreadSafeEngine
from repro.errors import (
    InvalidTransactionState,
    LockDenied,
    TransactionAborted,
)


@pytest.fixture
def facade():
    return ThreadSafeEngine([BankAccount("acct", 100), Counter("c")])


class TestSingleThread:
    def test_basic_flow(self, facade):
        with facade.begin_top() as txn:
            txn.perform("acct", BankAccount.deposit(10))
        assert facade.object_value("acct") == 110

    def test_context_manager_aborts_on_error(self, facade):
        with pytest.raises(RuntimeError):
            with facade.begin_top() as txn:
                txn.perform("acct", BankAccount.deposit(10))
                raise RuntimeError("boom")
        assert facade.object_value("acct") == 100

    def test_children(self, facade):
        top = facade.begin_top()
        child = top.begin_child()
        child.perform("c", Counter.increment(1))
        child.commit()
        top.commit()
        assert facade.object_value("c") == 1

    def test_timeout_raises_lock_denied(self, facade):
        holder = facade.begin_top()
        holder.perform("acct", BankAccount.deposit(1))
        # An older waiter cannot wound... make the waiter YOUNGER so it
        # waits (wound-wait: younger waits on older).
        waiter = facade.begin_top()
        with pytest.raises(LockDenied):
            waiter.perform(
                "acct", BankAccount.balance(), timeout=0.05
            )
        holder.commit()


class TestThreads:
    def test_blocking_wait_resolves(self, facade):
        """A younger reader blocks until the older writer commits."""
        holder = facade.begin_top()
        holder.perform("acct", BankAccount.withdraw(40))
        results = {}

        def reader():
            txn = facade.begin_top()
            results["balance"] = txn.perform(
                "acct", BankAccount.balance(), timeout=5.0
            )
            txn.commit()

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.05)
        holder.commit()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert results["balance"] == 60

    def test_wound_wait_aborts_younger_holder(self, facade):
        """An older transaction wounds the younger lock-holder."""
        elder = facade.begin_top()
        younger = facade.begin_top()
        younger.perform("acct", BankAccount.deposit(5))
        # The elder wants the lock: the younger holder is wounded.
        balance = elder.perform("acct", BankAccount.balance(), timeout=5.0)
        assert balance == 100
        assert not younger.is_active
        with pytest.raises(InvalidTransactionState):
            younger.perform("acct", BankAccount.balance())
        elder.commit()

    def test_many_threads_conserve_money(self, facade):
        """Concurrent transfers keep the committed total constant."""
        errors = []

        def worker(index):
            for _ in range(5):
                try:
                    txn = facade.begin_top()
                    txn.perform(
                        "acct",
                        BankAccount.deposit(1),
                        timeout=5.0,
                    )
                    txn.perform("c", Counter.increment(1), timeout=5.0)
                    txn.commit()
                except (TransactionAborted, InvalidTransactionState):
                    continue  # wounded: drop this iteration
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert all(not thread.is_alive() for thread in threads)
        # Deposits and the counter moved in lockstep: every committed
        # transaction did exactly one of each.
        deposited = facade.object_value("acct") - 100
        assert deposited == facade.object_value("c")
        assert 0 < deposited <= 20
