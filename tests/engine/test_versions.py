"""Unit tests for version maps."""

import pytest

from repro.core.names import ROOT
from repro.engine.versions import VersionMap
from repro.errors import EngineError


@pytest.fixture
def versions():
    return VersionMap(initial=0)


class TestBasics:
    def test_initial_root_version(self, versions):
        assert versions.get(ROOT) == 0
        assert versions.current() == 0
        assert versions.deepest() == ROOT

    def test_install_and_current(self, versions):
        versions.install((0,), 5)
        versions.install((0, 1), 9)
        assert versions.current() == 9
        assert versions.get((0,)) == 5

    def test_install_overwrites(self, versions):
        versions.install((0,), 5)
        versions.install((0,), 7)
        assert versions.get((0,)) == 7

    def test_missing_version_raises(self, versions):
        with pytest.raises(EngineError):
            versions.get((9,))


class TestPromote:
    def test_promote_moves_to_parent(self, versions):
        versions.install((0, 1), 5)
        versions.promote((0, 1))
        assert versions.get((0,)) == 5
        assert not versions.has((0, 1))

    def test_promote_overwrites_parent_version(self, versions):
        versions.install((0,), 3)
        versions.install((0, 1), 5)
        versions.promote((0, 1))
        assert versions.get((0,)) == 5

    def test_promote_missing_is_noop(self, versions):
        versions.promote((4,))
        assert versions.holders() == (ROOT,)

    def test_promote_root_rejected(self, versions):
        with pytest.raises(EngineError):
            versions.promote(ROOT)


class TestDiscard:
    def test_discard_subtree(self, versions):
        versions.install((0,), 1)
        versions.install((0, 1), 2)
        versions.install((1,), 3)
        dropped = versions.discard_subtree((0,))
        assert dropped == 2
        assert versions.holders() == (ROOT, (1,))

    def test_discard_restores_commit_point(self, versions):
        versions.install((0,), 42)
        versions.discard_subtree((0,))
        assert versions.current() == 0
