"""Unit tests for SemanticManagedObject internals."""

import pytest

from repro.adt import Counter, SetObject
from repro.core.names import ROOT
from repro.engine.locks import LockMode
from repro.engine.semantic import SemanticManagedObject
from repro.errors import EngineError, LockDenied


@pytest.fixture
def managed():
    return SemanticManagedObject(Counter("c"))


class TestBlockers:
    def test_requires_operation(self, managed):
        with pytest.raises(EngineError):
            managed.blockers((0,), LockMode.WRITE)

    def test_commuting_holder_never_blocks(self, managed):
        managed.acquire((0, 0), Counter.bump(1), LockMode.WRITE)
        assert managed.blockers(
            (1, 0), LockMode.WRITE, operation=Counter.bump(2)
        ) == set()

    def test_conflicting_holder_blocks(self, managed):
        managed.acquire((0, 0), Counter.bump(1), LockMode.WRITE)
        assert managed.blockers(
            (1, 0), LockMode.WRITE, operation=Counter.value()
        ) == {(0, 0)}

    def test_ancestor_holder_never_blocks(self, managed):
        managed.acquire((0,), Counter.increment(1), LockMode.WRITE)
        assert managed.blockers(
            (0, 3), LockMode.WRITE, operation=Counter.value()
        ) == set()

    def test_acquire_raises_with_blockers(self, managed):
        managed.acquire((0, 0), Counter.increment(1), LockMode.WRITE)
        with pytest.raises(LockDenied) as info:
            managed.acquire((1, 0), Counter.increment(1), LockMode.WRITE)
        assert info.value.blockers == frozenset({(0, 0)})


class TestLogLifecycle:
    def test_commit_retags_to_parent(self, managed):
        managed.acquire((0, 0), Counter.bump(1), LockMode.WRITE)
        managed.on_commit((0, 0))
        assert managed.holds_lock((0,))
        assert not managed.holds_lock((0, 0))

    def test_commit_to_root_prunes_log(self, managed):
        managed.acquire((0,), Counter.bump(4), LockMode.WRITE)
        managed.on_commit((0,))
        assert managed.log == []
        assert managed.committed_value() == 4
        assert managed.current_value() == 4

    def test_commit_of_root_rejected(self, managed):
        with pytest.raises(EngineError):
            managed.on_commit(ROOT)

    def test_abort_undoes_newest_first(self):
        managed = SemanticManagedObject(SetObject("s"))
        # Same-element operations by an ancestor chain (same element by
        # siblings would conflict).
        managed.acquire((0,), SetObject.insert("a"), LockMode.WRITE)
        managed.acquire((0, 1), SetObject.remove("a"), LockMode.WRITE)
        # Undo in reverse: re-insert "a", then remove it again.
        managed.on_abort((0,))
        assert managed.current_value() == frozenset()

    def test_abort_spares_other_subtrees(self, managed):
        managed.acquire((0, 0), Counter.bump(1), LockMode.WRITE)
        managed.acquire((1, 0), Counter.bump(2), LockMode.WRITE)
        managed.on_abort((0,))
        assert managed.current_value() == 2
        assert managed.holds_lock((1, 0))
        assert not managed.holds_lock((0, 0))

    def test_read_entries_have_no_undo(self, managed):
        managed.acquire((0, 0), Counter.value(), LockMode.READ)
        assert managed.log[0].undo is None
        managed.on_abort((0,))
        assert managed.current_value() == 0


class TestCommittedValue:
    def test_masks_all_uncommitted(self, managed):
        managed.acquire((0, 0), Counter.bump(3), LockMode.WRITE)
        managed.acquire((1, 0), Counter.bump(5), LockMode.WRITE)
        assert managed.current_value() == 8
        assert managed.committed_value() == 0

    def test_partial_commit_chain_still_uncommitted(self, managed):
        managed.acquire((0, 0), Counter.bump(3), LockMode.WRITE)
        managed.on_commit((0, 0))  # now held by (0,), still not ROOT
        assert managed.committed_value() == 0
        managed.on_commit((0,))
        assert managed.committed_value() == 3
