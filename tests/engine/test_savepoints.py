"""Unit tests for System R-style savepoints over nested transactions."""

import pytest

from repro.adt import BankAccount, Counter
from repro.engine import Engine
from repro.engine.savepoints import SavepointSession
from repro.errors import InvalidTransactionState


@pytest.fixture
def engine():
    return Engine([BankAccount("acct", 100), Counter("log")])


@pytest.fixture
def session(engine):
    return SavepointSession(engine.begin_top())


class TestBasics:
    def test_work_commits_through(self, engine, session):
        session.perform("acct", BankAccount.deposit(10))
        session.commit("done")
        assert engine.object_value("acct") == 110
        assert session.transaction.value == "done"

    def test_rollback_to_undoes_suffix(self, engine, session):
        session.perform("acct", BankAccount.deposit(10))
        mark = session.savepoint()
        session.perform("acct", BankAccount.withdraw(50))
        session.perform("log", Counter.increment(1))
        session.rollback_to(mark)
        session.commit()
        assert engine.object_value("acct") == 110
        assert engine.object_value("log") == 0

    def test_work_before_savepoint_survives(self, engine, session):
        session.perform("acct", BankAccount.deposit(25))
        mark = session.savepoint()
        session.perform("acct", BankAccount.withdraw(99))
        session.rollback_to(mark)
        balance = session.perform("acct", BankAccount.balance())
        assert balance == 125

    def test_savepoint_reusable_after_rollback(self, engine, session):
        mark = session.savepoint()
        for _ in range(3):
            session.perform("acct", BankAccount.withdraw(10))
            session.rollback_to(mark)
        session.commit()
        assert engine.object_value("acct") == 100

    def test_nested_savepoints(self, engine, session):
        session.perform("acct", BankAccount.deposit(1))
        outer = session.savepoint()
        session.perform("acct", BankAccount.deposit(2))
        inner = session.savepoint()
        session.perform("acct", BankAccount.deposit(4))
        session.rollback_to(inner)
        session.perform("acct", BankAccount.deposit(8))
        session.commit()
        assert engine.object_value("acct") == 111

    def test_rollback_invalidates_deeper_marks(self, engine, session):
        outer = session.savepoint()
        inner = session.savepoint()
        session.rollback_to(outer)
        with pytest.raises(InvalidTransactionState):
            session.rollback_to(inner)

    def test_rollback_all(self, engine, session):
        session.perform("acct", BankAccount.deposit(10))
        session.savepoint()
        session.perform("acct", BankAccount.deposit(20))
        session.rollback_all()
        session.commit()
        assert engine.object_value("acct") == 100

    def test_abort_drops_everything(self, engine, session):
        session.perform("acct", BankAccount.deposit(10))
        session.abort()
        assert engine.object_value("acct") == 100
        with pytest.raises(InvalidTransactionState):
            session.perform("acct", BankAccount.balance())

    def test_closed_session_rejected(self, engine, session):
        session.commit()
        with pytest.raises(InvalidTransactionState):
            session.perform("acct", BankAccount.balance())
        with pytest.raises(InvalidTransactionState):
            session.savepoint()

    def test_depth_tracking(self, session):
        assert session.depth == 1
        session.savepoint()
        assert session.depth == 2


class TestIntegration:
    def test_trace_conformance(self):
        """Savepoint sessions are plain nested transactions: their traces
        refine the model like everything else."""
        from repro.checking import check_engine_trace

        engine = Engine([BankAccount("acct", 100)], trace=True)
        session = SavepointSession(engine.begin_top())
        session.perform("acct", BankAccount.deposit(5))
        mark = session.savepoint()
        session.perform("acct", BankAccount.withdraw(30))
        session.rollback_to(mark)
        session.perform("acct", BankAccount.withdraw(10))
        session.commit()
        assert engine.object_value("acct") == 95
        assert check_engine_trace(engine).ok

    def test_retryable_recovery_block(self, engine):
        """The System R pattern: retry a failing block at the savepoint."""
        session = SavepointSession(engine.begin_top())
        mark = session.savepoint()
        attempts = 0
        while True:
            attempts += 1
            # The "recovery block": withdraw an amount that fails until
            # the third try.
            amount = 400 // attempts
            ok = session.perform("acct", BankAccount.withdraw(amount))
            if ok:
                break
            session.rollback_to(mark)
        session.commit()
        assert attempts == 4
        assert engine.object_value("acct") == 0
