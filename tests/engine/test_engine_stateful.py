"""Hypothesis stateful testing of the engine's core invariants.

A random sequence of begin/access/commit/abort calls over a small store
must maintain, after every step:

* **Lemma 21 (engine side)** -- in every lock table, any write-holder is
  ancestor-related to every other holder;
* **version-map domain** -- exactly the write-holders have versions;
* **status sanity** -- no transaction is both committed and aborted, and
  a committed transaction has no active children;
* **conservation** -- the committed total across bank accounts equals
  the initial total plus committed net deposits (reads and aborted work
  contribute nothing).
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.adt import BankAccount, Counter
from repro.core.names import is_ancestor
from repro.engine import Engine, TransactionStatus
from repro.errors import LockDenied

OBJECTS = ("a", "b", "c")
INITIAL = 100


class EngineMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.engine = Engine(
            [BankAccount(name, INITIAL) for name in OBJECTS]
            + [Counter("ops")]
        )
        self.live = []
        self.committed_net = 0
        self.pending_net = {}

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    @rule()
    def begin_top(self):
        if len(self.live) < 8:
            txn = self.engine.begin_top()
            self.live.append(txn)
            self.pending_net[txn.name] = 0

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def begin_child(self, data):
        parent = data.draw(st.sampled_from(self.live))
        if parent.is_active and parent.depth < 4:
            child = parent.begin_child()
            self.live.append(child)
            self.pending_net[child.name] = 0

    @precondition(lambda self: self.live)
    @rule(
        data=st.data(),
        object_name=st.sampled_from(OBJECTS),
        amount=st.integers(1, 30),
        deposit=st.booleans(),
    )
    def access(self, data, object_name, amount, deposit):
        txn = data.draw(st.sampled_from(self.live))
        if not txn.is_active:
            return
        operation = (
            BankAccount.deposit(amount)
            if deposit
            else BankAccount.withdraw(amount)
        )
        try:
            result = txn.perform(object_name, operation)
        except LockDenied:
            return
        if deposit:
            self.pending_net[txn.name] += amount
        elif result:
            self.pending_net[txn.name] -= amount

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def commit(self, data):
        txn = data.draw(st.sampled_from(self.live))
        if not txn.is_active or txn.live_children():
            return
        net = self.pending_net.pop(txn.name, 0)
        txn.commit()
        if txn.is_top_level:
            self.committed_net += net
        elif txn.parent is not None:
            self.pending_net[txn.parent.name] = (
                self.pending_net.get(txn.parent.name, 0) + net
            )

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def abort(self, data):
        txn = data.draw(st.sampled_from(self.live))
        if not txn.is_active:
            return
        txn.abort()
        for name in list(self.pending_net):
            if name[: len(txn.name)] == txn.name:
                del self.pending_net[name]

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    @invariant()
    def lemma21_lock_tables_are_chains(self):
        for managed in self.engine.locks.objects.values():
            holders = managed.write_holders | managed.read_holders
            for writer in managed.write_holders:
                for holder in holders:
                    assert is_ancestor(writer, holder) or is_ancestor(
                        holder, writer
                    )

    @invariant()
    def version_domain_matches_write_holders(self):
        for managed in self.engine.locks.objects.values():
            assert set(managed.versions.holders()) == set(
                managed.write_holders
            )

    @invariant()
    def statuses_sane(self):
        for txn in self.live:
            if txn.status is TransactionStatus.COMMITTED:
                assert not any(
                    child.is_active for child in txn.children
                )
            if txn.parent is not None and (
                txn.parent.status is TransactionStatus.ABORTED
            ):
                assert txn.status is not TransactionStatus.COMMITTED or (
                    # Committed before the parent aborted: allowed; its
                    # effects were discarded with the parent.
                    True
                )

    @invariant()
    def money_conserved(self):
        committed_total = sum(
            self.engine.object_value(name) for name in OBJECTS
        )
        assert committed_total == INITIAL * len(OBJECTS) + (
            self.committed_net
        )

    @invariant()
    def committed_balances_never_negative(self):
        for name in OBJECTS:
            assert self.engine.object_value(name) >= 0


EngineMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
TestEngineStateful = EngineMachine.TestCase
