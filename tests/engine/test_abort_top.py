"""Regression tests for ``ThreadSafeEngine.abort_top``.

``abort_top`` is the service front-end's orphan-cleanup primitive: it
kills a top-level tree *by name*, from any thread, without holding the
tree's handle.  The contracts pinned here:

* idempotent -- a second abort (or an abort after commit) returns
  False and changes nothing;
* safe from a non-owner thread, racing the owner's own commit/abort;
* releases the tree's locks so blocked transactions proceed;
* identical behaviour in the striped and global-mutex regimes.
"""

import threading

import pytest

from repro.adt import Counter, IntRegister
from repro.engine.threadsafe import ThreadSafeEngine
from repro.errors import LockDenied, TransactionAborted


@pytest.fixture(params=["striped", "global"])
def facade(request):
    return ThreadSafeEngine(
        [Counter("c"), IntRegister("r")],
        policy="moss-rw",
        stripes=None if request.param == "striped" else 0,
    )


class TestBasics:
    def test_aborts_a_live_tree(self, facade):
        top = facade.begin_top()
        child = top.begin_child()
        child.perform("c", Counter.increment(5))
        assert facade.abort_top(top.name) is True
        assert not top.is_active
        assert not child.is_active
        assert facade.object_value("c") == 0

    def test_accepts_any_name_of_the_tree(self, facade):
        top = facade.begin_top()
        child = top.begin_child()
        # Naming a child aborts its top-level tree.
        assert facade.abort_top(child.name) is True
        assert not top.is_active

    def test_double_abort_is_false(self, facade):
        top = facade.begin_top()
        assert facade.abort_top(top.name) is True
        assert facade.abort_top(top.name) is False

    def test_abort_after_commit_is_false(self, facade):
        top = facade.begin_top()
        top.perform("r", IntRegister.write(7))
        top.commit()
        assert facade.abort_top(top.name) is False
        assert facade.object_value("r") == 7  # commit stands

    def test_abort_after_handle_abort_is_false(self, facade):
        top = facade.begin_top()
        top.abort()
        assert facade.abort_top(top.name) is False

    def test_unknown_and_empty_names_are_false(self, facade):
        assert facade.abort_top((404,)) is False
        assert facade.abort_top(()) is False

    def test_releases_locks_for_waiters(self, facade):
        holder = facade.begin_top()
        holder.perform("r", IntRegister.write(1))
        waiter = facade.begin_top()
        with pytest.raises(LockDenied):
            # Wound-wait: the younger waiter cannot wound the older
            # holder, so without the abort this would block.
            waiter.perform("r", IntRegister.write(2), timeout=0.05)
        assert facade.abort_top(holder.name) is True
        waiter.perform("r", IntRegister.write(2), timeout=1.0)
        waiter.commit()
        assert facade.object_value("r") == 2

    def test_aborted_handle_raises_on_use(self, facade):
        top = facade.begin_top()
        facade.abort_top(top.name)
        with pytest.raises(Exception):
            top.perform("c", Counter.increment(1))


class TestRaces:
    """abort_top from a non-owner thread vs the owner's own finish."""

    def test_race_against_owner_commit(self, facade):
        # Whatever the interleaving, exactly one of {owner commit,
        # remote abort} wins, and the engine agrees with the winner.
        for _ in range(50):
            top = facade.begin_top()
            top.perform("c", Counter.increment(1))
            results = {}
            barrier = threading.Barrier(2)

            def owner():
                barrier.wait()
                try:
                    top.commit()
                    results["commit"] = True
                except TransactionAborted:
                    results["commit"] = False

            def killer():
                barrier.wait()
                results["abort"] = facade.abort_top(top.name)

            threads = [
                threading.Thread(target=owner),
                threading.Thread(target=killer),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert results["commit"] != results["abort"]
            assert top.is_active is False
        # Counter value equals the number of commits that won.
        expected = facade.engine.stats["commits"]
        assert facade.object_value("c") == expected

    def test_race_against_owner_abort(self, facade):
        for _ in range(50):
            top = facade.begin_top()
            results = {}
            barrier = threading.Barrier(2)

            def owner():
                barrier.wait()
                top.abort()  # idempotent via the facade

            def killer():
                barrier.wait()
                results["abort"] = facade.abort_top(top.name)

            threads = [
                threading.Thread(target=owner),
                threading.Thread(target=killer),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not top.is_active

    def test_concurrent_abort_top_single_winner(self, facade):
        for _ in range(25):
            top = facade.begin_top()
            top.perform("c", Counter.increment(1))
            wins = []
            barrier = threading.Barrier(4)

            def killer():
                barrier.wait()
                if facade.abort_top(top.name):
                    wins.append(1)

            threads = [
                threading.Thread(target=killer) for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(wins) == 1
        assert facade.object_value("c") == 0

    def test_abort_cause_reaches_observer(self):
        from repro.obs import Observer

        observer = Observer()
        facade = ThreadSafeEngine(
            [Counter("c")], policy="moss-rw", observer=observer
        )
        top = facade.begin_top()
        assert facade.abort_top(top.name, cause="disconnect")
