"""Tests for the striped-locking regime of the thread-safe facade.

The facade stripes its per-object locking whenever the scheme's
capabilities allow it (``object_local_performs``); these tests pin the
regime-selection rules and hammer the striped path from real threads.
"""

import threading

import pytest

from repro.adt import Counter
from repro.engine.threadsafe import DEFAULT_STRIPES, ThreadSafeEngine
from repro.errors import (
    InvalidTransactionState,
    LockDenied,
    TransactionAborted,
)

OBJECTS = [Counter("c%d" % i) for i in range(8)]


class TestRegimeSelection:
    def test_striped_by_default_for_locking_schemes(self):
        facade = ThreadSafeEngine(list(OBJECTS))
        assert facade.striped
        assert facade.engine.store.shards == min(
            DEFAULT_STRIPES, len(OBJECTS)
        )

    def test_stripes_zero_forces_the_global_mutex(self):
        facade = ThreadSafeEngine(list(OBJECTS), stripes=0)
        assert not facade.striped
        assert facade.engine.store.shards == 1

    def test_trace_forces_the_global_mutex(self):
        facade = ThreadSafeEngine(list(OBJECTS), trace=True)
        assert not facade.striped

    def test_mvto_is_never_striped(self):
        # MVTO performs are not object-local (a ts-conflict aborts the
        # tree across every object), so striping would be unsound.
        facade = ThreadSafeEngine(list(OBJECTS), policy="mvto")
        assert not facade.striped
        top = facade.begin_top()
        top.perform("c0", Counter.increment(1))
        top.commit()
        assert facade.object_value("c0") == 1

    def test_install_hooks_drops_to_the_global_regime(self):
        facade = ThreadSafeEngine(list(OBJECTS))

        class NullHooks:
            def yield_point(self, kind, name, detail):
                pass

            def on_release(self, name):
                pass

        facade.install_hooks(NullHooks())
        assert not facade.striped


class _Worker:
    """Increment shared and private counters, retrying on wounds."""

    def __init__(self, facade, worker_id, rounds):
        self.facade = facade
        self.own = "c%d" % worker_id
        self.rounds = rounds
        self.error = None

    def __call__(self):
        try:
            for _ in range(self.rounds):
                self._one_round()
        except Exception as exc:  # pragma: no cover - surfaced below
            self.error = exc

    def _one_round(self):
        while True:
            top = self.facade.begin_top()
            try:
                top.perform("shared", Counter.increment(1), timeout=30.0)
                top.perform(self.own, Counter.increment(1), timeout=30.0)
                top.commit()
                return
            except (TransactionAborted, InvalidTransactionState,
                    LockDenied):
                try:
                    if top.is_active:
                        top.abort()
                except InvalidTransactionState:
                    pass


@pytest.mark.parametrize("stripes", [None, 0, 2])
def test_threaded_increments_are_conserved(stripes):
    workers, rounds = 4, 25
    specs = [Counter("shared")] + [
        Counter("c%d" % i) for i in range(workers)
    ]
    facade = ThreadSafeEngine(specs, stripes=stripes)
    bodies = [_Worker(facade, i, rounds) for i in range(workers)]
    threads = [threading.Thread(target=body) for body in bodies]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
        assert not thread.is_alive()
    for body in bodies:
        assert body.error is None
    assert facade.object_value("shared") == workers * rounds
    for i in range(workers):
        assert facade.object_value("c%d" % i) == rounds


class TestStripedSemantics:
    def test_timeout_raises_lock_denied(self):
        facade = ThreadSafeEngine([Counter("c")])
        holder = facade.begin_top()
        holder.perform("c", Counter.increment(1))
        waiter = facade.begin_top()
        with pytest.raises(LockDenied):
            waiter.perform("c", Counter.increment(1), timeout=0.05)
        holder.commit()

    def test_older_wounds_younger_holder(self):
        facade = ThreadSafeEngine([Counter("c")])
        assert facade.striped
        older = facade.begin_top()
        younger = facade.begin_top()
        younger.perform("c", Counter.increment(3))
        assert older.perform("c", Counter.value(), timeout=5.0) == 0
        assert not younger.is_active
        older.commit()

    def test_results_match_the_global_regime(self):
        for stripes in (None, 0):
            facade = ThreadSafeEngine(
                [Counter("a"), Counter("b")], stripes=stripes
            )
            top = facade.begin_top()
            child = top.begin_child()
            child.perform("a", Counter.increment(2))
            child.commit()
            top.perform("b", Counter.increment(5))
            top.commit()
            assert facade.object_value("a") == 2
            assert facade.object_value("b") == 5
