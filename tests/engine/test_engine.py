"""Unit and integration tests for the nested-transaction engine."""

import pytest

from repro.adt import BankAccount, Counter, IntRegister
from repro.engine import Engine, TransactionStatus
from repro.errors import (
    EngineError,
    InvalidTransactionState,
    LockDenied,
    TransactionAborted,
)


@pytest.fixture
def engine():
    return Engine([BankAccount("a", 100), BankAccount("b", 0)])


class TestLifecycle:
    def test_begin_commit(self, engine):
        txn = engine.begin_top()
        assert txn.is_top_level
        assert txn.is_active
        txn.commit("v")
        assert txn.status is TransactionStatus.COMMITTED
        assert txn.value == "v"

    def test_names_are_paths(self, engine):
        top = engine.begin_top()
        child = top.begin_child()
        grandchild = child.begin_child()
        assert top.name == (0,)
        assert child.name[:1] == (0,)
        assert grandchild.name[: len(child.name)] == child.name
        assert grandchild.depth == 3

    def test_commit_with_live_children_rejected(self, engine):
        top = engine.begin_top()
        top.begin_child()
        with pytest.raises(InvalidTransactionState):
            top.commit()

    def test_dead_handle_rejected(self, engine):
        txn = engine.begin_top()
        txn.commit()
        with pytest.raises(InvalidTransactionState):
            txn.perform("a", BankAccount.balance())
        with pytest.raises(InvalidTransactionState):
            txn.commit()

    def test_orphan_detection(self, engine):
        top = engine.begin_top()
        child = top.begin_child()
        grandchild = child.begin_child()
        top.abort()
        assert grandchild.status is TransactionStatus.ABORTED
        with pytest.raises(InvalidTransactionState):
            grandchild.perform("a", BankAccount.balance())

    def test_context_manager_commits(self, engine):
        with engine.begin_top() as txn:
            txn.perform("a", BankAccount.deposit(1))
        assert txn.status is TransactionStatus.COMMITTED
        assert engine.object_value("a") == 101

    def test_context_manager_aborts_on_exception(self, engine):
        with pytest.raises(RuntimeError):
            with engine.begin_top() as txn:
                txn.perform("a", BankAccount.deposit(1))
                raise RuntimeError("boom")
        assert txn.status is TransactionStatus.ABORTED
        assert engine.object_value("a") == 100

    def test_unknown_object_rejected(self, engine):
        txn = engine.begin_top()
        with pytest.raises(EngineError):
            txn.perform("ghost", BankAccount.balance())


class TestIsolation:
    def test_uncommitted_writes_invisible_to_other_trees(self, engine):
        writer = engine.begin_top()
        writer.perform("a", BankAccount.withdraw(60))
        reader = engine.begin_top()
        with pytest.raises(LockDenied):
            reader.perform("a", BankAccount.balance())

    def test_committed_writes_visible(self, engine):
        writer = engine.begin_top()
        writer.perform("a", BankAccount.withdraw(60))
        writer.commit()
        reader = engine.begin_top()
        assert reader.perform("a", BankAccount.balance()) == 40

    def test_concurrent_readers(self, engine):
        one = engine.begin_top()
        two = engine.begin_top()
        assert one.perform("a", BankAccount.balance()) == 100
        assert two.perform("a", BankAccount.balance()) == 100

    def test_reader_blocks_writer(self, engine):
        reader = engine.begin_top()
        reader.perform("a", BankAccount.balance())
        writer = engine.begin_top()
        with pytest.raises(LockDenied):
            writer.perform("a", BankAccount.deposit(1))

    def test_parent_sees_committed_child_work(self, engine):
        top = engine.begin_top()
        child = top.begin_child()
        child.perform("a", BankAccount.withdraw(30))
        child.commit()
        assert top.perform("a", BankAccount.balance()) == 70

    def test_sibling_blocked_until_child_commits(self, engine):
        top = engine.begin_top()
        one = top.begin_child()
        one.perform("a", BankAccount.withdraw(30))
        two = top.begin_child()
        with pytest.raises(LockDenied):
            two.perform("a", BankAccount.balance())
        one.commit()
        assert two.perform("a", BankAccount.balance()) == 70


class TestRecovery:
    def test_child_abort_restores_object_state(self, engine):
        top = engine.begin_top()
        child = top.begin_child()
        child.perform("a", BankAccount.withdraw(50))
        child.perform("b", BankAccount.deposit(50))
        child.abort()
        assert top.perform("a", BankAccount.balance()) == 100
        assert top.perform("b", BankAccount.balance()) == 0

    def test_nested_abort_keeps_siblings_work(self, engine):
        top = engine.begin_top()
        keeper = top.begin_child()
        keeper.perform("a", BankAccount.withdraw(10))
        keeper.commit()
        loser = top.begin_child()
        loser.perform("b", BankAccount.deposit(99))
        loser.abort()
        top.commit()
        assert engine.object_value("a") == 90
        assert engine.object_value("b") == 0

    def test_top_abort_restores_everything(self, engine):
        top = engine.begin_top()
        child = top.begin_child()
        child.perform("a", BankAccount.withdraw(50))
        child.commit()
        top.abort()
        assert engine.object_value("a") == 100

    def test_deep_nesting_inheritance(self):
        engine = Engine([Counter("c")])
        top = engine.begin_top()
        level1 = top.begin_child()
        level2 = level1.begin_child()
        level2.perform("c", Counter.increment(5))
        level2.commit()
        level1.commit()
        # Value is visible inside the tree but not committed globally.
        assert top.perform("c", Counter.value()) == 5
        assert engine.object_value("c") == 0
        top.commit()
        assert engine.object_value("c") == 5


class TestDeadlockHooks:
    def test_note_blocked_reports_victim(self):
        engine = Engine([IntRegister("x"), IntRegister("y")])
        one = engine.begin_top()
        two = engine.begin_top()
        one.perform("x", IntRegister.add(1))
        two.perform("y", IntRegister.add(1))
        try:
            one.perform("y", IntRegister.read())
        except LockDenied as denial:
            assert engine.note_blocked(one, denial.blockers) is None
        try:
            two.perform("x", IntRegister.read())
        except LockDenied as denial:
            victim = engine.note_blocked(two, denial.blockers)
        assert victim in {(0,), (1,)}
        assert engine.stats["deadlocks"] == 1

    def test_fresh_blockers(self):
        engine = Engine([IntRegister("x")])
        one = engine.begin_top()
        one.perform("x", IntRegister.add(1))
        two = engine.begin_top()
        blockers = engine.fresh_blockers(two, "x", IntRegister.read())
        assert blockers == {(0,)}
        one.commit()
        assert engine.fresh_blockers(two, "x", IntRegister.read()) == set()


class TestStats:
    def test_counters(self, engine):
        txn = engine.begin_top()
        txn.perform("a", BankAccount.balance())
        txn.commit()
        other = engine.begin_top()
        other.abort()
        assert engine.stats["accesses"] == 1
        # Access leaves commit inline and are counted under "accesses".
        assert engine.stats["commits"] == 1
        assert engine.stats["aborts"] == 1
