"""Unit tests for waits-for-graph deadlock detection."""

from repro.engine.deadlock import WaitsForGraph, choose_victim, top_level


class TestTopLevel:
    def test_collapses_to_first_component(self):
        assert top_level((3, 1, 4)) == (3,)
        assert top_level((2,)) == (2,)


class TestCycleDetection:
    def test_no_cycle_on_chain(self):
        graph = WaitsForGraph()
        assert graph.add_wait((0, 0), [(1, 0)]) is None
        assert graph.add_wait((1, 0), [(2, 0)]) is None

    def test_two_cycle(self):
        graph = WaitsForGraph()
        assert graph.add_wait((0, 0), [(1, 0)]) is None
        cycle = graph.add_wait((1, 0), [(0, 5)])
        assert cycle is not None
        assert set(cycle) == {(0,), (1,)}

    def test_three_cycle(self):
        graph = WaitsForGraph()
        graph.add_wait((0,), [(1,)])
        graph.add_wait((1,), [(2,)])
        cycle = graph.add_wait((2,), [(0,)])
        assert cycle is not None
        assert set(cycle) == {(0,), (1,), (2,)}

    def test_intra_tree_waits_ignored(self):
        graph = WaitsForGraph()
        # Parent waits on its own child: not a cross-tree deadlock.
        assert graph.add_wait((0,), [(0, 1)]) is None

    def test_removal_clears_edges(self):
        graph = WaitsForGraph()
        graph.add_wait((0, 0), [(1, 0)])
        graph.remove_waiter((0, 0))
        assert graph.add_wait((1, 0), [(0, 0)]) is None

    def test_remove_subtree(self):
        graph = WaitsForGraph()
        graph.add_wait((0, 1), [(1,)])
        graph.add_wait((0, 2), [(2,)])
        graph.remove_subtree((0,))
        assert graph.find_cycle() is None
        assert graph.add_wait((1,), [(0,)]) is None

    def test_find_cycle_global(self):
        graph = WaitsForGraph()
        graph.add_wait((5,), [(6,)])
        graph._waits[(6,)] = {(5,)}
        assert graph.find_cycle() is not None


class TestCollapsedGraphEdgeCases:
    def test_deep_same_tree_wait_collapses_away(self):
        graph = WaitsForGraph()
        # A deep descendant waiting on a cousin in its own tree maps
        # both endpoints to (0,) when collapsed; the would-be self-loop
        # is dropped so no spurious deadlock is reported.
        assert graph.add_wait((0, 1, 2), [(0, 3)]) is None
        assert graph.add_wait((0, 3), [(0, 1)]) is None
        assert graph.find_cycle() is None

    def test_nested_waiters_collapse_into_cross_tree_cycle(self):
        graph = WaitsForGraph()
        # Edges recorded between deep descendants still form a cycle on
        # the collapsed graph: (0,) -> (1,) -> (0,).
        assert graph.add_wait((0, 1, 2), [(1, 0)]) is None
        cycle = graph.add_wait((1, 4), [(0, 2, 2)])
        assert cycle is not None
        assert set(cycle) == {(0,), (1,)}

    def test_mixed_waits_only_cross_tree_edges_count(self):
        graph = WaitsForGraph()
        # A parent waiting on its own child AND a foreign tree: only
        # the cross-tree edge survives collapsing.
        assert graph.add_wait((0,), [(0, 1), (1, 0)]) is None
        cycle = graph.add_wait((1, 0, 0), [(0, 7)])
        assert cycle is not None
        assert set(cycle) == {(0,), (1,)}

    def test_cycle_broken_by_victim_abort(self):
        graph = WaitsForGraph()
        graph.add_wait((0, 1), [(1,)])
        cycle = graph.add_wait((1, 0), [(0, 1)])
        assert cycle is not None
        victim = choose_victim(cycle, {(0,): 1.0, (1,): 2.0})
        assert victim == (1,)
        # Aborting the victim's subtree clears its outgoing edges;
        # the survivor can keep waiting without re-deadlocking.
        graph.remove_subtree(victim)
        assert graph.find_cycle() is None
        assert graph.add_wait((0, 1), [(2,)]) is None


class TestVictimSelection:
    def test_youngest_loses(self):
        cycle = [(0,), (1,), (0,)]
        started = {(0,): 1.0, (1,): 5.0}
        assert choose_victim(cycle, started) == (1,)

    def test_tie_breaks_deterministically(self):
        cycle = [(0,), (1,), (0,)]
        assert choose_victim(cycle, {}) == (1,)
