"""Unit tests for locking policies (moss-rw, exclusive, flat-2pl)."""

import pytest

from repro.adt import IntRegister
from repro.core.names import ROOT
from repro.engine import Engine, make_policy
from repro.engine.locks import LockMode
from repro.engine.policies import (
    ExclusivePolicy,
    FlatTwoPhasePolicy,
    MossPolicy,
)
from repro.errors import EngineError, LockDenied, TransactionAborted


class TestPolicyObjects:
    def test_make_policy(self):
        assert isinstance(make_policy("moss-rw"), MossPolicy)
        assert isinstance(make_policy("exclusive"), ExclusivePolicy)
        assert isinstance(make_policy("flat-2pl"), FlatTwoPhasePolicy)

    def test_unknown_policy_rejected(self):
        with pytest.raises(EngineError):
            make_policy("optimistic")

    def test_moss_modes(self):
        policy = MossPolicy()
        assert policy.mode_for(IntRegister.read()) is LockMode.READ
        assert policy.mode_for(IntRegister.add(1)) is LockMode.WRITE
        assert policy.owner_for((0, 1)) == (0, 1)
        assert policy.moves_locks
        assert not policy.escalates_aborts

    def test_exclusive_modes(self):
        policy = ExclusivePolicy()
        assert policy.mode_for(IntRegister.read()) is LockMode.WRITE

    def test_flat_owner_is_top_level(self):
        policy = FlatTwoPhasePolicy()
        assert policy.owner_for((3, 1, 4)) == (3,)
        assert policy.escalates_aborts
        assert not policy.moves_locks
        with pytest.raises(EngineError):
            policy.owner_for(())


class TestExclusiveEngine:
    def test_readers_conflict(self):
        engine = Engine([IntRegister("x")], policy="exclusive")
        one = engine.begin_top()
        one.perform("x", IntRegister.read())
        two = engine.begin_top()
        with pytest.raises(LockDenied):
            two.perform("x", IntRegister.read())

    def test_semantics_otherwise_identical(self):
        engine = Engine([IntRegister("x")], policy="exclusive")
        top = engine.begin_top()
        child = top.begin_child()
        child.perform("x", IntRegister.add(2))
        child.abort()
        assert top.perform("x", IntRegister.read()) == 0
        top.commit()
        assert engine.object_value("x") == 0


class TestFlatEngine:
    def test_intra_tree_never_conflicts(self):
        engine = Engine([IntRegister("x")], policy="flat-2pl")
        top = engine.begin_top()
        one = top.begin_child()
        one.perform("x", IntRegister.add(1))
        # In Moss this would block until `one` commits; flat locks are
        # owned by the top level, so the sibling proceeds at once.
        two = top.begin_child()
        assert two.perform("x", IntRegister.read()) == 1

    def test_cross_tree_conflicts_remain(self):
        engine = Engine([IntRegister("x")], policy="flat-2pl")
        one = engine.begin_top()
        one.begin_child().perform("x", IntRegister.add(1))
        other = engine.begin_top()
        with pytest.raises(LockDenied):
            other.perform("x", IntRegister.read())

    def test_child_abort_escalates(self):
        engine = Engine([IntRegister("x")], policy="flat-2pl")
        top = engine.begin_top()
        child = top.begin_child()
        child.perform("x", IntRegister.add(1))
        child.abort()
        assert not top.is_active
        assert engine.object_value("x") == 0

    def test_top_commit_publishes(self):
        engine = Engine([IntRegister("x")], policy="flat-2pl")
        top = engine.begin_top()
        child = top.begin_child()
        child.perform("x", IntRegister.add(3))
        child.commit()
        top.commit()
        assert engine.object_value("x") == 3
