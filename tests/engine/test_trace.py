"""Unit tests for engine trace recording."""

import pytest

from repro.adt import Counter, IntRegister
from repro.core.events import Create, RequestCommit
from repro.core.names import ROOT
from repro.engine import Engine
from repro.engine.trace import NullRecorder, TraceRecorder


class TestTraceRecorder:
    def test_records_events_in_order(self):
        recorder = TraceRecorder()
        recorder.record(Create(ROOT))
        recorder.record(Create((0,)))
        assert recorder.schedule() == (Create(ROOT), Create((0,)))

    def test_system_type_rebuild(self):
        engine = Engine([Counter("c"), IntRegister("x")], trace=True)
        top = engine.begin_top()
        child = top.begin_child()
        child.perform("c", Counter.increment(1))
        child.commit()
        top.perform("x", IntRegister.read())
        top.commit()
        system_type = engine.recorder.system_type(engine.specs)
        # The tree has exactly the nodes the run created.
        assert system_type.contains(top.name)
        assert system_type.contains(child.name)
        accesses = list(system_type.all_accesses())
        assert len(accesses) == 2
        objects = {system_type.object_of(a) for a in accesses}
        assert objects == {"c", "x"}

    def test_access_operation_recorded(self):
        engine = Engine([Counter("c")], trace=True)
        top = engine.begin_top()
        top.perform("c", Counter.increment(7))
        top.commit()
        system_type = engine.recorder.system_type(engine.specs)
        access = next(iter(system_type.all_accesses()))
        operation = system_type.operation_of(access)
        assert operation.kind == "increment"
        assert operation.args == (7,)

    def test_commit_values_tracked(self):
        engine = Engine([Counter("c")], trace=True)
        top = engine.begin_top()
        top.commit("the-value")
        assert engine.recorder.commit_values[top.name] == "the-value"

    def test_read_reclassified_under_exclusive(self):
        engine = Engine([Counter("c")], policy="exclusive", trace=True)
        top = engine.begin_top()
        top.perform("c", Counter.value())
        top.commit()
        system_type = engine.recorder.system_type(engine.specs)
        access = next(iter(system_type.all_accesses()))
        assert not system_type.is_read_access(access)

    def test_read_kept_under_moss(self):
        engine = Engine([Counter("c")], policy="moss-rw", trace=True)
        top = engine.begin_top()
        top.perform("c", Counter.value())
        top.commit()
        system_type = engine.recorder.system_type(engine.specs)
        access = next(iter(system_type.all_accesses()))
        assert system_type.is_read_access(access)


class TestRingBufferMode:
    def test_unbounded_by_default(self):
        recorder = TraceRecorder()
        assert recorder.bounded is False
        for index in range(100):
            recorder.record(Create((index,)))
        assert len(recorder.schedule()) == 100
        assert recorder.dropped_events == 0

    def test_tail_is_preserved_and_drops_counted(self):
        recorder = TraceRecorder(max_events=3)
        assert recorder.bounded is True
        for index in range(10):
            recorder.record(Create((index,)))
        # The newest three events survive, oldest first.
        assert recorder.schedule() == (
            Create((7,)),
            Create((8,)),
            Create((9,)),
        )
        assert recorder.dropped_events == 7

    def test_no_drops_until_full(self):
        recorder = TraceRecorder(max_events=5)
        for index in range(5):
            recorder.record(Create((index,)))
        assert recorder.dropped_events == 0
        assert len(recorder.schedule()) == 5

    def test_nonpositive_limit_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder(max_events=0)
        with pytest.raises(ValueError):
            TraceRecorder(max_events=-3)

    def test_engine_passes_trace_limit_through(self):
        engine = Engine([Counter("c")], trace=True, trace_limit=4)
        for _ in range(3):
            top = engine.begin_top()
            top.perform("c", Counter.increment(1))
            top.commit()
        assert engine.recorder.bounded
        assert len(engine.recorder.schedule()) == 4
        assert engine.recorder.dropped_events > 0
        # The tail is the newest events: the last commit's lock hand-off
        # (the InformCommitAt for "c") is the final retained event.
        kinds = [type(e).__name__ for e in engine.recorder.schedule()]
        assert kinds[-1] == "InformCommitAt"

    def test_system_type_survives_truncation(self):
        # The tree metadata is kept outside the ring buffer, so the
        # emergent system type is complete even when events dropped.
        engine = Engine([Counter("c")], trace=True, trace_limit=2)
        top = engine.begin_top()
        top.perform("c", Counter.increment(1))
        top.commit()
        system_type = engine.recorder.system_type(engine.specs)
        assert system_type.contains(top.name)
        assert len(list(system_type.all_accesses())) == 1


class TestNullRecorder:
    def test_everything_is_a_noop(self):
        recorder = NullRecorder()
        recorder.record(Create(ROOT))
        recorder.record_internal((0,))
        recorder.record_access((0, 0), "x", Counter.value())
        recorder.record_commit_value((0,), 1)
        assert not hasattr(recorder, "events")

    def test_untraced_engine_uses_null_recorder(self):
        engine = Engine([Counter("c")])
        assert isinstance(engine.recorder, NullRecorder)
