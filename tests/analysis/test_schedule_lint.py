"""Tests for the schedule linter (rules RW001...RW008)."""

import dataclasses

import pytest

from repro.adt import IntRegister
from repro.analysis import ScheduleLinter, lint_schedule
from repro.analysis.faults import NoInheritPolicy
from repro.analysis.schedule import SCHEDULE_RULES, STRUCTURAL_RULES
from repro.checking.anomalies import orphan_anomaly_witness
from repro.cli import _drive_random_workload
from repro.core.events import (
    Commit,
    Create,
    InformAbortAt,
    InformCommitAt,
    RequestCommit,
)

from tests.checking.test_conformance import drive_simple_run


def trace_of(engine):
    recorder = engine.recorder
    return recorder.schedule(), recorder.system_type(engine.specs)


class TestCleanTraces:
    def test_simple_run_has_no_findings(self):
        events, system_type = trace_of(drive_simple_run())
        report = lint_schedule(events, system_type)
        assert report.ok, [str(f) for f in report.findings]

    @pytest.mark.parametrize("policy", ["moss-rw", "exclusive"])
    @pytest.mark.parametrize("seed", range(4))
    def test_random_workloads_have_no_findings(self, policy, seed):
        engine = _drive_random_workload(seed, 4, 60, policy=policy)
        events, system_type = trace_of(engine)
        report = lint_schedule(events, system_type)
        assert report.ok, [str(f) for f in report.findings]

    def test_rule_selection(self):
        assert ScheduleLinter().rules() == STRUCTURAL_RULES
        _, system_type = trace_of(drive_simple_run())
        assert ScheduleLinter(system_type).rules() == SCHEDULE_RULES


class TestSeededViolations:
    def test_lock_leak_flagged_as_rw001(self):
        events, system_type = trace_of(drive_simple_run())
        # Drop the last INFORM_COMMIT: that lock is never inherited.
        last = max(
            index
            for index, event in enumerate(events)
            if isinstance(event, InformCommitAt)
        )
        leaked = events[:last] + events[last + 1:]
        report = lint_schedule(leaked, system_type)
        assert "RW001" in report.codes()
        finding = report.by_code("RW001")[0]
        assert finding.object_name == events[last].object_name

    def test_orphan_witness_flagged_as_rw002_only(self):
        witness = orphan_anomaly_witness()
        report = lint_schedule(witness.schedule, witness.system_type)
        assert report.codes() == ("RW002",)
        finding = report.by_code("RW002")[0]
        # The flagged access lives inside the orphaned subtree.
        assert finding.transaction[: len(witness.orphan)] == witness.orphan

    def test_orphan_found_without_system_type(self):
        witness = orphan_anomaly_witness()
        report = lint_schedule(witness.schedule)
        assert "RW002" in report.codes()

    def test_commit_without_create_flagged_as_rw003(self):
        events, system_type = trace_of(drive_simple_run())
        report = lint_schedule(
            events + (Commit((9,)),), system_type
        )
        assert "RW003" in report.codes()

    def test_inform_for_stranger_flagged_as_rw004(self):
        events, system_type = trace_of(drive_simple_run())
        report = lint_schedule(
            events + (InformCommitAt("x", (9, 9)),), system_type
        )
        assert "RW004" in report.codes()

    def test_premature_inform_abort_flagged_as_rw004(self):
        events, system_type = trace_of(drive_simple_run())
        report = lint_schedule(
            events + (InformAbortAt("x", (9, 9)),), system_type
        )
        assert "RW004" in report.codes()

    def test_wrong_access_value_flagged_as_rw005(self):
        events, system_type = trace_of(drive_simple_run())
        mutated = []
        broken = False
        for event in events:
            if (
                not broken
                and isinstance(event, RequestCommit)
                and system_type.is_access(event.transaction)
                and system_type.object_of(event.transaction) == "x"
            ):
                event = dataclasses.replace(event, value=999)
                broken = True
            mutated.append(event)
        assert broken
        report = lint_schedule(tuple(mutated), system_type)
        assert "RW005" in report.codes()

    def test_duplicate_create_flagged_as_rw006(self):
        events, system_type = trace_of(drive_simple_run())
        first_create = next(
            event for event in events if isinstance(event, Create)
        )
        report = lint_schedule(events + (first_create,), system_type)
        assert "RW006" in report.codes()

    def test_no_inherit_policy_flagged_as_rw007_and_rw001(self):
        engine = _drive_random_workload(
            0, 4, 60, policy=NoInheritPolicy()
        )
        events, system_type = trace_of(engine)
        report = lint_schedule(events, system_type)
        assert "RW007" in report.codes()
        assert "RW001" in report.codes()
        # Every finding carries an event index for localisation.
        assert all(
            finding.event_index is not None
            for finding in report.findings
        )

    def test_duplicate_return_flagged_as_rw008(self):
        events, system_type = trace_of(drive_simple_run())
        last_commit = next(
            event
            for event in reversed(events)
            if isinstance(event, Commit)
        )
        report = lint_schedule(events + (last_commit,), system_type)
        assert "RW008" in report.codes()

    def test_findings_render_with_rule_code_and_location(self):
        events, system_type = trace_of(
            _drive_random_workload(1, 4, 60, policy=NoInheritPolicy())
        )
        report = lint_schedule(events, system_type)
        rendered = str(report.findings[0])
        assert rendered.startswith(report.findings[0].rule.code)
        assert "event" in rendered
