"""Tests for the happens-before race detector (RACE001)."""

import pytest

from repro.analysis import analyze_engine, detect_races
from repro.analysis.faults import NoInheritPolicy
from repro.cli import _drive_random_workload
from repro.core.events import InformAbortAt

from tests.checking.test_conformance import drive_simple_run


def trace_of(engine):
    recorder = engine.recorder
    return recorder.schedule(), recorder.system_type(engine.specs)


class TestCleanTraces:
    def test_simple_run_has_no_races(self):
        events, system_type = trace_of(drive_simple_run())
        report = detect_races(events, system_type)
        assert report.ok, [str(f) for f in report.findings]

    @pytest.mark.parametrize("policy", ["moss-rw", "exclusive"])
    @pytest.mark.parametrize("seed", range(4))
    def test_random_workloads_have_no_races(self, policy, seed):
        engine = _drive_random_workload(seed, 4, 60, policy=policy)
        events, system_type = trace_of(engine)
        report = detect_races(events, system_type)
        assert report.ok, [str(f) for f in report.findings]


class TestSeededViolations:
    def test_no_inherit_policy_races(self):
        engine = _drive_random_workload(
            0, 4, 60, policy=NoInheritPolicy()
        )
        events, system_type = trace_of(engine)
        report = detect_races(events, system_type)
        assert "RACE001" in report.codes()
        finding = report.by_code("RACE001")[0]
        # Both ends of the racy pair are localised.
        assert finding.event_index is not None
        assert finding.related_index is not None
        assert finding.object_name in system_type.object_names()

    def test_missing_inform_abort_breaks_the_order(self):
        # drive_simple_run has a doomed child read of "x" whose lock
        # discard (INFORM_ABORT) is the only thing ordering it before
        # the later write of "x".  Removing the discard makes that
        # pair racy.
        events, system_type = trace_of(drive_simple_run())
        censored = tuple(
            event
            for event in events
            if not (
                isinstance(event, InformAbortAt)
                and event.object_name == "x"
            )
        )
        report = detect_races(censored, system_type)
        assert "RACE001" in report.codes()
        assert all(
            finding.object_name == "x"
            for finding in report.by_code("RACE001")
        )

    def test_analyze_engine_pairs_both_reports(self):
        engine = _drive_random_workload(
            1, 4, 60, policy=NoInheritPolicy()
        )
        schedule_report, race_report = analyze_engine(engine)
        assert not schedule_report.ok
        assert not race_report.ok
        assert race_report.subject == "races"
