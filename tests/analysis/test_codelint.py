"""Tests for the AST code lint (rules CD000...CD004)."""

from pathlib import Path

from repro.analysis import lint_paths, lint_source

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE = REPO_ROOT / "src" / "repro"
FIXTURE = Path(__file__).parent / "fixtures" / "bad_lock_discipline.py"


class TestRepoInvariants:
    def test_the_repo_itself_is_clean(self):
        report = lint_paths([str(PACKAGE)])
        assert report.ok, [str(f) for f in report.findings]

    def test_fixture_module_is_flagged(self):
        report = lint_paths([str(FIXTURE)])
        codes = set(report.codes())
        assert "CD001" in codes
        assert "CD003" in codes
        assert "CD004" in codes
        # Findings point at real lines of the fixture.
        assert all(
            finding.path and finding.line for finding in report.findings
        )


class TestLintSource:
    def test_lock_mutation_flagged(self):
        source = (
            "def sneak(managed, name):\n"
            "    managed.write_holders.add(name)\n"
        )
        findings = lint_source("sneak.py", source)
        assert [f.rule.code for f in findings] == ["CD001"]
        assert findings[0].line == 2

    def test_suppression_comment_honoured(self):
        source = (
            "def sneak(managed, name):\n"
            "    managed.write_holders.add(name)"
            "  # repro-lint: ignore[CD001]\n"
        )
        assert lint_source("sneak.py", source) == []

    def test_bare_suppression_covers_all_codes(self):
        source = (
            "def sneak(txn):\n"
            "    txn.status = 'COMMITTED'  # repro-lint: ignore\n"
        )
        assert lint_source("sneak.py", source) == []

    def test_unparseable_module_is_cd000(self):
        findings = lint_source("broken.py", "def oops(:\n")
        assert [f.rule.code for f in findings] == ["CD000"]

    def test_self_mutation_is_allowed(self):
        source = (
            "class ManagedObject:\n"
            "    def grant(self, name):\n"
            "        self.write_holders.add(name)\n"
        )
        assert lint_source("managed.py", source) == []
