"""Tests for the AST code lint (rules CD000...CD005)."""

from pathlib import Path

from repro.analysis import lint_paths, lint_source

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE = REPO_ROOT / "src" / "repro"
FIXTURE = Path(__file__).parent / "fixtures" / "bad_lock_discipline.py"


class TestRepoInvariants:
    def test_the_repo_itself_is_clean(self):
        report = lint_paths([str(PACKAGE)])
        assert report.ok, [str(f) for f in report.findings]

    def test_fixture_module_is_flagged(self):
        report = lint_paths([str(FIXTURE)])
        codes = set(report.codes())
        assert "CD001" in codes
        assert "CD003" in codes
        assert "CD004" in codes
        # Findings point at real lines of the fixture.
        assert all(
            finding.path and finding.line for finding in report.findings
        )


class TestLintSource:
    def test_lock_mutation_flagged(self):
        source = (
            "def sneak(managed, name):\n"
            "    managed.write_holders.add(name)\n"
        )
        findings = lint_source("sneak.py", source)
        assert [f.rule.code for f in findings] == ["CD001"]
        assert findings[0].line == 2

    def test_suppression_comment_honoured(self):
        source = (
            "def sneak(managed, name):\n"
            "    managed.write_holders.add(name)"
            "  # repro-lint: ignore[CD001]\n"
        )
        assert lint_source("sneak.py", source) == []

    def test_bare_suppression_covers_all_codes(self):
        source = (
            "def sneak(txn):\n"
            "    txn.status = 'COMMITTED'  # repro-lint: ignore\n"
        )
        assert lint_source("sneak.py", source) == []

    def test_unparseable_module_is_cd000(self):
        findings = lint_source("broken.py", "def oops(:\n")
        assert [f.rule.code for f in findings] == ["CD000"]

    def test_self_mutation_is_allowed_in_owner_modules(self):
        source = (
            "class ManagedObject:\n"
            "    def grant(self, name):\n"
            "        self.write_holders.add(name)\n"
        )
        path = "src/repro/engine/lockmanager.py"
        assert lint_source(path, source) == []


class TestCD005:
    """Self-receiver lock-state mutation outside the owner modules."""

    SOURCE = (
        "class ShadowTable:\n"
        "    def grant(self, name):\n"
        "        self.write_holders.add(name)\n"
    )

    def test_self_mutation_elsewhere_is_cd005(self):
        findings = lint_source("rogue.py", self.SOURCE)
        assert [f.rule.code for f in findings] == ["CD005"]
        assert findings[0].line == 3

    def test_every_owner_module_is_exempt(self):
        from repro.analysis.codelint import LOCK_OWNER_MODULES

        for suffix in LOCK_OWNER_MODULES:
            assert lint_source("src/" + suffix, self.SOURCE) == []

    def test_init_is_exempt(self):
        source = (
            "class ShadowTable:\n"
            "    def __init__(self):\n"
            "        self.versions = {}\n"
            "        self.versions['x'] = 0\n"
        )
        assert lint_source("rogue.py", source) == []

    def test_item_assignment_is_cd005(self):
        source = (
            "class ShadowTable:\n"
            "    def install(self, name, value):\n"
            "        self.versions[name] = value\n"
        )
        findings = lint_source("rogue.py", source)
        assert [f.rule.code for f in findings] == ["CD005"]

    def test_attribute_reassignment_is_cd005(self):
        source = (
            "class ShadowTable:\n"
            "    def reset(self):\n"
            "        self.read_holders = set()\n"
        )
        findings = lint_source("rogue.py", source)
        assert [f.rule.code for f in findings] == ["CD005"]

    def test_suppression_comment_honoured(self):
        source = (
            "class ShadowTable:\n"
            "    def grant(self, name):\n"
            "        self.write_holders.add(name)"
            "  # repro-lint: ignore[CD005]\n"
        )
        assert lint_source("rogue.py", source) == []

    def test_reads_are_not_flagged(self):
        source = (
            "class ShadowTable:\n"
            "    def holds(self, name):\n"
            "        return name in self.write_holders\n"
        )
        assert lint_source("rogue.py", source) == []
