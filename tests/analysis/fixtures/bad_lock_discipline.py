"""Deliberately bad module: violates the repo's lock-discipline
invariants.  Used as a fixture by the code-lint tests and the CLI
tests; it is never imported.
"""


class Meddler:
    """Reaches into managed-object and engine state it does not own."""

    def steal_lock(self, managed, txn):
        managed.write_holders.add(txn.name)
        managed.versions.install(txn.name, 0)

    def drop_reader(self, managed, txn):
        managed.read_holders.discard(txn.name)

    def force_outcome(self, txn):
        txn.status = "COMMITTED"

    def cook_stats(self, engine):
        engine.stats["deadlocks"] += 1
