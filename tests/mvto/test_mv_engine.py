"""Unit tests for the MVTO engine facade."""

import pytest

from repro.adt import Counter, IntRegister
from repro.errors import (
    InvalidTransactionState,
    LockDenied,
    TransactionAborted,
)
from repro.mvto import MVTOEngine


@pytest.fixture
def engine():
    return MVTOEngine([Counter("c"), IntRegister("x")])


class TestBasics:
    def test_read_own_writes(self, engine):
        txn = engine.begin_top()
        txn.perform("c", Counter.increment(2))
        assert txn.perform("c", Counter.value()) == 2

    def test_commit_publishes(self, engine):
        txn = engine.begin_top()
        txn.perform("c", Counter.increment(2))
        txn.commit()
        assert engine.object_value("c") == 2

    def test_snapshot_reads_ignore_later_commits(self, engine):
        early = engine.begin_top()
        late = engine.begin_top()
        late.perform("c", Counter.increment(5))
        late.commit()
        # The early transaction reads at its own (smaller) timestamp.
        assert early.perform("c", Counter.value()) == 0

    def test_commit_with_live_children_rejected(self, engine):
        top = engine.begin_top()
        top.begin_child()
        with pytest.raises(InvalidTransactionState):
            top.commit()


class TestWaiting:
    def test_reader_waits_for_earlier_pending_writer(self, engine):
        writer = engine.begin_top()
        writer.perform("c", Counter.increment(1))
        reader = engine.begin_top()
        with pytest.raises(LockDenied) as info:
            reader.perform("c", Counter.value())
        assert info.value.blockers == {(0,)}
        writer.commit()
        assert reader.perform("c", Counter.value()) == 1

    def test_no_wait_after_writer_aborts(self, engine):
        writer = engine.begin_top()
        writer.perform("c", Counter.increment(1))
        reader = engine.begin_top()
        writer.abort()
        assert reader.perform("c", Counter.value()) == 0

    def test_fresh_blockers_mirrors_wait(self, engine):
        writer = engine.begin_top()
        writer.perform("c", Counter.increment(1))
        reader = engine.begin_top()
        assert engine.fresh_blockers(
            reader, "c", Counter.value()
        ) == {(0,)}


class TestTimestampAborts:
    def test_late_writer_aborted(self, engine):
        early = engine.begin_top()
        late = engine.begin_top()
        late.perform("c", Counter.increment(5))
        late.commit()
        # `early` now tries to write under a later committed version.
        with pytest.raises(TransactionAborted):
            early.perform("c", Counter.increment(1))
        assert not early.is_active
        assert engine.stats["ts_aborts"] == 1

    def test_write_under_later_read_aborted(self, engine):
        early = engine.begin_top()
        late = engine.begin_top()
        assert late.perform("c", Counter.value()) == 0
        with pytest.raises(TransactionAborted):
            early.perform("c", Counter.increment(1))


class TestNestedRecovery:
    def test_child_abort_discards_only_child_writes(self, engine):
        top = engine.begin_top()
        keeper = top.begin_child()
        keeper.perform("c", Counter.increment(2))
        keeper.commit()
        loser = top.begin_child()
        loser.perform("c", Counter.increment(100))
        loser.abort()
        assert top.perform("c", Counter.value()) == 2
        top.commit()
        assert engine.object_value("c") == 2

    def test_orphan_rejected(self, engine):
        top = engine.begin_top()
        child = top.begin_child()
        top.abort()
        with pytest.raises(InvalidTransactionState):
            child.perform("c", Counter.value())

    def test_top_abort_discards_everything(self, engine):
        top = engine.begin_top()
        child = top.begin_child()
        child.perform("c", Counter.increment(9))
        child.commit()
        top.abort()
        assert engine.object_value("c") == 0
