"""Unit tests for multiversion objects."""

import pytest

from repro.adt import Counter
from repro.errors import EngineError
from repro.mvto.mv_object import MVObject, Version, _TreeBuffer


@pytest.fixture
def mv_object():
    return MVObject(Counter("c"))


class TestVersionChain:
    def test_initial_version(self, mv_object):
        assert mv_object.version_before(100).value == 0
        assert mv_object.version_before(0).wts == 0

    def test_version_before_picks_latest_at_or_before(self, mv_object):
        mv_object.versions.append(Version(5, "five"))
        mv_object.versions.append(Version(9, "nine"))
        assert mv_object.version_before(5).value == "five"
        assert mv_object.version_before(8).value == "five"
        assert mv_object.version_before(9).value == "nine"

    def test_later_committed_write(self, mv_object):
        mv_object.versions.append(Version(5, "five"))
        assert mv_object.later_committed_write(4)
        assert not mv_object.later_committed_write(5)

    def test_pending_writers(self, mv_object):
        mv_object.pending_writers.update({3, 7})
        assert mv_object.earlier_pending_writers(5) == {3}
        assert mv_object.earlier_pending_writers(10) == {3, 7}
        assert mv_object.earlier_pending_writers(2) == set()


class TestTreeBuffer:
    def test_current_falls_back_to_base(self):
        buffer = _TreeBuffer(base=10)
        assert buffer.current() == 10

    def test_install_and_deepest_wins(self):
        buffer = _TreeBuffer(base=0)
        buffer.install((0,), 1)
        buffer.install((0, 2), 2)
        assert buffer.current() == 2

    def test_promote_moves_up(self):
        buffer = _TreeBuffer(base=0)
        buffer.install((0, 2), 2)
        buffer.promote((0, 2))
        assert buffer.by_node == {(0,): 2}

    def test_discard_subtree(self):
        buffer = _TreeBuffer(base=0)
        buffer.install((0, 1), 1)
        buffer.install((0, 2), 2)
        buffer.discard_subtree((0, 1))
        assert buffer.by_node == {(0, 2): 2}


class TestCommitAbort:
    def test_commit_installs_sorted_version(self, mv_object):
        buffer = mv_object.buffer_for(4, base=0)
        buffer.install((0,), 40)
        mv_object.pending_writers.add(4)
        mv_object.commit_tree(4)
        assert [v.wts for v in mv_object.versions] == [0, 4]
        assert mv_object.version_before(4).value == 40
        assert 4 not in mv_object.pending_writers

    def test_commit_clean_tree_installs_nothing(self, mv_object):
        mv_object.buffer_for(4, base=0)
        mv_object.commit_tree(4)
        assert [v.wts for v in mv_object.versions] == [0]

    def test_abort_discards(self, mv_object):
        buffer = mv_object.buffer_for(4, base=0)
        buffer.install((0,), 40)
        mv_object.pending_writers.add(4)
        mv_object.abort_tree(4)
        assert [v.wts for v in mv_object.versions] == [0]
        assert 4 not in mv_object.pending_writers
