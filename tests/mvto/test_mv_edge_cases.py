"""Edge-case tests for the MVTO engine."""

import pytest

from repro.adt import Counter, IntRegister
from repro.errors import (
    EngineError,
    InvalidTransactionState,
    LockDenied,
)
from repro.mvto import MVTOEngine


@pytest.fixture
def engine():
    return MVTOEngine([Counter("c"), IntRegister("x")])


class TestTimestamps:
    def test_timestamps_monotone(self, engine):
        one = engine.begin_top()
        two = engine.begin_top()
        assert engine._tree_ts[one.name] < engine._tree_ts[two.name]

    def test_restarted_tree_gets_fresh_timestamp(self, engine):
        first = engine.begin_top()
        ts_first = engine._tree_ts[first.name]
        first.abort()
        second = engine.begin_top()
        assert engine._tree_ts[second.name] > ts_first


class TestVersionChains:
    def test_sequential_writers_stack_versions(self, engine):
        for amount in (1, 2, 3):
            txn = engine.begin_top()
            txn.perform("c", Counter.increment(amount))
            txn.commit()
        mv_object = engine.objects["c"]
        assert [v.value for v in mv_object.versions] == [0, 1, 3, 6]

    def test_snapshot_read_between_versions(self, engine):
        early = engine.begin_top()       # ts 1
        writer = engine.begin_top()      # ts 2
        writer.perform("c", Counter.increment(5))
        writer.commit()
        late = engine.begin_top()        # ts 3
        assert early.perform("c", Counter.value()) == 0
        assert late.perform("c", Counter.value()) == 5

    def test_unknown_object_rejected(self, engine):
        txn = engine.begin_top()
        with pytest.raises(EngineError):
            txn.perform("ghost", Counter.value())


class TestWaitChains:
    def test_waits_are_timestamp_ordered(self, engine):
        """A blocked access is only ever blocked by older timestamps, so
        wait chains strictly decrease and cannot cycle."""
        writers = []
        for _ in range(3):
            txn = engine.begin_top()
            try:
                txn.perform("c", Counter.increment(1))
                writers.append(txn)
            except LockDenied as denial:
                for blocker in denial.blockers:
                    assert engine._tree_ts[blocker] < (
                        engine._tree_ts[txn.name]
                    )
        # First writer got through; later ones were blocked by it.
        assert writers

    def test_wait_clears_after_abort(self, engine):
        writer = engine.begin_top()
        writer.perform("c", Counter.increment(1))
        reader = engine.begin_top()
        with pytest.raises(LockDenied):
            reader.perform("c", Counter.value())
        writer.abort()
        assert reader.perform("c", Counter.value()) == 0


class TestHandleHygiene:
    def test_unknown_transaction_lookup(self, engine):
        with pytest.raises(EngineError):
            engine.transaction((99,))

    def test_double_commit_rejected(self, engine):
        txn = engine.begin_top()
        txn.commit()
        with pytest.raises(InvalidTransactionState):
            txn.commit()

    def test_stats_counters(self, engine):
        txn = engine.begin_top()
        txn.perform("c", Counter.increment(1))
        txn.commit()
        other = engine.begin_top()
        other.abort()
        assert engine.stats["accesses"] == 1
        assert engine.stats["commits"] == 1
        assert engine.stats["aborts"] == 1
