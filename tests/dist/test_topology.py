"""Unit tests for site topologies."""

import pytest

from repro.dist import Topology, uniform_topology
from repro.errors import ReproError


class TestTopology:
    def test_placement_lookup(self):
        topology = Topology(sites=2, placement={"x": 0, "y": 1})
        assert topology.site_of("x") == 0
        assert topology.site_of("y") == 1

    def test_unknown_object_rejected(self):
        topology = Topology(sites=1, placement={})
        with pytest.raises(ReproError):
            topology.site_of("ghost")

    def test_bad_placement_rejected(self):
        with pytest.raises(ReproError):
            Topology(sites=1, placement={"x": 3})

    def test_zero_sites_rejected(self):
        with pytest.raises(ReproError):
            Topology(sites=0, placement={})

    def test_intra_site_latency_free(self):
        topology = Topology(
            sites=2, placement={}, one_way_latency=5.0
        )
        assert topology.latency(1, 1) == 0.0
        assert topology.latency(0, 1) == 5.0
        assert topology.round_trip(0, 1) == 10.0

    def test_per_pair_latency(self):
        topology = Topology(
            sites=3,
            placement={},
            one_way_latency=1.0,
            per_pair={(0, 2): 9.0},
        )
        assert topology.latency(0, 2) == 9.0
        assert topology.latency(2, 0) == 9.0
        assert topology.latency(0, 1) == 1.0

    def test_home_round_robin(self):
        topology = Topology(sites=3, placement={})
        assert [topology.home_of(i) for i in range(5)] == [0, 1, 2, 0, 1]


class TestUniformTopology:
    def test_round_robin_spread(self):
        topology = uniform_topology(["a", "b", "c", "d"], sites=2)
        sites = [topology.site_of(name) for name in "abcd"]
        assert sites == [0, 1, 0, 1]

    def test_seeded_shuffle_reproducible(self):
        one = uniform_topology(["a", "b", "c", "d"], 2, seed=3)
        two = uniform_topology(["a", "b", "c", "d"], 2, seed=3)
        assert one.placement == two.placement

    def test_all_objects_placed(self):
        names = ["o%d" % i for i in range(10)]
        topology = uniform_topology(names, sites=4)
        assert set(topology.placement) == set(names)
        assert set(topology.placement.values()) <= set(range(4))
