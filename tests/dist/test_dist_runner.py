"""Integration tests for the distributed simulation runner."""

import pytest

from repro.adt import IntRegister
from repro.dist import (
    DistributedConfig,
    Topology,
    run_distributed_simulation,
    uniform_topology,
)
from repro.sim import (
    AccessOp,
    Block,
    Program,
    WorkloadConfig,
    make_store,
    make_workload,
    run_simulation,
    SimulationConfig,
)


def single_access_program(object_name):
    return Program(
        body=Block(
            steps=[AccessOp(object_name, IntRegister.add(1))],
            parallel=False,
        )
    )


class TestBasics:
    def test_all_programs_commit(self):
        config = WorkloadConfig(programs=12, objects=8, read_fraction=0.5)
        programs = make_workload(2, config)
        store = make_store(config)
        topology = uniform_topology(
            [spec.name for spec in store], sites=3
        )
        metrics = run_distributed_simulation(
            programs, store, topology,
            DistributedConfig(mpl=4, policy="moss-rw", seed=1),
        )
        assert metrics.committed == 12
        assert metrics.messages > 0

    def test_single_site_costs_nothing_extra(self):
        """One site == the local simulation (no messages, same times)."""
        config = WorkloadConfig(programs=8, objects=4, read_fraction=0.5)
        programs = make_workload(4, config)
        store = make_store(config)
        topology = uniform_topology(
            [spec.name for spec in store], sites=1
        )
        distributed = run_distributed_simulation(
            programs, store, topology,
            DistributedConfig(mpl=4, policy="moss-rw", seed=1),
        )
        local = run_simulation(
            programs, store,
            SimulationConfig(mpl=4, policy="moss-rw", seed=1),
        )
        assert distributed.messages == 0
        assert distributed.remote_fraction == 0.0
        assert distributed.makespan == local.makespan
        assert distributed.committed == local.committed

    def test_remote_access_pays_round_trip(self):
        store = [IntRegister("remote")]
        topology = Topology(
            sites=2, placement={"remote": 1}, one_way_latency=10.0
        )
        metrics = run_distributed_simulation(
            [single_access_program("remote")],
            store,
            topology,
            DistributedConfig(mpl=1, policy="moss-rw", seed=0),
        )
        assert metrics.committed == 1
        # Round trip (20) + service (1) + 2PC (3 legs x 10).
        assert metrics.makespan == pytest.approx(51.0)
        # 2 access messages + 3 commit legs.
        assert metrics.messages == 5
        assert metrics.remote_accesses == 1
        assert metrics.commit_rounds == 1

    def test_local_access_is_free(self):
        store = [IntRegister("local")]
        topology = Topology(
            sites=2, placement={"local": 0}, one_way_latency=10.0
        )
        metrics = run_distributed_simulation(
            [single_access_program("local")],
            store,
            topology,
            DistributedConfig(mpl=1, policy="moss-rw", seed=0),
        )
        assert metrics.messages == 0
        assert metrics.makespan == pytest.approx(1.0)

    def test_commit_protocol_legs_configurable(self):
        store = [IntRegister("remote")]
        topology = Topology(
            sites=2, placement={"remote": 1}, one_way_latency=10.0
        )
        metrics = run_distributed_simulation(
            [single_access_program("remote")],
            store,
            topology,
            DistributedConfig(
                mpl=1, policy="moss-rw", seed=0,
                commit_protocol_legs=2,
            ),
        )
        assert metrics.makespan == pytest.approx(41.0)
        assert metrics.messages == 4


class TestScalingShapes:
    def test_latency_hurts_makespan(self):
        config = WorkloadConfig(programs=10, objects=6, read_fraction=0.7)
        programs = make_workload(6, config)
        store = make_store(config)
        spans = []
        for latency in (0.5, 4.0):
            topology = uniform_topology(
                [spec.name for spec in store], sites=3,
            )
            topology.one_way_latency = latency
            metrics = run_distributed_simulation(
                programs, store, topology,
                DistributedConfig(mpl=4, policy="moss-rw", seed=2),
            )
            assert metrics.committed == 10
            spans.append(metrics.makespan)
        assert spans[1] > spans[0]

    def test_remote_fraction_grows_with_sites(self):
        config = WorkloadConfig(programs=10, objects=12, read_fraction=0.7)
        programs = make_workload(7, config)
        store = make_store(config)
        fractions = []
        for sites in (1, 2, 6):
            topology = uniform_topology(
                [spec.name for spec in store], sites=sites
            )
            metrics = run_distributed_simulation(
                programs, store, topology,
                DistributedConfig(mpl=4, policy="moss-rw", seed=2),
            )
            fractions.append(metrics.remote_fraction)
        assert fractions[0] == 0.0
        assert fractions[2] > fractions[1]

    def test_row_includes_distribution_fields(self):
        config = WorkloadConfig(programs=4, objects=4)
        programs = make_workload(8, config)
        store = make_store(config)
        topology = uniform_topology(
            [spec.name for spec in store], sites=2
        )
        metrics = run_distributed_simulation(
            programs, store, topology,
            DistributedConfig(mpl=2, policy="moss-rw", seed=3),
        )
        row = metrics.row()
        assert "messages" in row
        assert "remote_fraction" in row
        assert "commit_rounds" in row
