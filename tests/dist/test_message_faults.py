"""Seeded message delay/drop injection in the distributed runner."""

import pytest

from repro.adt import IntRegister
from repro.dist import (
    DistributedConfig,
    MessageFaults,
    Topology,
    run_distributed_simulation,
)
from repro.sim import (
    WorkloadConfig,
    make_store,
    make_workload,
)
from tests.dist.test_dist_runner import single_access_program


def _run(faults, seed=1):
    config = WorkloadConfig(programs=10, objects=6, read_fraction=0.5)
    programs = make_workload(seed, config)
    store = make_store(config)
    from repro.dist import uniform_topology

    topology = uniform_topology(
        [spec.name for spec in store], sites=3
    )
    return run_distributed_simulation(
        programs, store, topology,
        DistributedConfig(
            mpl=4, policy="moss-rw", seed=seed, faults=faults
        ),
    )


class TestNoFaults:
    def test_none_is_identity(self):
        clean = _run(None)
        zeroed = _run(MessageFaults())
        assert clean.messages == zeroed.messages
        assert clean.makespan == zeroed.makespan
        assert zeroed.dropped_messages == 0


class TestDrops:
    def test_drops_cost_messages_and_time(self):
        clean = _run(None)
        faulty = _run(
            MessageFaults(drop_rate=0.3, retry_timeout=5.0, seed=4)
        )
        assert faulty.committed == clean.committed  # still all commit
        assert faulty.dropped_messages > 0
        # Every drop costs at least one retransmission (the delays also
        # reshuffle conflicts, so restarts move the total further)...
        assert faulty.messages > clean.messages
        # ...and the retry timeout in latency.
        assert faulty.makespan > clean.makespan

    def test_single_message_drop_accounting(self):
        # One remote access, deterministic drop of every first try.
        store = [IntRegister("remote")]
        topology = Topology(
            sites=2, placement={"remote": 1}, one_way_latency=10.0
        )

        metrics = run_distributed_simulation(
            [single_access_program("remote")],
            store,
            topology,
            DistributedConfig(
                mpl=1, policy="moss-rw", seed=0,
                faults=MessageFaults(
                    drop_rate=1e-9, retry_timeout=7.0, seed=0
                ),
            ),
        )
        # drop_rate ~ 0: identical to the clean accounting.
        assert metrics.messages == 5
        assert metrics.dropped_messages == 0
        assert metrics.makespan == pytest.approx(51.0)


class TestJitter:
    def test_jitter_slows_without_dropping(self):
        clean = _run(None)
        jittery = _run(MessageFaults(delay_jitter=3.0, seed=9))
        # Jitter never drops, but it does reshuffle conflicts (hence
        # restarts), so only a lower bound on messages holds.
        assert jittery.dropped_messages == 0
        assert jittery.messages >= clean.messages
        assert jittery.makespan > clean.makespan
        assert jittery.committed == clean.committed


class TestDeterminism:
    def test_same_seed_same_run(self):
        faults = MessageFaults(
            drop_rate=0.25, delay_jitter=2.0, seed=13
        )
        first = _run(faults)
        second = _run(faults)
        assert first.row() == second.row()

    def test_different_fault_seed_different_run(self):
        first = _run(MessageFaults(drop_rate=0.25, seed=13))
        second = _run(MessageFaults(drop_rate=0.25, seed=14))
        assert first.dropped_messages != second.dropped_messages

    def test_metrics_row_reports_drops(self):
        row = _run(MessageFaults(drop_rate=0.3, seed=4)).row()
        assert row["dropped_messages"] > 0


class TestValidation:
    def test_certain_drop_is_rejected(self):
        # drop_rate 1.0 would retransmit forever.
        with pytest.raises(ValueError):
            MessageFaults(drop_rate=1.0)
        with pytest.raises(ValueError):
            MessageFaults(drop_rate=-0.1)

    def test_negative_delays_rejected(self):
        with pytest.raises(ValueError):
            MessageFaults(delay_jitter=-1.0)
        with pytest.raises(ValueError):
            MessageFaults(retry_timeout=-1.0)
