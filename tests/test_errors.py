"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    CompositionError,
    DeadlockDetected,
    EngineError,
    InvalidTransactionState,
    LockDenied,
    ModelError,
    NotEnabledError,
    ReproError,
    SerializationFailure,
    SystemTypeError,
    TransactionAborted,
    WellFormednessError,
)


class TestHierarchy:
    def test_everything_is_repro_error(self):
        for exc_type in (
            ModelError,
            NotEnabledError,
            CompositionError,
            WellFormednessError,
            SystemTypeError,
            SerializationFailure,
            EngineError,
            TransactionAborted,
            DeadlockDetected,
            InvalidTransactionState,
            LockDenied,
        ):
            assert issubclass(exc_type, ReproError)

    def test_model_errors(self):
        assert issubclass(NotEnabledError, ModelError)
        assert issubclass(CompositionError, ModelError)

    def test_engine_errors(self):
        for exc_type in (
            TransactionAborted,
            DeadlockDetected,
            InvalidTransactionState,
            LockDenied,
        ):
            assert issubclass(exc_type, EngineError)


class TestPayloads:
    def test_transaction_aborted_carries_context(self):
        exc = TransactionAborted((0, 1), reason="victim")
        assert exc.transaction_id == (0, 1)
        assert exc.reason == "victim"
        assert "victim" in str(exc)

    def test_transaction_aborted_without_reason(self):
        exc = TransactionAborted((0,))
        assert "aborted" in str(exc)

    def test_deadlock_carries_cycle(self):
        exc = DeadlockDetected((1,), [(0,), (1,), (0,)])
        assert exc.victim == (1,)
        assert exc.cycle == [(0,), (1,), (0,)]

    def test_lock_denied_blockers_frozen(self):
        exc = LockDenied("nope", blockers=[(0,), (1,)])
        assert exc.blockers == frozenset({(0,), (1,)})
        assert isinstance(exc.blockers, frozenset)

    def test_lock_denied_default_blockers_empty(self):
        assert LockDenied("nope").blockers == frozenset()
