"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    CompositionError,
    DeadlockDetected,
    EngineError,
    InvalidTransactionState,
    LockDenied,
    ModelError,
    NotEnabledError,
    ReproError,
    RetryLater,
    SerializationFailure,
    SystemTypeError,
    TransactionAborted,
    WellFormednessError,
)


class TestHierarchy:
    def test_everything_is_repro_error(self):
        for exc_type in (
            ModelError,
            NotEnabledError,
            CompositionError,
            WellFormednessError,
            SystemTypeError,
            SerializationFailure,
            EngineError,
            TransactionAborted,
            DeadlockDetected,
            InvalidTransactionState,
            LockDenied,
        ):
            assert issubclass(exc_type, ReproError)

    def test_model_errors(self):
        assert issubclass(NotEnabledError, ModelError)
        assert issubclass(CompositionError, ModelError)

    def test_engine_errors(self):
        for exc_type in (
            TransactionAborted,
            DeadlockDetected,
            InvalidTransactionState,
            LockDenied,
        ):
            assert issubclass(exc_type, EngineError)


class TestPayloads:
    def test_transaction_aborted_carries_context(self):
        exc = TransactionAborted((0, 1), reason="victim")
        assert exc.transaction_id == (0, 1)
        assert exc.reason == "victim"
        assert "victim" in str(exc)

    def test_transaction_aborted_without_reason(self):
        exc = TransactionAborted((0,))
        assert "aborted" in str(exc)

    def test_deadlock_carries_cycle(self):
        exc = DeadlockDetected((1,), [(0,), (1,), (0,)])
        assert exc.victim == (1,)
        assert exc.cycle == [(0,), (1,), (0,)]

    def test_lock_denied_blockers_frozen(self):
        exc = LockDenied("nope", blockers=[(0,), (1,)])
        assert exc.blockers == frozenset({(0,), (1,)})
        assert isinstance(exc.blockers, frozenset)

    def test_lock_denied_default_blockers_empty(self):
        assert LockDenied("nope").blockers == frozenset()

    def test_retry_later_is_a_lock_denied(self):
        # MVTO waits raise RetryLater; runners that predate the split
        # catch LockDenied, so the subclass relationship is load-bearing
        # compatibility, not an implementation detail.
        exc = RetryLater("later", blockers=[(2,)])
        assert isinstance(exc, LockDenied)
        assert issubclass(RetryLater, LockDenied)
        assert exc.blockers == frozenset({(2,)})
        with pytest.raises(LockDenied):
            raise RetryLater("caught as the alias")

    def test_mvto_wait_raises_retry_later(self):
        from repro.adt import Counter
        from repro.kernel import get_scheme

        engine = get_scheme("mvto").build([Counter("c")])
        writer = engine.begin_top()
        writer.perform("c", Counter.increment(1))
        reader = engine.begin_top()
        with pytest.raises(RetryLater) as excinfo:
            reader.perform("c", Counter.value())
        assert excinfo.value.blockers == frozenset({writer.name})

    def test_retry_later_hint_defaults_to_none(self):
        assert RetryLater("later").retry_after_ms is None

    def test_retry_later_hint_is_attribute_only(self):
        # The hint must not change str()/args/pickle compatibility:
        # logs and wire formats built before the field keep working.
        import pickle

        plain = RetryLater("later", blockers=[(2,)])
        hinted = RetryLater("later", blockers=[(2,)], retry_after_ms=7)
        assert str(hinted) == str(plain) == "later"
        assert hinted.args == plain.args == ("later",)
        assert hinted.retry_after_ms == 7
        clone = pickle.loads(pickle.dumps(hinted))
        assert str(clone) == "later"
        assert clone.blockers == frozenset({(2,)})

    def test_mvto_wait_carries_a_hint(self):
        from repro.adt import Counter
        from repro.kernel import get_scheme

        engine = get_scheme("mvto").build([Counter("c")])
        writer = engine.begin_top()
        writer.perform("c", Counter.increment(1))
        reader = engine.begin_top()
        with pytest.raises(RetryLater) as excinfo:
            reader.perform("c", Counter.value())
        assert excinfo.value.retry_after_ms is not None
        assert excinfo.value.retry_after_ms >= 1
