"""Shared fixtures: canonical small system types and helpers."""

from __future__ import annotations

import random

import pytest

from repro.adt import BankAccount, Counter, IntRegister, SetObject
from repro.core.names import ROOT, SystemTypeBuilder


@pytest.fixture
def tiny_system_type():
    """Two top-level transactions: one writer, one reader, one register."""
    builder = SystemTypeBuilder()
    builder.add_object(IntRegister("x"))
    t1 = builder.add_child(ROOT)
    builder.add_access(t1, "x", IntRegister.write(5))
    t2 = builder.add_child(ROOT)
    builder.add_access(t2, "x", IntRegister.read())
    return builder.build()


@pytest.fixture
def nested_system_type():
    """Three top-levels with nested children over three objects."""
    builder = SystemTypeBuilder()
    builder.add_object(IntRegister("x"))
    builder.add_object(BankAccount("acct", 100))
    builder.add_object(SetObject("s"))
    for i in range(3):
        top = builder.add_child(ROOT)
        for j in range(2):
            mid = builder.add_child(top)
            builder.add_access(mid, "x", IntRegister.add(1))
            builder.add_access(mid, "x", IntRegister.read())
            builder.add_access(mid, "acct", BankAccount.withdraw(10))
            builder.add_access(mid, "s", SetObject.insert((i, j)))
        builder.add_access(top, "acct", BankAccount.balance())
    return builder.build()


@pytest.fixture
def counter_system_type():
    """A counter hammered by increments and reads from two top-levels."""
    builder = SystemTypeBuilder()
    builder.add_object(Counter("c"))
    for _ in range(2):
        top = builder.add_child(ROOT)
        builder.add_access(top, "c", Counter.increment(1))
        builder.add_access(top, "c", Counter.value())
    return builder.build()


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)
