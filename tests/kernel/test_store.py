"""Tests for the shared sharded object store."""

import pytest

from repro.adt import Counter
from repro.errors import EngineError
from repro.kernel import ObjectStore, default_sharding


def make_store(n, shards=1, sharding=None):
    return ObjectStore(
        [Counter("c%d" % i) for i in range(n)],
        lambda spec: spec,
        shards=shards,
        sharding=sharding,
    )


class TestBasics:
    def test_mapping_protocol(self):
        store = make_store(3)
        assert len(store) == 3
        assert "c1" in store and "nope" not in store
        assert store.names() == ("c0", "c1", "c2")
        assert {name for name, _ in store.items()} == {"c0", "c1", "c2"}
        assert store.object("c2").name == "c2"

    def test_unknown_and_duplicate_objects_rejected(self):
        store = make_store(2)
        with pytest.raises(EngineError):
            store.object("ghost")
        with pytest.raises(EngineError):
            ObjectStore(
                [Counter("c"), Counter("c")], lambda spec: spec
            )


class TestSharding:
    def test_single_shard_default(self):
        store = make_store(5)
        assert store.shards == 1
        assert {store.shard_of(name) for name in store.names()} == {0}

    def test_shard_count_clamped_to_objects(self):
        assert make_store(3, shards=16).shards == 3
        assert make_store(3, shards=0).shards == 1

    def test_default_sharding_is_stable_and_in_range(self):
        store = make_store(10, shards=4)
        for name in store.names():
            index = store.shard_of(name)
            assert 0 <= index < store.shards
            assert index == store.shard_of(name)
            assert index == default_sharding(name, store.shards)

    def test_custom_sharding_function(self):
        store = make_store(4, shards=2, sharding=lambda name, n: 1)
        assert {store.shard_of(name) for name in store.names()} == {1}

    def test_out_of_range_sharding_rejected(self):
        with pytest.raises(EngineError):
            make_store(4, shards=2, sharding=lambda name, n: 7)
