"""Tests for the shared sharded object store."""

import multiprocessing
import zlib

import pytest

from repro.adt import Counter
from repro.errors import EngineError
from repro.kernel import ObjectStore, default_sharding


def make_store(n, shards=1, sharding=None):
    return ObjectStore(
        [Counter("c%d" % i) for i in range(n)],
        lambda spec: spec,
        shards=shards,
        sharding=sharding,
    )


class TestBasics:
    def test_mapping_protocol(self):
        store = make_store(3)
        assert len(store) == 3
        assert "c1" in store and "nope" not in store
        assert store.names() == ("c0", "c1", "c2")
        assert {name for name, _ in store.items()} == {"c0", "c1", "c2"}
        assert store.object("c2").name == "c2"

    def test_unknown_and_duplicate_objects_rejected(self):
        store = make_store(2)
        with pytest.raises(EngineError):
            store.object("ghost")
        with pytest.raises(EngineError):
            ObjectStore(
                [Counter("c"), Counter("c")], lambda spec: spec
            )


class TestSharding:
    def test_single_shard_default(self):
        store = make_store(5)
        assert store.shards == 1
        assert {store.shard_of(name) for name in store.names()} == {0}

    def test_shard_count_clamped_to_objects(self):
        assert make_store(3, shards=16).shards == 3
        assert make_store(3, shards=0).shards == 1

    def test_default_sharding_is_stable_and_in_range(self):
        store = make_store(10, shards=4)
        for name in store.names():
            index = store.shard_of(name)
            assert 0 <= index < store.shards
            assert index == store.shard_of(name)
            assert index == default_sharding(name, store.shards)

    def test_custom_sharding_function(self):
        store = make_store(4, shards=2, sharding=lambda name, n: 1)
        assert {store.shard_of(name) for name in store.names()} == {1}

    def test_out_of_range_sharding_rejected(self):
        with pytest.raises(EngineError):
            make_store(4, shards=2, sharding=lambda name, n: 7)

    def test_negative_sharding_rejected(self):
        with pytest.raises(EngineError):
            make_store(4, shards=2, sharding=lambda name, n: -1)

    def test_custom_sharding_sees_clamped_shard_count(self):
        seen = []

        def spy(name, shards):
            seen.append(shards)
            return 0

        make_store(3, shards=16, sharding=spy)
        # The callable is offered the *effective* count, so affinity
        # folds (affinity % shards) stay in range after clamping.
        assert seen == [3, 3, 3]

    def test_rank_preserves_registration_order(self):
        store = make_store(5, shards=2)
        assert [store.rank_of(n) for n in store.names()] == [
            0,
            1,
            2,
            3,
            4,
        ]


def _child_sharding(names_and_shards):
    """Spawn target: recompute CRC32 sharding in a fresh interpreter."""
    return [
        default_sharding(name, shards)
        for name, shards in names_and_shards
    ]


class TestCrossProcessDeterminism:
    """The sharded engine routes in the coordinator and re-checks in
    each spawn worker; both sides must compute identical CRC32 shard
    assignments whatever ``PYTHONHASHSEED`` the interpreter drew."""

    NAMES = ["r%d" % i for i in range(16)] + ["account-7", "μ-obj"]

    def test_default_sharding_is_crc32_pinned(self):
        # The exact function, not just "some stable hash": workers
        # recompute it independently, so the definition is part of
        # the wire contract.
        for name in self.NAMES:
            for shards in (1, 2, 4, 7):
                assert default_sharding(name, shards) == zlib.crc32(
                    name.encode("utf-8")
                ) % shards

    def test_spawned_interpreter_agrees(self):
        jobs = [
            (name, shards)
            for name in self.NAMES
            for shards in (2, 4, 7)
        ]
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(1) as pool:
            child = pool.apply(_child_sharding, (jobs,))
        assert child == [
            default_sharding(name, shards) for name, shards in jobs
        ]
