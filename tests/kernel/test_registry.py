"""Tests for the scheme registry and capability descriptors."""

import pytest

from repro.adt import Counter
from repro.errors import EngineError
from repro.kernel import Scheme, get_scheme, scheme_names


class TestLookup:
    def test_builtin_names_registered(self):
        names = scheme_names()
        for name in (
            "moss-rw", "exclusive", "flat-2pl", "semantic",
            "serial", "mvto", "broken-no-inherit",
        ):
            assert name in names
        assert names == tuple(sorted(names))

    def test_unknown_name_lists_the_menu(self):
        with pytest.raises(EngineError) as excinfo:
            get_scheme("two-phase-hopes")
        assert "two-phase-hopes" in str(excinfo.value)
        assert "moss-rw" in str(excinfo.value)

    def test_lookup_is_cached(self):
        assert get_scheme("moss-rw") is get_scheme("moss-rw")

    def test_scheme_passes_through(self):
        scheme = get_scheme("exclusive")
        assert get_scheme(scheme) is scheme

    def test_policy_instance_becomes_ad_hoc_scheme(self):
        from repro.analysis.faults import NoInheritPolicy

        scheme = get_scheme(NoInheritPolicy())
        assert isinstance(scheme, Scheme)
        assert scheme.name == NoInheritPolicy.name
        engine = scheme.build([Counter("c")])
        assert engine.scheme_name == NoInheritPolicy.name


class TestCapabilities:
    def test_locking_schemes_are_object_local(self):
        for name in ("moss-rw", "exclusive", "flat-2pl"):
            caps = get_scheme(name).capabilities
            assert caps.object_local_performs
            assert not caps.waits_are_acyclic

    def test_model_conformance_flags(self):
        assert get_scheme("moss-rw").capabilities.model_conformant
        assert get_scheme("exclusive").capabilities.model_conformant
        assert not get_scheme("flat-2pl").capabilities.model_conformant
        assert not get_scheme("mvto").capabilities.model_conformant

    def test_mvto_shape(self):
        caps = get_scheme("mvto").capabilities
        assert caps.waits_are_acyclic
        assert caps.aborts_whole_tree
        assert not caps.moves_locks
        assert not caps.object_local_performs

    def test_serial_is_moss_rw_forced_serial(self):
        serial = get_scheme("serial")
        moss = get_scheme("moss-rw")
        assert serial.force_serial
        assert not moss.force_serial
        assert serial.capabilities == moss.capabilities


class TestBuild:
    def test_built_engines_expose_the_scheme_protocol(self):
        for name in ("moss-rw", "mvto"):
            engine = get_scheme(name).build([Counter("c")])
            assert engine.scheme_name == name
            top = engine.begin_top()
            top.perform("c", Counter.increment(2))
            top.commit()
            assert engine.object_value("c") == 2
            assert engine.stats["commits"] == 1

    def test_build_honours_shards(self):
        specs = [Counter("c%d" % i) for i in range(8)]
        engine = get_scheme("moss-rw").build(specs, shards=4)
        assert engine.store.shards == 4
