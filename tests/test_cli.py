"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main

FIXTURE = str(
    Path(__file__).parent
    / "analysis"
    / "fixtures"
    / "bad_lock_discipline.py"
)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["validate"])
        assert args.seed == 0
        assert args.systems == 3

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_validate(self, capsys):
        code = main(
            ["validate", "--systems", "1", "--schedules", "2",
             "--steps", "120"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "HOLDS" in output

    def test_explore(self, capsys):
        code = main(["explore", "--depth", "9", "--cap", "400"])
        output = capsys.readouterr().out
        assert code == 0
        assert "0 violations" in output

    def test_sweep_single_policy(self, capsys):
        code = main(
            [
                "sweep",
                "--programs", "6",
                "--objects", "6",
                "--policies", "moss-rw",
                "--mpl", "2",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "moss-rw" in output
        # Five read-fraction rows plus the header.
        assert len(output.strip().splitlines()) == 6

    def test_conformance(self, capsys):
        code = main(
            ["conformance", "--transactions", "2", "--operations", "15"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "conformance  : OK" in output

    def test_lint_repo_is_clean(self, capsys):
        code = main(["lint"])
        output = capsys.readouterr().out
        assert code == 0
        assert "0 findings" in output

    def test_lint_flags_fixture(self, capsys):
        code = main(["lint", FIXTURE])
        output = capsys.readouterr().out
        assert code == 1
        assert "CD001" in output

    def test_lint_missing_path_is_an_error(self, capsys):
        code = main(["lint", "/no/such/path.py"])
        captured = capsys.readouterr()
        assert code == 2
        assert "no such file" in captured.err

    def test_lint_list_rules(self, capsys):
        code = main(["lint", "--list-rules"])
        output = capsys.readouterr().out
        assert code == 0
        assert "RW007" in output
        assert "RACE001" in output
        assert "Section 5.2" in output

    def test_analyze_clean(self, capsys):
        code = main(
            ["analyze", "--transactions", "2", "--operations", "15"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "0 findings" in output

    def test_analyze_broken_policy(self, capsys):
        code = main(
            ["analyze", "--policy", "broken-no-inherit", "--seed", "1"]
        )
        output = capsys.readouterr().out
        assert code == 1
        assert "RW007" in output

    def test_analyze_json(self, capsys):
        code = main(
            [
                "analyze",
                "--json",
                "--policy",
                "broken-no-inherit",
                "--seed",
                "1",
            ]
        )
        output = capsys.readouterr().out
        assert code == 1
        payload = json.loads(output)
        assert payload["ok"] is False
        codes = {
            finding["code"]
            for report in payload["reports"]
            for finding in report["findings"]
        }
        assert "RW007" in codes

    def test_orphan(self, capsys):
        code = main(["orphan"])
        output = capsys.readouterr().out
        assert code == 0
        assert "anomaly" in output
        assert "T0.0.0" in output

    def test_orphan_verbose_prints_schedule(self, capsys):
        code = main(["orphan", "--verbose"])
        output = capsys.readouterr().out
        assert code == 0
        assert "ABORT(T0.0)" in output

    def test_trace_quickstart_report(self, capsys):
        code = main(["trace", "--workload", "quickstart"])
        output = capsys.readouterr().out
        assert code == 0
        assert output.startswith("workload quickstart (seed 0):")
        assert "transfers=" in output
        assert "== spans ==" in output
        assert "== metrics ==" in output
        assert "== lock contention (top 10) ==" in output
        assert "txn.commit{scope=top}" in output

    def test_trace_chrome_export_is_valid(self, capsys, tmp_path):
        from tests.obs.test_exporters import (
            assert_tracks_are_consistent,
        )

        path = tmp_path / "trace.json"
        code = main(
            ["trace", "--workload", "banking", "--out", str(path)]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "chrome trace : %s" % path in output
        payload = json.loads(path.read_text())
        assert payload["traceEvents"]
        assert_tracks_are_consistent(payload["traceEvents"])

    def test_trace_jsonl_export(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        code = main(["trace", "--jsonl", str(path)])
        capsys.readouterr()
        assert code == 0
        records = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert records[-2]["type"] == "metrics"
        assert records[-1]["type"] == "contention"

    def test_trace_rejects_unknown_workload(self, capsys):
        # Workload names are resolved at run time (scenario:<name>
        # entries are dynamic), so rejection is exit code 2, not a
        # parse-time SystemExit.
        code = main(["trace", "--workload", "frobnicate"])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown workload" in captured.err

    def test_top_prints_contention_table(self, capsys):
        code = main(
            [
                "top",
                "--programs", "12",
                "--objects", "4",
                "--mpl", "6",
                "--seed", "3",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        lines = output.splitlines()
        assert lines[0].startswith("policy moss-rw, seed 3:")
        assert "committed" in lines[0]
        assert "makespan" in lines[0]
        # The table header and at least one hot object.
        assert "object" in lines[1]
        assert "denials" in lines[1]
        assert len(lines) >= 3

    def test_top_limit_bounds_table(self, capsys):
        code = main(
            [
                "top",
                "--programs", "12",
                "--objects", "4",
                "--mpl", "6",
                "--seed", "3",
                "--limit", "1",
                "--no-trace",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        # Summary line + header + exactly one row.
        assert len(output.strip().splitlines()) == 3

    def test_fuzz_replay_trace_out(self, capsys, tmp_path):
        path = tmp_path / "fuzz_trace.json"
        code = main(
            [
                "fuzz",
                "--seed", "5",
                "--choices", "",
                "--trace-out", str(path),
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "trace  : %s" % path in output
        payload = json.loads(path.read_text())
        assert payload["traceEvents"]
        report = (tmp_path / "fuzz_trace.json.report.txt").read_text()
        assert "== metrics ==" in report

    def test_dist(self, capsys):
        code = main(
            ["dist", "--programs", "6", "--objects", "6"]
        )
        output = capsys.readouterr().out
        assert code == 0
        lines = output.strip().splitlines()
        assert len(lines) == 5  # header + 4 site counts
        assert lines[1].startswith("1")


class TestRecoverCommand:
    """Exit codes mirror ``repro audit``: 0/1/4/2."""

    @pytest.fixture()
    def wal_dir(self, tmp_path):
        from repro.adt import Counter, IntRegister
        from repro.engine.engine import Engine
        from repro.wal import FileWalSink

        engine = Engine(
            [Counter("c"), IntRegister("x")], policy="moss-rw"
        )
        wal = engine.attach_wal(sink=FileWalSink(str(tmp_path)))
        top = engine.begin_top()
        top.perform("c", Counter.increment(5))
        top.commit()
        dangling = engine.begin_top()
        dangling.perform("x", IntRegister.write(9))
        wal.flush()
        return tmp_path

    def test_complete_log_exits_zero(self, capsys, wal_dir):
        code = main(["recover", str(wal_dir)])
        output = capsys.readouterr().out
        assert code == 0
        assert "recovery: complete" in output
        assert "committed c = 5" in output
        assert "presumed-abort: T1" in output

    def test_no_presume_abort_keeps_the_top(self, capsys, wal_dir):
        code = main(["recover", str(wal_dir), "--no-presume-abort"])
        output = capsys.readouterr().out
        assert code == 0
        assert "presumed-abort" not in output

    def test_torn_log_exits_one(self, capsys, wal_dir):
        from repro.wal import read_log_bytes

        torn = wal_dir / "torn.bin"
        torn.write_bytes(read_log_bytes(str(wal_dir))[:-3])
        code = main(["recover", str(torn)])
        output = capsys.readouterr().out
        assert code == 1
        assert "recovery: partial" in output
        assert "stopped: torn" in output

    def test_headerless_log_exits_four(self, capsys, wal_dir):
        empty = wal_dir / "empty.bin"
        empty.write_bytes(b"")
        code = main(["recover", str(empty)])
        captured = capsys.readouterr()
        assert code == 4
        assert "no segment header" in captured.err

    def test_missing_log_exits_two(self, capsys, tmp_path):
        code = main(["recover", str(tmp_path / "missing.bin")])
        captured = capsys.readouterr()
        assert code == 2
        assert "repro recover:" in captured.err

    def test_out_writes_report(self, capsys, wal_dir, tmp_path):
        report = tmp_path / "recovery.txt"
        code = main(["recover", str(wal_dir), "--out", str(report)])
        output = capsys.readouterr().out
        assert code == 0
        assert "recovery report : %s" % report in output
        assert "recovery: complete" in report.read_text()
