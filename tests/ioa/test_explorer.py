"""Unit tests for exhaustive and random exploration."""

import random

import pytest

from repro.ioa.automaton import Automaton
from repro.ioa.explorer import (
    explore_exhaustive,
    random_schedule,
    random_schedules,
)


class CountDown(Automaton):
    """Emits tokens 'a'/'b' until a budget runs out: a branching space."""

    state_attrs = ("budget",)

    def __init__(self, budget=2):
        super().__init__("countdown")
        self.budget = budget

    def is_input(self, action):
        return False

    def is_output(self, action):
        return action in ("a", "b")

    def enabled_outputs(self):
        if self.budget > 0:
            yield "a"
            yield "b"

    def _apply(self, action):
        self.budget -= 1


class TestExhaustive:
    def test_counts_full_binary_tree(self):
        result = explore_exhaustive(CountDown(2), max_depth=5)
        # Schedules: (), a, b, aa, ab, ba, bb -> 7 prefixes.
        assert len(result.schedules) == 7
        assert len(result.maximal_schedules) == 4
        assert not result.truncated

    def test_depth_bound_truncates(self):
        result = explore_exhaustive(CountDown(10), max_depth=2)
        assert result.truncated
        assert all(len(s) == 2 for s in result.maximal_schedules)

    def test_restores_state(self):
        automaton = CountDown(2)
        explore_exhaustive(automaton, max_depth=5)
        assert automaton.budget == 2

    def test_prune_cuts_branches(self):
        result = explore_exhaustive(
            CountDown(2),
            max_depth=5,
            prune=lambda prefix: prefix[0] == "a",
        )
        maximal = set(result.maximal_schedules)
        assert ("b", "a") in maximal
        assert ("a", "a") not in maximal

    def test_max_schedules_cap(self):
        result = explore_exhaustive(
            CountDown(3), max_depth=10, max_schedules=5
        )
        assert result.truncated

    def test_maximal_only_mode(self):
        result = explore_exhaustive(
            CountDown(2), max_depth=5, collect_all=False
        )
        assert result.schedules == []
        assert len(result.maximal_schedules) == 4


class TestRandom:
    def test_walk_terminates_when_nothing_enabled(self):
        walk = random_schedule(CountDown(3), 100, random.Random(1))
        assert len(walk) == 3

    def test_walk_respects_step_bound(self):
        walk = random_schedule(CountDown(10), 4, random.Random(1))
        assert len(walk) == 4

    def test_walk_restores_state(self):
        automaton = CountDown(3)
        random_schedule(automaton, 100, random.Random(1))
        assert automaton.budget == 3

    def test_seeded_walks_reproducible(self):
        first = list(random_schedules(CountDown(5), 3, 10, seed=7))
        second = list(random_schedules(CountDown(5), 3, 10, seed=7))
        assert first == second

    def test_different_seeds_differ(self):
        # With 2^5 branches per walk, two seeds agreeing fully is unlikely.
        first = list(random_schedules(CountDown(5), 5, 10, seed=1))
        second = list(random_schedules(CountDown(5), 5, 10, seed=2))
        assert first != second

    def test_weighted_walk_prefers_heavy_action(self):
        walk = random_schedule(
            CountDown(50),
            50,
            random.Random(3),
            weight=lambda action: 100.0 if action == "a" else 0.0,
        )
        assert set(walk) == {"a"}

    def test_walks_are_schedules(self):
        automaton = CountDown(4)
        for walk in random_schedules(automaton, 5, 10, seed=11):
            assert automaton.accepts(walk)
