"""Unit tests for schedules, projections and sequence algebra."""

from hypothesis import given, strategies as st

from repro.ioa.execution import (
    is_subsequence,
    project_name,
    remove_events,
    same_events,
    schedule_of,
)


class TestProjection:
    def test_project_name_filters(self):
        alpha = ["a1", "b1", "a2", "b2"]
        assert project_name(alpha, lambda x: x.startswith("a")) == (
            "a1",
            "a2",
        )

    def test_project_preserves_order(self):
        alpha = ["c", "a", "b", "a"]
        assert project_name(alpha, lambda x: x == "a") == ("a", "a")


class TestSubsequence:
    def test_empty_is_subsequence(self):
        assert is_subsequence([], ["x", "y"])

    def test_noncontiguous(self):
        assert is_subsequence(["a", "c"], ["a", "b", "c"])

    def test_order_matters(self):
        assert not is_subsequence(["c", "a"], ["a", "b", "c"])

    def test_multiplicity_matters(self):
        assert not is_subsequence(["a", "a"], ["a", "b"])


class TestRemoveEvents:
    def test_removes_one_occurrence_each(self):
        assert remove_events(["a", "b", "a"], ["a"]) == ("b", "a")

    def test_difference_of_disjoint(self):
        assert remove_events(["a", "b"], ["c"]) == ("a", "b")

    def test_full_removal(self):
        assert remove_events(["a", "b"], ["b", "a"]) == ()


class TestSameEvents:
    def test_permutation(self):
        assert same_events(["a", "b", "c"], ["c", "a", "b"])

    def test_multiset_sensitivity(self):
        assert not same_events(["a", "a"], ["a"])
        assert not same_events(["a"], ["a", "a"])

    def test_different_events(self):
        assert not same_events(["a"], ["b"])


@given(st.lists(st.integers(0, 5)), st.lists(st.integers(0, 5)))
def test_remove_then_union_is_permutation(alpha, beta):
    """(alpha - beta) + (alpha & beta) is a permutation of alpha."""
    kept = remove_events(alpha, beta)
    removed_count = len(alpha) - len(kept)
    assert 0 <= removed_count <= len(beta)
    # Everything kept came from alpha.
    pool = list(alpha)
    for item in kept:
        assert item in pool
        pool.remove(item)


@given(st.lists(st.integers(0, 3), max_size=8))
def test_same_events_reflexive(alpha):
    assert same_events(alpha, list(reversed(alpha)))


def test_schedule_of_normalises():
    assert schedule_of(["a", "b"]) == ("a", "b")
