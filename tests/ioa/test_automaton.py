"""Unit tests for the I/O automaton base class."""

import pytest

from repro.errors import NotEnabledError
from repro.ioa.automaton import Automaton, sorted_actions


class Toggle(Automaton):
    """A two-state automaton: input 'set', output 'emit' enabled when set."""

    state_attrs = ("armed", "fired")

    def __init__(self, name="toggle"):
        super().__init__(name)
        self.armed = False
        self.fired = 0

    def is_input(self, action):
        return action == "set"

    def is_output(self, action):
        return action == "emit"

    def enabled_outputs(self):
        if self.armed:
            yield "emit"

    def _apply(self, action):
        if action == "set":
            self.armed = True
        elif action == "emit":
            self.fired += 1
            self.armed = False


class TestInputCondition:
    def test_input_always_accepted(self):
        automaton = Toggle()
        automaton.apply("set")
        automaton.apply("set")
        assert automaton.armed

    def test_input_accepted_in_any_state(self):
        automaton = Toggle()
        automaton.apply("set")
        automaton.apply("emit")
        automaton.apply("set")
        assert automaton.armed


class TestOutputs:
    def test_disabled_output_rejected(self):
        automaton = Toggle()
        with pytest.raises(NotEnabledError):
            automaton.apply("emit")

    def test_enabled_output_applies(self):
        automaton = Toggle()
        automaton.apply("set")
        automaton.apply("emit")
        assert automaton.fired == 1
        assert not automaton.armed

    def test_unknown_action_rejected(self):
        automaton = Toggle()
        with pytest.raises(NotEnabledError):
            automaton.apply("bogus")

    def test_output_enabled_scans_enabled_outputs(self):
        automaton = Toggle()
        assert not automaton.output_enabled("emit")
        automaton.apply("set")
        assert automaton.output_enabled("emit")


class TestSnapshots:
    def test_snapshot_restore_roundtrip(self):
        automaton = Toggle()
        automaton.apply("set")
        saved = automaton.snapshot()
        automaton.apply("emit")
        assert automaton.fired == 1
        automaton.restore(saved)
        assert automaton.armed
        assert automaton.fired == 0

    def test_snapshot_is_independent_copy(self):
        automaton = Toggle()
        saved = automaton.snapshot()
        automaton.apply("set")
        assert saved["armed"] is False


class TestScheduleHelpers:
    def test_run_chains(self):
        automaton = Toggle()
        automaton.run(["set", "emit", "set"])
        assert automaton.fired == 1
        assert automaton.armed

    def test_accepts_true_and_restores(self):
        automaton = Toggle()
        assert automaton.accepts(["set", "emit"])
        assert automaton.fired == 0

    def test_accepts_false(self):
        automaton = Toggle()
        assert not automaton.accepts(["emit"])

    def test_enabled_after(self):
        automaton = Toggle()
        assert automaton.enabled_after(["set"], "emit")
        assert not automaton.enabled_after(["set", "emit"], "emit")
        # Inputs are enabled after any schedule.
        assert automaton.enabled_after(["set", "emit"], "set")

    def test_enabled_after_preserves_state(self):
        automaton = Toggle()
        automaton.enabled_after(["set"], "emit")
        assert not automaton.armed


def test_sorted_actions_deterministic():
    assert sorted_actions({"b", "a", "c"}) == ["a", "b", "c"]
