"""Unit tests for automaton composition."""

import pytest

from repro.errors import CompositionError, NotEnabledError
from repro.ioa.automaton import Automaton
from repro.ioa.composition import Composition


class Producer(Automaton):
    """Emits 'msg' once."""

    state_attrs = ("sent",)

    def __init__(self, name="producer"):
        super().__init__(name)
        self.sent = False

    def is_input(self, action):
        return False

    def is_output(self, action):
        return action == "msg"

    def enabled_outputs(self):
        if not self.sent:
            yield "msg"

    def _apply(self, action):
        self.sent = True


class Consumer(Automaton):
    """Receives 'msg' then emits 'ack'."""

    state_attrs = ("received", "acked")

    def __init__(self, name="consumer"):
        super().__init__(name)
        self.received = 0
        self.acked = False

    def is_input(self, action):
        return action == "msg"

    def is_output(self, action):
        return action == "ack"

    def enabled_outputs(self):
        if self.received and not self.acked:
            yield "ack"

    def _apply(self, action):
        if action == "msg":
            self.received += 1
        else:
            self.acked = True


@pytest.fixture
def system():
    return Composition("sys", [Producer(), Consumer()])


class TestSignature:
    def test_shared_action_is_output(self, system):
        assert system.is_output("msg")
        assert not system.is_input("msg")

    def test_duplicate_names_rejected(self):
        with pytest.raises(CompositionError):
            Composition("sys", [Producer("p"), Producer("p")])

    def test_duplicate_output_owner_detected(self):
        system = Composition("sys", [Producer("p1"), Producer("p2")])
        with pytest.raises(CompositionError):
            system.apply("msg")


class TestSynchronisation:
    def test_step_reaches_all_participants(self, system):
        system.apply("msg")
        assert system.component("producer").sent
        assert system.component("consumer").received == 1

    def test_enabled_outputs_union(self, system):
        assert set(system.enabled_outputs()) == {"msg"}
        system.apply("msg")
        assert set(system.enabled_outputs()) == {"ack"}

    def test_output_requires_owner_enabled(self, system):
        with pytest.raises(NotEnabledError):
            system.apply("ack")

    def test_unknown_action_rejected(self, system):
        with pytest.raises(NotEnabledError):
            system.apply("nothing")

    def test_run_to_quiescence(self, system):
        system.apply("msg")
        system.apply("ack")
        assert list(system.enabled_outputs()) == []


class TestSnapshot:
    def test_snapshot_restores_all_components(self, system):
        saved = system.snapshot()
        system.apply("msg")
        system.apply("ack")
        system.restore(saved)
        assert not system.component("producer").sent
        assert system.component("consumer").received == 0
        assert set(system.enabled_outputs()) == {"msg"}


class TestProjectionLemma:
    """Lemma 1: appending an enabled component output keeps a schedule."""

    def test_projection_is_component_schedule(self, system):
        from repro.ioa.execution import project

        system.apply("msg")
        system.apply("ack")
        consumer = Consumer()
        assert consumer.accepts(project(["msg", "ack"], consumer))
