"""Tests for open-system (Poisson arrival) simulation mode."""

import pytest

from repro.adt import IntRegister
from repro.sim import (
    AccessOp,
    Block,
    Program,
    SimulationConfig,
    WorkloadConfig,
    make_store,
    make_workload,
    run_simulation,
)


def light_workload(count=20):
    config = WorkloadConfig(
        programs=count, objects=8, read_fraction=0.8, depth=1,
        accesses_per_block=2,
    )
    return make_workload(3, config), make_store(config)


class TestOpenSystem:
    def test_all_programs_still_commit(self):
        programs, store = light_workload()
        metrics = run_simulation(
            programs, store,
            SimulationConfig(mpl=4, policy="moss-rw", seed=1,
                             arrival_rate=0.5),
        )
        assert metrics.committed == 20

    def test_makespan_stretches_with_slow_arrivals(self):
        programs, store = light_workload()
        slow = run_simulation(
            programs, store,
            SimulationConfig(mpl=4, policy="moss-rw", seed=1,
                             arrival_rate=0.05),
        )
        fast = run_simulation(
            programs, store,
            SimulationConfig(mpl=4, policy="moss-rw", seed=1,
                             arrival_rate=5.0),
        )
        assert slow.makespan > fast.makespan

    def test_congestion_raises_response_time(self):
        """Past saturation, queueing dominates response time."""
        programs, store = light_workload(count=40)
        relaxed = run_simulation(
            programs, store,
            SimulationConfig(mpl=2, policy="moss-rw", seed=2,
                             arrival_rate=0.1),
        )
        swamped = run_simulation(
            programs, store,
            SimulationConfig(mpl=2, policy="moss-rw", seed=2,
                             arrival_rate=10.0),
        )
        assert swamped.mean_latency > relaxed.mean_latency

    def test_closed_mode_unchanged_by_default(self):
        programs, store = light_workload()
        config = SimulationConfig(mpl=4, policy="moss-rw", seed=1)
        assert config.arrival_rate is None
        metrics = run_simulation(programs, store, config)
        assert metrics.committed == 20

    def test_deterministic(self):
        programs, store = light_workload()
        config = SimulationConfig(
            mpl=4, policy="moss-rw", seed=7, arrival_rate=0.5
        )
        first = run_simulation(programs, store, config)
        second = run_simulation(programs, store, config)
        assert first.row() == second.row()
