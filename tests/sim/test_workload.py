"""Unit tests for workload generation."""

from repro.sim.workload import (
    AccessOp,
    Block,
    Program,
    WorkloadConfig,
    _zipf_weights,
    make_store,
    make_workload,
)


class TestZipf:
    def test_uniform_when_skew_zero(self):
        assert _zipf_weights(4, 0.0) == [1.0] * 4

    def test_skew_decreasing(self):
        weights = _zipf_weights(4, 1.0)
        assert weights == sorted(weights, reverse=True)
        assert weights[0] == 1.0


class TestStructures:
    def test_access_count_recursive(self):
        block = Block(
            steps=[
                AccessOp("r0", None),
                Block(steps=[AccessOp("r1", None), AccessOp("r2", None)]),
            ]
        )
        assert block.access_count() == 3
        assert Program(body=block).access_count() == 3


class TestGeneration:
    def test_reproducible(self):
        config = WorkloadConfig(programs=5)
        assert repr(make_workload(3, config)) == repr(make_workload(3, config))

    def test_different_seeds_differ(self):
        config = WorkloadConfig(programs=5)
        assert repr(make_workload(1, config)) != repr(make_workload(2, config))

    def test_program_count(self):
        config = WorkloadConfig(programs=7)
        assert len(make_workload(0, config)) == 7

    def test_depth_one_is_flat_accesses(self):
        config = WorkloadConfig(programs=3, depth=1, accesses_per_block=4)
        for program in make_workload(0, config):
            assert all(
                isinstance(step, AccessOp) for step in program.body.steps
            )
            assert program.access_count() == 4

    def test_depth_two_has_subblocks(self):
        config = WorkloadConfig(programs=3, depth=2, fanout=3)
        for program in make_workload(0, config):
            assert len(program.body.steps) == 3
            assert all(
                isinstance(step, Block) for step in program.body.steps
            )

    def test_read_fraction_extremes(self):
        all_reads = WorkloadConfig(programs=5, read_fraction=1.0)
        for program in make_workload(0, all_reads):
            for step in _leaves(program.body):
                assert step.operation.is_read
        all_writes = WorkloadConfig(programs=5, read_fraction=0.0)
        for program in make_workload(0, all_writes):
            for step in _leaves(program.body):
                assert not step.operation.is_read

    def test_top_level_never_fails(self):
        config = WorkloadConfig(programs=3, fail_prob=0.5, depth=2)
        for program in make_workload(0, config):
            assert program.body.fail_prob == 0.0
            for step in program.body.steps:
                if isinstance(step, Block):
                    assert step.fail_prob == 0.5

    def test_objects_within_store(self):
        config = WorkloadConfig(programs=10, objects=4)
        store_names = {spec.name for spec in make_store(config)}
        for program in make_workload(0, config):
            for leaf in _leaves(program.body):
                assert leaf.object_name in store_names


def _leaves(block):
    for step in block.steps:
        if isinstance(step, AccessOp):
            yield step
        else:
            yield from _leaves(step)


class TestMixedStores:
    def test_mixed_store_rotates_kinds(self):
        from repro.adt import BankAccount, Counter, IntRegister, SetObject

        config = WorkloadConfig(objects=8, object_kind="mixed")
        store = make_store(config)
        kinds = [type(spec) for spec in store]
        assert kinds[:4] == [IntRegister, Counter, BankAccount, SetObject]
        assert kinds[4:] == kinds[:4]

    def test_unknown_kind_rejected(self):
        config = WorkloadConfig(object_kind="blockchain")
        import pytest

        with pytest.raises(ValueError):
            make_store(config)

    def test_mixed_operations_match_object_kind(self):
        config = WorkloadConfig(
            programs=10, objects=8, object_kind="mixed", depth=1,
            accesses_per_block=4,
        )
        kind_ops = {
            0: {"read", "write", "add"},
            1: {"value", "increment"},
            2: {"balance", "deposit", "withdraw"},
            3: {"contains", "insert"},
        }
        for program in make_workload(0, config):
            for leaf in _leaves(program.body):
                index = int(leaf.object_name[1:])
                assert leaf.operation.kind in kind_ops[index % 4]

    def test_mixed_runs_commit(self):
        from repro.sim import SimulationConfig, run_simulation

        config = WorkloadConfig(
            programs=10, objects=8, object_kind="mixed"
        )
        programs = make_workload(2, config)
        metrics = run_simulation(
            programs, make_store(config),
            SimulationConfig(mpl=4, policy="moss-rw", seed=1),
        )
        assert metrics.committed == 10
