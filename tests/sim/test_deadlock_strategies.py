"""Focused tests for the three deadlock-handling strategies."""

import pytest

from repro.adt import IntRegister
from repro.sim import (
    AccessOp,
    Block,
    Program,
    SimulationConfig,
    run_simulation,
)


def crossing_programs(duration=5.0):
    """The canonical deadlock pair: (a then b) against (b then a)."""
    ab = Program(
        body=Block(
            steps=[
                AccessOp("a", IntRegister.add(1), duration=duration),
                AccessOp("b", IntRegister.add(1), duration=duration),
            ],
            parallel=False,
        )
    )
    ba = Program(
        body=Block(
            steps=[
                AccessOp("b", IntRegister.add(1), duration=duration),
                AccessOp("a", IntRegister.add(1), duration=duration),
            ],
            parallel=False,
        )
    )
    return [ab, ba]


def intra_tree_program():
    """One program whose parallel branches deadlock with each other."""
    return Program(
        body=Block(
            steps=[
                Block(
                    steps=[
                        AccessOp("a", IntRegister.add(1), duration=5.0),
                        AccessOp("b", IntRegister.add(1), duration=5.0),
                    ],
                    parallel=False,
                ),
                Block(
                    steps=[
                        AccessOp("b", IntRegister.add(1), duration=5.0),
                        AccessOp("a", IntRegister.add(1), duration=5.0),
                    ],
                    parallel=False,
                ),
            ],
            parallel=True,
        )
    )


STORE = lambda: [IntRegister("a"), IntRegister("b")]


class TestStrategies:
    @pytest.mark.parametrize(
        "strategy", ["wound-wait", "detect", "timeout"]
    )
    def test_cross_deadlock_resolved(self, strategy):
        metrics = run_simulation(
            crossing_programs(),
            STORE(),
            SimulationConfig(
                mpl=2, policy="moss-rw", seed=0, deadlock=strategy,
                lock_timeout=5.0,
            ),
        )
        assert metrics.committed == 2
        assert metrics.deadlock_aborts >= 1

    @pytest.mark.parametrize(
        "strategy", ["wound-wait", "detect", "timeout"]
    )
    def test_intra_tree_deadlock_resolved(self, strategy):
        metrics = run_simulation(
            [intra_tree_program()],
            STORE(),
            SimulationConfig(
                mpl=1, policy="moss-rw", seed=0, deadlock=strategy,
                lock_timeout=5.0,
            ),
        )
        assert metrics.committed == 1

    def test_timeout_latency_exceeds_timeout(self):
        """Timeout resolution cannot beat the configured wait."""
        metrics = run_simulation(
            crossing_programs(),
            STORE(),
            SimulationConfig(
                mpl=2, policy="moss-rw", seed=0, deadlock="timeout",
                lock_timeout=30.0,
            ),
        )
        assert metrics.committed == 2
        assert metrics.makespan > 30.0

    def test_wound_wait_oldest_never_restarts(self):
        """The first-admitted program wins every conflict it enters."""
        from repro.sim.runner import _Runner

        runner = _Runner(
            crossing_programs(),
            STORE(),
            SimulationConfig(
                mpl=2, policy="moss-rw", seed=0, deadlock="wound-wait"
            ),
        )
        runner.start()
        eldest = min(
            runner.by_top.values(), key=lambda run: run.admit_order
        )
        assert eldest.attempts == 1
        assert runner.metrics.committed == 2

    def test_unknown_strategy_parks_forever_is_avoided(self):
        """Unknown strategies fall through to detection-style parking,
        and the drain watchdog still finishes the workload."""
        metrics = run_simulation(
            crossing_programs(),
            STORE(),
            SimulationConfig(
                mpl=2, policy="moss-rw", seed=0, deadlock="detect"
            ),
        )
        assert metrics.committed == 2
