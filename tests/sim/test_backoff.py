"""Tests for the seeded exponential-backoff retry delays.

The satellite contract: with the default knobs
(``retry_backoff=1.0``, ``retry_jitter=0.0``) every run is
byte-for-byte identical to the old fixed ``retry_delay`` behaviour --
pinned here by monkeypatching the old constant-delay rule back in and
comparing full run digests.
"""

import hashlib

from repro.sim import (
    SimulationConfig,
    WorkloadConfig,
    make_store,
    make_workload,
    run_simulation,
)
from repro.sim.runner import _Runner

CONTENDED = WorkloadConfig(
    programs=16, objects=3, read_fraction=0.1
)


def run_digest(config):
    programs = make_workload(7, CONTENDED)
    metrics = run_simulation(programs, make_store(CONTENDED), config)
    hasher = hashlib.sha256()
    hasher.update(repr(metrics.row()).encode())
    hasher.update(repr(sorted(metrics.final_state.items())).encode())
    hasher.update(repr(metrics.latencies).encode())
    hasher.update(repr(metrics.wait_time).encode())
    return metrics, hasher.hexdigest()


class TestDefaultsAreByteForByte:
    def test_defaults_match_the_old_fixed_delay(self, monkeypatch):
        config = SimulationConfig(mpl=8, policy="moss-rw", seed=2)
        metrics, fresh = run_digest(config)
        # The workload must actually exercise the retry paths for the
        # comparison to mean anything.
        assert metrics.lock_denials > 0
        monkeypatch.setattr(
            _Runner,
            "_retry_delay",
            lambda self, attempt: self.config.retry_delay,
        )
        _, legacy = run_digest(config)
        assert fresh == legacy

    def test_runs_are_deterministic(self):
        config = SimulationConfig(
            mpl=8, policy="moss-rw", seed=2,
            retry_backoff=1.7, retry_jitter=0.4,
        )
        assert run_digest(config)[1] == run_digest(config)[1]


class TestKnobsChangeTheSchedule:
    def test_backoff_changes_the_schedule(self):
        base = SimulationConfig(mpl=8, policy="moss-rw", seed=2)
        backed_off = SimulationConfig(
            mpl=8, policy="moss-rw", seed=2, retry_backoff=3.0
        )
        assert run_digest(base)[1] != run_digest(backed_off)[1]

    def test_jitter_changes_the_schedule(self):
        base = SimulationConfig(mpl=8, policy="moss-rw", seed=2)
        jittered = SimulationConfig(
            mpl=8, policy="moss-rw", seed=2, retry_jitter=0.5
        )
        assert run_digest(base)[1] != run_digest(jittered)[1]

    def test_delay_growth_is_capped(self):
        config = SimulationConfig(
            mpl=2, policy="moss-rw", seed=0,
            retry_backoff=2.0, retry_max_delay=1.5,
        )
        runner = _Runner(
            make_workload(0, CONTENDED),
            make_store(CONTENDED),
            config,
        )
        delays = [runner._retry_delay(n) for n in range(12)]
        assert delays[0] == config.retry_delay
        assert delays == sorted(delays)
        assert max(delays) == config.retry_max_delay
