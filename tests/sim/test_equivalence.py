"""Cross-scheme equivalence against the serial oracle.

Over commutative workloads (register adds, counter bumps) any
serializable execution that commits every program must leave the store
in the same final state the one-at-a-time serial baseline produces.
Running the same seeded workload under every registered concurrent
scheme and comparing ``final_state`` is therefore an end-to-end
serializability check that needs no trace replay -- it covers MVTO,
whose runs the Moss-model conformance pipeline cannot judge.
"""

import pytest

from repro.sim import (
    SimulationConfig,
    WorkloadConfig,
    make_store,
    make_workload,
    run_simulation,
)

SCHEMES = ("moss-rw", "exclusive", "flat-2pl", "mvto")

WORKLOADS = {
    "registers": WorkloadConfig(
        programs=14, objects=4, read_fraction=0.4
    ),
    "counters": WorkloadConfig(
        programs=14, objects=4, read_fraction=0.3,
        object_kind="commutative",
    ),
    "hotspot": WorkloadConfig(
        programs=12, objects=2, read_fraction=0.1, zipf_skew=0.9
    ),
}


def final_state(workload, scheme, seed):
    programs = make_workload(seed, workload)
    metrics = run_simulation(
        programs,
        make_store(workload),
        SimulationConfig(mpl=6, policy=scheme, seed=seed),
    )
    assert metrics.committed == workload.programs
    assert metrics.final_state
    return metrics.final_state


@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("seed", [1, 5])
def test_scheme_matches_serial_oracle(name, scheme, seed):
    workload = WORKLOADS[name]
    oracle = final_state(workload, "serial", seed)
    observed = final_state(workload, scheme, seed)
    assert observed == oracle


def test_contention_actually_happened():
    """The equivalence above must not be vacuous: at least one scheme
    run on the hotspot workload sees denials or restarts."""
    workload = WORKLOADS["hotspot"]
    programs = make_workload(1, workload)
    metrics = run_simulation(
        programs,
        make_store(workload),
        SimulationConfig(mpl=6, policy="moss-rw", seed=1),
    )
    assert (
        metrics.lock_denials
        + metrics.program_restarts
        + metrics.subtree_retries
    ) > 0
