"""Unit tests for run metrics."""

import pytest

from repro.sim.metrics import RunMetrics, percentile


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 5.0

    def test_single_sample_for_every_fraction(self):
        for fraction in (0.0, 0.5, 0.95, 1.0):
            assert percentile([7.0], fraction) == 7.0

    def test_fraction_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)

    def test_is_the_canonical_obs_implementation(self):
        from repro.obs.metrics import percentile as obs_percentile

        assert percentile is obs_percentile


class TestRunMetrics:
    def test_throughput(self):
        metrics = RunMetrics(committed=10, makespan=5.0)
        assert metrics.throughput == 2.0

    def test_throughput_zero_makespan(self):
        assert RunMetrics(committed=10).throughput == 0.0

    def test_latency_stats(self):
        metrics = RunMetrics(latencies=[1.0, 3.0, 2.0])
        assert metrics.mean_latency == 2.0
        assert metrics.p50_latency == 2.0

    def test_wasted_fraction(self):
        metrics = RunMetrics(accesses_done=10, accesses_redone=4)
        assert metrics.wasted_access_fraction == 0.4
        assert RunMetrics().wasted_access_fraction == 0.0

    def test_row_is_flat(self):
        row = RunMetrics(policy="moss-rw", committed=1, makespan=2.0).row()
        assert row["policy"] == "moss-rw"
        assert set(row) >= {
            "throughput",
            "mean_latency",
            "p95_latency",
            "deadlock_aborts",
            "wasted_access_fraction",
        }

    def test_row_keys_are_stable(self):
        # Downstream sweep tables index these columns by name; the obs
        # refactor must not change them.
        assert list(RunMetrics().row()) == [
            "policy",
            "committed",
            "throughput",
            "mean_latency",
            "p95_latency",
            "makespan",
            "deadlock_aborts",
            "injected_aborts",
            "retries",
            "restarts",
            "denials",
            "wasted_access_fraction",
        ]

    def test_latencies_list_is_live_and_appendable(self):
        # The runner appends to .latencies directly; stats must follow.
        metrics = RunMetrics()
        metrics.latencies.append(4.0)
        metrics.latencies.append(2.0)
        assert metrics.mean_latency == 3.0
        assert metrics.latency_summary.count == 2

    def test_latency_summary_shares_percentile_math(self):
        metrics = RunMetrics(latencies=[3.0, 1.0, 2.0])
        assert metrics.p50_latency == percentile(metrics.latencies, 0.5)
        assert metrics.p95_latency == percentile(
            metrics.latencies, 0.95
        )

    def test_latency_histogram(self):
        metrics = RunMetrics(latencies=[0.5, 1.5, 300.0])
        histogram = metrics.latency_histogram(bounds=[1.0, 100.0])
        assert histogram.count == 3
        assert histogram.bucket_counts == [1, 1, 1]
