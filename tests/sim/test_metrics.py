"""Unit tests for run metrics."""

from repro.sim.metrics import RunMetrics, percentile


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 5.0


class TestRunMetrics:
    def test_throughput(self):
        metrics = RunMetrics(committed=10, makespan=5.0)
        assert metrics.throughput == 2.0

    def test_throughput_zero_makespan(self):
        assert RunMetrics(committed=10).throughput == 0.0

    def test_latency_stats(self):
        metrics = RunMetrics(latencies=[1.0, 3.0, 2.0])
        assert metrics.mean_latency == 2.0
        assert metrics.p50_latency == 2.0

    def test_wasted_fraction(self):
        metrics = RunMetrics(accesses_done=10, accesses_redone=4)
        assert metrics.wasted_access_fraction == 0.4
        assert RunMetrics().wasted_access_fraction == 0.0

    def test_row_is_flat(self):
        row = RunMetrics(policy="moss-rw", committed=1, makespan=2.0).row()
        assert row["policy"] == "moss-rw"
        assert set(row) >= {
            "throughput",
            "mean_latency",
            "p95_latency",
            "deadlock_aborts",
            "wasted_access_fraction",
        }
