"""Integration tests for the simulation runner."""

import pytest

from repro.adt import IntRegister
from repro.sim import (
    AccessOp,
    Block,
    Program,
    SimulationConfig,
    WorkloadConfig,
    make_store,
    make_workload,
    run_simulation,
)

POLICIES = (
    "moss-rw", "exclusive", "flat-2pl", "serial", "mvto", "semantic",
)


def simple_program(objects, read=True, duration=1.0):
    steps = [
        AccessOp(
            name,
            IntRegister.read() if read else IntRegister.add(1),
            duration=duration,
        )
        for name in objects
    ]
    return Program(body=Block(steps=steps, parallel=False))


class TestCompletion:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_all_programs_commit(self, policy):
        config = WorkloadConfig(programs=12, objects=6, read_fraction=0.6)
        programs = make_workload(0, config)
        metrics = run_simulation(
            programs,
            make_store(config),
            SimulationConfig(mpl=4, policy=policy, seed=1),
        )
        assert metrics.committed == 12
        assert metrics.makespan > 0
        assert len(metrics.latencies) == 12

    def test_store_state_reflects_commits(self):
        store = [IntRegister("r0")]
        programs = [simple_program(["r0"], read=False) for _ in range(5)]
        config = SimulationConfig(mpl=2, policy="moss-rw", seed=0)
        from repro.sim.runner import _Runner

        runner = _Runner(programs, store, config)
        runner.start()
        assert runner.metrics.committed == 5
        assert runner.engine.object_value("r0") == 5


class TestConcurrencyEffects:
    def test_serial_runs_one_at_a_time(self):
        programs = [
            simple_program(["r%d" % i], duration=10.0) for i in range(4)
        ]
        store = [IntRegister("r%d" % i) for i in range(4)]
        serial = run_simulation(
            programs, store, SimulationConfig(policy="serial", seed=0)
        )
        concurrent = run_simulation(
            programs, store,
            SimulationConfig(mpl=4, policy="moss-rw", seed=0),
        )
        # Disjoint objects: concurrency shortens the makespan ~4x.
        assert serial.makespan > concurrent.makespan * 2

    def test_readers_share_under_moss_but_not_exclusive(self):
        programs = [
            simple_program(["shared"], read=True, duration=10.0)
            for _ in range(4)
        ]
        store = [IntRegister("shared")]
        moss = run_simulation(
            programs, store,
            SimulationConfig(mpl=4, policy="moss-rw", seed=0),
        )
        exclusive = run_simulation(
            programs, store,
            SimulationConfig(mpl=4, policy="exclusive", seed=0),
        )
        assert moss.committed == exclusive.committed == 4
        assert moss.makespan < exclusive.makespan


class TestFailureInjection:
    def make_failing_programs(self, retries):
        block = Block(
            steps=[AccessOp("r0", IntRegister.add(1))],
            fail_prob=0.5,
            retries=retries,
        )
        return [
            Program(body=Block(steps=[block], parallel=False))
            for _ in range(10)
        ]

    def test_injected_aborts_counted(self):
        programs = self.make_failing_programs(retries=0)
        metrics = run_simulation(
            programs,
            [IntRegister("r0")],
            SimulationConfig(mpl=2, policy="moss-rw", seed=3),
        )
        assert metrics.committed == 10
        assert metrics.injected_aborts > 0
        # Injected subtransaction failures never escalate under Moss
        # (restarts can still come from wound-wait conflict resolution).
        assert metrics.program_restarts <= metrics.deadlock_aborts

    def test_retries_counted(self):
        programs = self.make_failing_programs(retries=3)
        metrics = run_simulation(
            programs,
            [IntRegister("r0")],
            SimulationConfig(mpl=2, policy="moss-rw", seed=3),
        )
        assert metrics.subtree_retries > 0

    def test_flat_policy_escalates_to_restarts(self):
        programs = self.make_failing_programs(retries=0)
        metrics = run_simulation(
            programs,
            [IntRegister("r0")],
            SimulationConfig(mpl=2, policy="flat-2pl", seed=3),
        )
        assert metrics.committed == 10
        assert metrics.program_restarts > 0


class TestDeadlocks:
    def test_cross_deadlock_resolved(self):
        """Two programs locking (a,b) and (b,a) must both finish."""
        ab = Program(
            body=Block(
                steps=[
                    AccessOp("a", IntRegister.add(1), duration=5.0),
                    AccessOp("b", IntRegister.add(1), duration=5.0),
                ],
                parallel=False,
            )
        )
        ba = Program(
            body=Block(
                steps=[
                    AccessOp("b", IntRegister.add(1), duration=5.0),
                    AccessOp("a", IntRegister.add(1), duration=5.0),
                ],
                parallel=False,
            )
        )
        metrics = run_simulation(
            [ab, ba],
            [IntRegister("a"), IntRegister("b")],
            SimulationConfig(mpl=2, policy="moss-rw", seed=0),
        )
        assert metrics.committed == 2


class TestDeterminism:
    def test_same_seed_same_metrics(self):
        config = WorkloadConfig(programs=10, objects=4, zipf_skew=0.5)
        programs = make_workload(5, config)
        first = run_simulation(
            programs, make_store(config),
            SimulationConfig(mpl=4, policy="moss-rw", seed=9),
        )
        second = run_simulation(
            programs, make_store(config),
            SimulationConfig(mpl=4, policy="moss-rw", seed=9),
        )
        assert first.row() == second.row()
