"""Unit tests for the discrete-event simulator."""

from repro.sim.des import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.at(5.0, lambda: log.append("b"))
        sim.at(1.0, lambda: log.append("a"))
        sim.run()
        assert log == ["a", "b"]
        assert sim.now == 5.0

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: log.append(1))
        sim.at(1.0, lambda: log.append(2))
        sim.run()
        assert log == [1, 2]

    def test_after_is_relative(self):
        sim = Simulator()
        times = []
        sim.at(3.0, lambda: sim.after(2.0, lambda: times.append(sim.now)))
        sim.run()
        assert times == [5.0]

    def test_past_events_clamped_to_now(self):
        sim = Simulator()
        sim.at(4.0, lambda: None)
        sim.run()
        fired = []
        sim.at(1.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [4.0]

    def test_callbacks_can_chain(self):
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 5:
                sim.after(1.0, tick)

        sim.after(1.0, tick)
        sim.run()
        assert count[0] == 5
        assert sim.now == 5.0

    def test_until_bound(self):
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: log.append("early"))
        sim.at(10.0, lambda: log.append("late"))
        sim.run(until=5.0)
        assert log == ["early"]
        assert sim.pending() == 1

    def test_max_events_bound(self):
        sim = Simulator()
        for index in range(10):
            sim.at(float(index), lambda: None)
        sim.run(max_events=3)
        assert sim.events_run == 3
        assert sim.pending() == 7
