"""Serializer case-analysis edge tests (Lemma 33's seven cases)."""

import pytest

from repro.core.equieffective import write_equivalent
from repro.core.events import (
    Abort,
    Commit,
    Create,
    InformAbortAt,
    InformCommitAt,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
)
from repro.core.names import ROOT
from repro.core.serializer import Serializer
from repro.core.visibility import visible
from repro.errors import SerializationFailure


@pytest.fixture
def serializer(nested_system_type):
    return Serializer(nested_system_type)


def drive(serializer, events):
    serializer.extend_all(events)
    return serializer


BOOT = [
    Create(ROOT),
    RequestCreate((0,)),
    Create((0,)),
    RequestCreate((0, 0)),
    Create((0, 0)),
]


class TestCases:
    def test_case6_report_commit_appended(self, serializer):
        """A REPORT_COMMIT(T') joins the parent's serial schedule."""
        events = BOOT + [
            RequestCommit((0, 0), "v"),
            Commit((0, 0)),
            ReportCommit((0, 0), "v"),
        ]
        drive(serializer, events)
        beta = serializer.serial_schedule_for((0,))
        assert beta[-1] == ReportCommit((0, 0), "v")

    def test_case7_report_abort_appended(self, serializer):
        events = BOOT + [
            Abort((0, 0)),
            ReportAbort((0, 0)),
        ]
        drive(serializer, events)
        beta = serializer.serial_schedule_for((0,))
        assert beta[-1] == ReportAbort((0, 0))
        # The aborted child's CREATE is gone from the parent's view.
        assert Create((0, 0)) not in beta

    def test_informs_never_enter_serial_schedules(self, serializer):
        events = BOOT + [
            InformCommitAt("x", (0, 0)),
            InformAbortAt("x", (1,)),
        ]
        drive(serializer, events)
        for name in serializer.tracked():
            beta = serializer.serial_schedule_for(name)
            assert all(
                not isinstance(event, (InformCommitAt, InformAbortAt))
                for event in beta
            )

    def test_multilevel_commit_chain(self, serializer, nested_system_type):
        """Commits propagating through two levels make grandchild events
        visible at the root."""
        access = (0, 0, 0)   # IntRegister.add access under (0,0)
        events = BOOT + [
            RequestCreate(access),
            Create(access),
            RequestCommit(access, 1),
            Commit(access),
            RequestCommit((0, 0), "mid"),
            Commit((0, 0)),
            RequestCommit((0,), "top"),
            Commit((0,)),
        ]
        drive(serializer, events)
        beta = serializer.serial_schedule_for(ROOT)
        assert RequestCommit(access, 1) in beta
        assert Commit((0,)) in beta
        assert write_equivalent(
            nested_system_type, visible(tuple(events), ROOT), beta
        )

    def test_orphan_subtree_dropped_midstream(self, serializer):
        """After ABORT(T'), events of the doomed subtree no longer touch
        any tracked schedule, and the subtree is untracked."""
        events = BOOT + [Abort((0,))]
        drive(serializer, events)
        assert (0,) not in serializer.tracked()
        assert (0, 0) not in serializer.tracked()
        with pytest.raises(SerializationFailure):
            serializer.serial_schedule_for((0, 0))
        # Late events of the orphan leave the root's schedule alone.
        before = serializer.serial_schedule_for(ROOT)
        serializer.extend(RequestCommit((0, 0), "zombie"))
        assert serializer.serial_schedule_for(ROOT) == before

    def test_sibling_commit_does_not_leak_uncommitted_branch(
        self, serializer
    ):
        """Case 4 merge: only the committed child's events transfer."""
        events = BOOT + [
            RequestCreate((0, 1)),
            Create((0, 1)),
            RequestCommit((0, 1), "fast"),
            Commit((0, 1)),
        ]
        drive(serializer, events)
        beta = serializer.serial_schedule_for((0,))
        assert Create((0, 1)) in beta
        # The still-live sibling (0,0) has not committed: invisible.
        assert Create((0, 0)) not in beta
        # But (0,0) keeps its own view of itself.
        own = serializer.serial_schedule_for((0, 0))
        assert Create((0, 0)) in own

    def test_commit_merge_shares_prefix_with_parent(self, serializer):
        events = BOOT + [
            RequestCommit((0, 0), "v"),
            Commit((0, 0)),
        ]
        drive(serializer, events)
        parent = serializer.serial_schedule_for((0,))
        # The parent's schedule embeds the child's committed run and ends
        # with the COMMIT itself.
        assert parent[-1] == Commit((0, 0))
        assert RequestCommit((0, 0), "v") in parent

    def test_alpha_recorded_verbatim(self, serializer):
        events = BOOT + [InformCommitAt("x", (0, 0))]
        drive(serializer, events)
        assert serializer.alpha == events
