"""Unit tests for schedule rendering helpers."""

from repro.core.events import (
    Commit,
    Create,
    InformCommitAt,
    RequestCommit,
    RequestCreate,
)
from repro.core.format import (
    format_event,
    format_schedule,
    format_swimlanes,
    summarize_schedule,
)
from repro.core.names import ROOT


class TestFormatEvent:
    def test_plain_event(self):
        assert format_event(Create((0,))) == "CREATE(T0.0)"

    def test_access_annotated_with_operation(self, tiny_system_type):
        text = format_event(Create((0, 0)), tiny_system_type)
        assert "CREATE(T0.0.0)" in text
        assert "{x write(5)[w]}" in text

    def test_non_access_unannotated(self, tiny_system_type):
        assert format_event(Create((0,)), tiny_system_type) == (
            "CREATE(T0.0)"
        )


class TestFormatSchedule:
    def test_indentation_tracks_depth(self):
        alpha = [Create(ROOT), Create((0,)), Create((0, 0))]
        lines = format_schedule(alpha, numbered=False).splitlines()
        assert lines[0].startswith("CREATE(T0)")
        assert lines[1].startswith("  CREATE")
        assert lines[2].startswith("    CREATE")

    def test_numbering(self):
        alpha = [Create(ROOT), Create((0,))]
        lines = format_schedule(alpha).splitlines()
        assert lines[0].startswith("  0  ")
        assert lines[1].startswith("  1  ")

    def test_informs_at_margin(self):
        alpha = [InformCommitAt("x", (0,))]
        line = format_schedule(alpha, numbered=False)
        assert line.startswith("INFORM_COMMIT")

    def test_empty_schedule(self):
        assert format_schedule([]) == ""


class TestSwimlanes:
    def test_one_lane_per_transaction(self):
        alpha = [
            Create(ROOT),
            RequestCreate((0,)),
            Create((0,)),
            RequestCommit((0,), "v"),
            Commit((0,)),
        ]
        text = format_swimlanes(alpha)
        assert text.count("T0\n") == 1
        assert "\nT0.0\n" in text
        # The root's lane includes its child's return operation.
        root_block = text.split("\nT0.0\n")[0]
        assert "COMMIT(T0.0)" in root_block

    def test_informs_excluded(self):
        text = format_swimlanes([InformCommitAt("x", (0,))])
        assert text == ""


class TestSummary:
    def test_counts(self):
        alpha = [Create(ROOT), Create((0,)), Commit((0,))]
        summary = summarize_schedule(alpha)
        assert summary["Create"] == 2
        assert summary["Commit"] == 1
        assert summary["total"] == 3
