"""Unit tests for the serial-correctness checker (Theorem 34)."""

import pytest

from repro.core.correctness import (
    check_schedule,
    check_serial_correctness,
    project_transaction_automaton,
    replay_serial,
)
from repro.core.events import (
    Abort,
    Commit,
    Create,
    ReportCommit,
    RequestCommit,
    RequestCreate,
)
from repro.core.names import ROOT
from repro.core.systems import RWLockingSystem, SerialSystem
from repro.ioa.explorer import random_schedules


class TestProjection:
    def test_automaton_projection(self):
        alpha = (
            Create((0,)),
            RequestCreate((0, 0)),
            Commit((0, 0)),          # return op: not in automaton signature
            ReportCommit((0, 0), 1),
            RequestCommit((0,), "v"),
        )
        projected = project_transaction_automaton(alpha, (0,))
        assert Commit((0, 0)) not in projected
        assert ReportCommit((0, 0), 1) in projected
        assert len(projected) == 4


class TestReplay:
    def test_replay_accepts_serial_schedule(self, tiny_system_type):
        from repro.ioa.explorer import random_schedule
        import random

        serial = SerialSystem(tiny_system_type)
        alpha = random_schedule(serial, 200, random.Random(5))
        assert replay_serial(serial, alpha) is None

    def test_replay_rejects_non_serial(self, tiny_system_type):
        serial = SerialSystem(tiny_system_type)
        # CREATE without REQUEST_CREATE is never serial.
        rejection = replay_serial(serial, (Create((0,)),))
        assert rejection is not None
        assert "rejected" in rejection


class TestTheorem34:
    def test_random_schedules_serially_correct(self, nested_system_type):
        system = RWLockingSystem(nested_system_type)
        for alpha in random_schedules(system, 10, 300, seed=31):
            report = check_serial_correctness(system, alpha)
            assert report.ok, [
                (item.transaction, item.failures)
                for item in report.failed()
            ]
            assert report.well_formed

    def test_root_always_checked(self, tiny_system_type):
        """Corollary 35: serial correctness at T0."""
        system = RWLockingSystem(tiny_system_type)
        for alpha in random_schedules(system, 5, 200, seed=33):
            if Create(ROOT) not in alpha:
                continue
            report = check_serial_correctness(system, alpha)
            checked = {item.transaction for item in report.reports}
            assert ROOT in checked

    def test_orphans_not_checked(self, tiny_system_type):
        system = RWLockingSystem(tiny_system_type)
        for alpha in random_schedules(system, 20, 200, seed=35):
            aborted = {
                event.transaction
                for event in alpha
                if isinstance(event, Abort)
            }
            if not aborted:
                continue
            report = check_serial_correctness(system, alpha)
            for item in report.reports:
                assert item.transaction not in aborted
            break

    def test_accesses_not_checked(self, nested_system_type):
        system = RWLockingSystem(nested_system_type)
        alpha = next(iter(random_schedules(system, 1, 300, seed=37)))
        report = check_serial_correctness(system, alpha)
        for item in report.reports:
            assert not nested_system_type.is_access(item.transaction)

    def test_corrupted_visible_event_detected(self, tiny_system_type):
        """The oracle must reject values the serial system cannot produce."""
        system = RWLockingSystem(tiny_system_type, propose_aborts=False)
        for alpha in random_schedules(system, 30, 300, seed=39):
            mutated = list(alpha)
            target = None
            for index, event in enumerate(mutated):
                if (
                    isinstance(event, RequestCommit)
                    and event.transaction == (0, 0)
                ):
                    target = index
                    break
            if target is None:
                continue
            mutated[target] = RequestCommit((0, 0), "corrupted")
            from repro.core.visibility import visible

            if mutated[target] not in visible(tuple(mutated), ROOT):
                continue
            report = check_serial_correctness(system, tuple(mutated))
            assert not report.ok
            return
        pytest.fail("never produced a checkable corrupted schedule")

    def test_report_structure(self, tiny_system_type):
        system = RWLockingSystem(tiny_system_type)
        alpha = next(iter(random_schedules(system, 1, 200, seed=41)))
        report = check_serial_correctness(system, alpha)
        assert bool(report) == report.ok
        for item in report.reports:
            assert bool(item) == item.ok
            if item.ok:
                assert item.failures == []

    def test_explicit_transaction_list(self, tiny_system_type):
        system = RWLockingSystem(tiny_system_type)
        alpha = next(iter(random_schedules(system, 1, 200, seed=43)))
        report = check_schedule(
            tiny_system_type, alpha, transactions=[ROOT]
        )
        assert [item.transaction for item in report.reports] == [ROOT]
