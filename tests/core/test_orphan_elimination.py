"""Tests for eager orphan elimination (the §3.5 "intricate scheduler")."""

import pytest

from repro.checking.anomalies import (
    find_register_anomalies,
    orphan_anomaly_witness,
    orphan_demo_system_type,
)
from repro.core.correctness import check_serial_correctness
from repro.core.events import Abort, Create, InformAbortAt, RequestCommit
from repro.core.names import ROOT
from repro.core.orphan_elimination import (
    EagerGenericScheduler,
    OrphanFreeRWLockingSystem,
    QuiescentRWObject,
)
from repro.core.systems import RWLockingSystem
from repro.core.visibility import is_orphan
from repro.errors import NotEnabledError
from repro.ioa.explorer import random_schedules


class TestEagerScheduler:
    def test_orphan_create_suppressed(self, tiny_system_type):
        scheduler = EagerGenericScheduler(tiny_system_type)
        scheduler.apply(Create(ROOT))
        from repro.core.events import RequestCreate

        scheduler.apply(RequestCreate((0,)))
        scheduler.apply(Create((0,)))
        scheduler.apply(RequestCreate((0, 0)))
        scheduler.apply(Abort((0,)))
        # The plain scheduler would still create the orphaned access.
        assert not scheduler.output_enabled(Create((0, 0)))
        assert Create((0, 0)) not in set(scheduler.enabled_outputs())

    def test_non_orphans_unaffected(self, tiny_system_type):
        from repro.core.events import RequestCreate

        scheduler = EagerGenericScheduler(tiny_system_type)
        scheduler.apply(Create(ROOT))
        scheduler.apply(RequestCreate((1,)))
        assert scheduler.output_enabled(Create((1,)))


class TestQuiescentObject:
    def test_pending_access_dropped_on_abort(self):
        system_type = orphan_demo_system_type()
        mx = QuiescentRWObject(system_type, "x")
        mx.apply(Create((0, 0, 0)))
        mx.apply(InformAbortAt("x", (0,)))
        # The pending read can no longer respond.
        assert all(
            action.transaction != (0, 0, 0)
            for action in mx.enabled_outputs()
        )

    def test_responded_access_bookkeeping_kept(self):
        system_type = orphan_demo_system_type()
        mx = QuiescentRWObject(system_type, "x")
        mx.apply(Create((0, 0, 0)))
        action = next(iter(mx.enabled_outputs()))
        mx.apply(action)
        mx.apply(InformAbortAt("x", (0,)))
        # Already-run accesses stay recorded (no double response later).
        assert (0, 0, 0) in mx.run


class TestOrphanFreedom:
    def test_witness_script_unschedulable(self):
        """The E15 anomaly script is rejected by the eliminated system:
        the orphan's second read can never be created."""
        witness = orphan_anomaly_witness()
        system = OrphanFreeRWLockingSystem(witness.system_type)
        with pytest.raises(NotEnabledError):
            for event in witness.schedule:
                system.apply(event)

    def test_random_runs_are_orphan_anomaly_free(self, nested_system_type):
        plain_anomalies = 0
        eliminated_anomalies = 0
        for system, bucket in (
            (RWLockingSystem(nested_system_type), "plain"),
            (OrphanFreeRWLockingSystem(nested_system_type), "eager"),
        ):
            count = 0
            for alpha in random_schedules(system, 15, 300, seed=131):
                for name in nested_system_type.internal_transactions():
                    count += len(
                        find_register_anomalies(
                            nested_system_type, alpha, name
                        )
                    )
            if bucket == "plain":
                plain_anomalies = count
            else:
                eliminated_anomalies = count
        assert eliminated_anomalies == 0

    def test_theorem34_still_holds(self, nested_system_type):
        """Sub-automata stay serially correct for non-orphans."""
        system = OrphanFreeRWLockingSystem(nested_system_type)
        for alpha in random_schedules(system, 6, 300, seed=133):
            report = check_serial_correctness(system, alpha)
            assert report.ok

    def test_schedules_are_plain_system_schedules(self, tiny_system_type):
        """Sub-automaton property: everything the eliminated system does,
        the plain system accepts."""
        eliminated = OrphanFreeRWLockingSystem(tiny_system_type)
        plain = RWLockingSystem(tiny_system_type)
        for alpha in random_schedules(eliminated, 8, 200, seed=137):
            replay = plain.fresh()
            for event in alpha:
                replay.apply(event)

    def test_fresh_preserves_variant(self, tiny_system_type):
        system = OrphanFreeRWLockingSystem(tiny_system_type)
        clone = system.fresh()
        assert isinstance(clone, OrphanFreeRWLockingSystem)
        assert isinstance(clone.scheduler, EagerGenericScheduler)
        assert isinstance(clone.locking_object("x"), QuiescentRWObject)
