"""Unit tests for serial and R/W Locking system compositions."""

import random

import pytest

from repro.core.events import Abort, Commit, Create
from repro.core.names import ROOT
from repro.core.systems import RWLockingSystem, SerialSystem
from repro.core.visibility import live_transactions
from repro.core.wellformed import is_well_formed
from repro.ioa.explorer import random_schedule, random_schedules


class TestSerialSystem:
    def test_composition_has_all_components(self, nested_system_type):
        system = SerialSystem(nested_system_type)
        names = {component.name for component in system.components}
        assert "serial-scheduler" in names
        assert "obj:x" in names
        assert "txn:T0" in names

    def test_runs_to_completion(self, tiny_system_type, rng):
        system = SerialSystem(tiny_system_type, abort_free=True)
        alpha = random_schedule(system, 200, rng)
        # Both top-levels commit, then the root commits its request.
        assert Commit((0,)) in alpha
        assert Commit((1,)) in alpha

    def test_schedules_are_well_formed(self, nested_system_type, rng):
        """Lemma 5."""
        system = SerialSystem(nested_system_type)
        for alpha in random_schedules(system, 10, 300, seed=3):
            assert is_well_formed(nested_system_type, alpha)

    def test_lemma6_only_related_transactions_live(
        self, nested_system_type, rng
    ):
        """Lemma 6: live transactions form an ancestor chain, at every
        prefix of every serial schedule."""
        system = SerialSystem(nested_system_type)
        for alpha in random_schedules(system, 5, 300, seed=5):
            prefix = []
            for event in alpha:
                prefix.append(event)
                live = live_transactions(prefix)
                for a in live:
                    for b in live:
                        assert (
                            a[: len(b)] == b or b[: len(a)] == a
                        ), "unrelated live transactions %r %r" % (a, b)

    def test_fresh_is_initial(self, tiny_system_type, rng):
        system = SerialSystem(tiny_system_type)
        random_schedule(system, 50, rng)
        # random_schedule restores; drive it for real now.
        system.apply(Create(ROOT))
        clone = system.fresh()
        assert list(clone.enabled_outputs()) == [Create(ROOT)]


class TestRWLockingSystem:
    def test_composition_has_all_components(self, nested_system_type):
        system = RWLockingSystem(nested_system_type)
        names = {component.name for component in system.components}
        assert "generic-scheduler" in names
        assert "M(x)" in names
        assert "txn:T0" in names

    def test_schedules_are_well_formed(self, nested_system_type):
        """Lemma 26."""
        system = RWLockingSystem(nested_system_type)
        for alpha in random_schedules(system, 10, 300, seed=7):
            assert is_well_formed(nested_system_type, alpha, locking=True)

    def test_siblings_can_be_concurrently_live(self, tiny_system_type):
        """Unlike serial systems, unrelated transactions may overlap."""
        system = RWLockingSystem(tiny_system_type, propose_aborts=False)
        overlap_seen = False
        for alpha in random_schedules(system, 20, 200, seed=11):
            prefix = []
            for event in alpha:
                prefix.append(event)
                live = live_transactions(prefix)
                if (0,) in live and (1,) in live:
                    overlap_seen = True
        assert overlap_seen

    def test_abort_free_run_commits_everything_without_cycles(
        self, tiny_system_type
    ):
        """With acyclic contention (one access per top-level), an
        abort-free run always completes."""
        system = RWLockingSystem(tiny_system_type, propose_aborts=False)
        alpha = random_schedule(system, 2000, random.Random(1))
        aborts = [event for event in alpha if isinstance(event, Abort)]
        assert aborts == []
        for top in tiny_system_type.children(ROOT):
            assert Commit(top) in alpha

    def test_abort_free_contention_can_wedge(self, nested_system_type):
        """Moss' algorithm has no deadlock resolution of its own: with
        aborts disabled, cyclically contending subtrees can block each
        other forever (the generic scheduler's abort power -- or an
        external detector, as in repro.engine -- is the way out)."""
        system = RWLockingSystem(nested_system_type, propose_aborts=False)
        alpha = random_schedule(system, 2000, random.Random(1))
        replay = system.fresh()
        for event in alpha:
            replay.apply(event)
        committed_tops = sum(
            1
            for top in nested_system_type.children(ROOT)
            if Commit(top) in alpha
        )
        # The run ended (nothing enabled) without all tops committing.
        assert list(replay.enabled_outputs()) == []
        assert committed_tops < len(nested_system_type.children(ROOT))

    def test_aborts_occur_when_proposed(self, nested_system_type):
        system = RWLockingSystem(nested_system_type, propose_aborts=True)
        seen_abort = False
        for alpha in random_schedules(system, 10, 200, seed=13):
            if any(isinstance(event, Abort) for event in alpha):
                seen_abort = True
                break
        assert seen_abort

    def test_locking_object_accessor(self, tiny_system_type):
        system = RWLockingSystem(tiny_system_type)
        assert system.locking_object("x").object_name == "x"
