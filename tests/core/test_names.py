"""Unit tests for transaction name trees and system types."""

import pytest
from hypothesis import given, strategies as st

from repro.adt import IntRegister
from repro.core.names import (
    ROOT,
    SystemTypeBuilder,
    ancestors,
    are_siblings,
    chain_between,
    is_ancestor,
    is_descendant,
    is_proper_ancestor,
    is_proper_descendant,
    lca,
    parent,
    pretty_name,
    proper_ancestors,
)
from repro.errors import SystemTypeError

names = st.tuples(*([st.integers(0, 3)] * 0)) | st.lists(
    st.integers(0, 3), max_size=5
).map(tuple)


class TestTreeFunctions:
    def test_parent_of_root_is_none(self):
        assert parent(ROOT) is None

    def test_parent_strips_last_component(self):
        assert parent((1, 2, 3)) == (1, 2)

    def test_every_name_is_own_ancestor(self):
        assert is_ancestor((1, 2), (1, 2))
        assert is_descendant((1, 2), (1, 2))

    def test_proper_relations_exclude_self(self):
        assert not is_proper_ancestor((1,), (1,))
        assert not is_proper_descendant((1,), (1,))
        assert is_proper_ancestor((1,), (1, 0))
        assert is_proper_descendant((1, 0), (1,))

    def test_root_is_universal_ancestor(self):
        assert is_ancestor(ROOT, (4, 5, 6))

    def test_unrelated_names(self):
        assert not is_ancestor((1,), (2, 1))
        assert not is_descendant((1,), (2, 1))

    def test_ancestors_walks_to_root(self):
        assert list(ancestors((1, 2))) == [(1, 2), (1,), ()]

    def test_proper_ancestors(self):
        assert list(proper_ancestors((1, 2))) == [(1,), ()]

    def test_lca(self):
        assert lca((1, 2, 3), (1, 2, 5)) == (1, 2)
        assert lca((1,), (2,)) == ROOT
        assert lca((1, 2), (1, 2, 9)) == (1, 2)

    def test_siblings(self):
        assert are_siblings((1, 2), (1, 3))
        assert not are_siblings((1, 2), (1, 2))
        assert not are_siblings((1, 2), (2, 2))
        assert not are_siblings(ROOT, ROOT)

    def test_chain_between(self):
        assert list(chain_between((1, 2, 3), (1,))) == [(1, 2, 3), (1, 2)]
        assert list(chain_between((1,), (1,))) == []

    def test_chain_between_requires_ancestor(self):
        with pytest.raises(SystemTypeError):
            list(chain_between((1,), (2,)))

    def test_pretty_name(self):
        assert pretty_name(ROOT) == "T0"
        assert pretty_name((0, 2)) == "T0.0.2"


@given(names, names)
def test_lca_is_common_ancestor(a, b):
    common = lca(a, b)
    assert is_ancestor(common, a)
    assert is_ancestor(common, b)


@given(names, names)
def test_lca_is_least(a, b):
    common = lca(a, b)
    deeper = common + (a + (0,))[len(common):][:1]
    if is_ancestor(deeper, a) and is_ancestor(deeper, b):
        assert deeper == common


@given(names)
def test_ancestor_chain_ends_at_root(name):
    chain = list(ancestors(name))
    assert chain[0] == name
    assert chain[-1] == ROOT
    assert len(chain) == len(name) + 1


class TestSystemTypeBuilder:
    def test_build_small_tree(self, tiny_system_type):
        assert tiny_system_type.size() == 5
        assert tiny_system_type.children(ROOT) == ((0,), (1,))

    def test_access_classification(self, tiny_system_type):
        writer = (0, 0)
        reader = (1, 0)
        assert tiny_system_type.is_access(writer)
        assert not tiny_system_type.is_read_access(writer)
        assert tiny_system_type.is_read_access(reader)
        assert tiny_system_type.object_of(writer) == "x"

    def test_internal_transactions(self, tiny_system_type):
        internals = set(tiny_system_type.internal_transactions())
        assert internals == {ROOT, (0,), (1,)}

    def test_accesses_partitioned_by_object(self, nested_system_type):
        for object_name in nested_system_type.object_names():
            for access in nested_system_type.accesses_of(object_name):
                assert nested_system_type.object_of(access) == object_name

    def test_all_accesses_covers_partition(self, nested_system_type):
        by_object = set()
        for object_name in nested_system_type.object_names():
            by_object.update(nested_system_type.accesses_of(object_name))
        assert by_object == set(nested_system_type.all_accesses())

    def test_contains(self, tiny_system_type):
        assert tiny_system_type.contains(ROOT)
        assert tiny_system_type.contains((0, 0))
        assert not tiny_system_type.contains((7,))

    def test_duplicate_object_rejected(self):
        builder = SystemTypeBuilder()
        builder.add_object(IntRegister("x"))
        with pytest.raises(SystemTypeError):
            builder.add_object(IntRegister("x"))

    def test_access_to_unknown_object_rejected(self):
        builder = SystemTypeBuilder()
        with pytest.raises(SystemTypeError):
            builder.add_access(ROOT, "ghost", IntRegister.read())

    def test_children_under_access_rejected(self):
        builder = SystemTypeBuilder()
        builder.add_object(IntRegister("x"))
        access = builder.add_access(ROOT, "x", IntRegister.read())
        with pytest.raises(SystemTypeError):
            builder.add_child(access)

    def test_operation_of_non_access_rejected(self, tiny_system_type):
        with pytest.raises(SystemTypeError):
            tiny_system_type.operation_of((0,))

    def test_transactions_preorder_root_first(self, nested_system_type):
        order = list(nested_system_type.transactions())
        assert order[0] == ROOT
        seen = set()
        for name in order:
            if name != ROOT:
                assert parent(name) in seen
            seen.add(name)
