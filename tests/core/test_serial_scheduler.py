"""Unit tests for the serial scheduler (Section 3.3)."""

import pytest

from repro.core.events import (
    Abort,
    Commit,
    Create,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
)
from repro.core.names import ROOT
from repro.core.serial_scheduler import SerialScheduler
from repro.errors import NotEnabledError


@pytest.fixture
def scheduler(tiny_system_type):
    return SerialScheduler(tiny_system_type)


class TestInitialState:
    def test_only_root_create_enabled(self, scheduler):
        assert list(scheduler.enabled_outputs()) == [Create(ROOT)]

    def test_root_never_aborts(self, scheduler):
        assert not scheduler.output_enabled(Abort(ROOT))


class TestCreation:
    def test_create_requires_request(self, scheduler):
        scheduler.apply(Create(ROOT))
        assert not scheduler.output_enabled(Create((0,)))
        scheduler.apply(RequestCreate((0,)))
        assert scheduler.output_enabled(Create((0,)))

    def test_no_double_create(self, scheduler):
        scheduler.apply(Create(ROOT))
        scheduler.apply(RequestCreate((0,)))
        scheduler.apply(Create((0,)))
        assert not scheduler.output_enabled(Create((0,)))

    def test_siblings_run_sequentially(self, scheduler):
        """The defining property: no sibling created while one is live."""
        scheduler.apply(Create(ROOT))
        scheduler.apply(RequestCreate((0,)))
        scheduler.apply(RequestCreate((1,)))
        scheduler.apply(Create((0,)))
        # (1,) must wait for (0,) to return.
        assert not scheduler.output_enabled(Create((1,)))
        scheduler.apply(RequestCommit((0,), "v"))
        scheduler.apply(Commit((0,)))
        assert scheduler.output_enabled(Create((1,)))


class TestCommit:
    def prepare(self, scheduler):
        scheduler.apply(Create(ROOT))
        scheduler.apply(RequestCreate((0,)))
        scheduler.apply(Create((0,)))

    def test_commit_requires_request(self, scheduler):
        self.prepare(scheduler)
        assert not scheduler.output_enabled(Commit((0,)))
        scheduler.apply(RequestCommit((0,), "v"))
        assert scheduler.output_enabled(Commit((0,)))

    def test_commit_waits_for_children(self, scheduler):
        self.prepare(scheduler)
        scheduler.apply(RequestCreate((0, 0)))
        scheduler.apply(RequestCommit((0,), "v"))
        # Child (0,0) was requested but has not returned.
        assert not scheduler.output_enabled(Commit((0,)))
        scheduler.apply(Create((0, 0)))
        scheduler.apply(RequestCommit((0, 0), 5))
        scheduler.apply(Commit((0, 0)))
        assert scheduler.output_enabled(Commit((0,)))

    def test_no_double_commit(self, scheduler):
        self.prepare(scheduler)
        scheduler.apply(RequestCommit((0,), "v"))
        scheduler.apply(Commit((0,)))
        assert not scheduler.output_enabled(Commit((0,)))


class TestAbort:
    def test_abort_only_before_create(self, scheduler):
        """The serial scheduler's ABORT means "was never created"."""
        scheduler.apply(Create(ROOT))
        scheduler.apply(RequestCreate((0,)))
        assert scheduler.output_enabled(Abort((0,)))
        scheduler.apply(Create((0,)))
        assert not scheduler.output_enabled(Abort((0,)))

    def test_abort_waits_for_live_siblings(self, scheduler):
        scheduler.apply(Create(ROOT))
        scheduler.apply(RequestCreate((0,)))
        scheduler.apply(RequestCreate((1,)))
        scheduler.apply(Create((0,)))
        assert not scheduler.output_enabled(Abort((1,)))

    def test_abort_free_flag(self, tiny_system_type):
        scheduler = SerialScheduler(tiny_system_type, abort_free=True)
        scheduler.apply(Create(ROOT))
        scheduler.apply(RequestCreate((0,)))
        assert not scheduler.output_enabled(Abort((0,)))
        assert Abort((0,)) not in set(scheduler.enabled_outputs())


class TestReports:
    def finish_one(self, scheduler):
        scheduler.apply(Create(ROOT))
        scheduler.apply(RequestCreate((0,)))
        scheduler.apply(Create((0,)))
        scheduler.apply(RequestCommit((0,), "v"))
        scheduler.apply(Commit((0,)))

    def test_report_commit_after_commit(self, scheduler):
        self.finish_one(scheduler)
        assert scheduler.output_enabled(ReportCommit((0,), "v"))
        assert not scheduler.output_enabled(ReportCommit((0,), "wrong"))

    def test_report_abort_after_abort(self, scheduler):
        scheduler.apply(Create(ROOT))
        scheduler.apply(RequestCreate((0,)))
        scheduler.apply(Abort((0,)))
        assert scheduler.output_enabled(ReportAbort((0,)))
        assert not scheduler.output_enabled(ReportCommit((0,), "v"))

    def test_once_reports_suppresses_proposals_not_acceptance(
        self, scheduler
    ):
        self.finish_one(scheduler)
        scheduler.apply(ReportCommit((0,), "v"))
        # Not proposed again...
        assert ReportCommit((0,), "v") not in set(
            scheduler.enabled_outputs()
        )
        # ...but replays of repeated reports are still accepted (the paper
        # allows repeated instances of a report).
        scheduler.apply(ReportCommit((0,), "v"))

    def test_lemma4_state_correspondence(self, scheduler):
        """Lemma 4: scheduler state mirrors schedule content."""
        self.finish_one(scheduler)
        assert (0,) in scheduler.create_requested
        assert (0,) in scheduler.created
        assert ((0,), "v") in scheduler.commit_requested
        assert (0,) in scheduler.committed
        assert scheduler.returned == scheduler.committed | scheduler.aborted
        assert not (scheduler.committed & scheduler.aborted)
