"""Unit tests for visibility, orphans and essence (Lemmas 6-12, 27)."""

import pytest

from repro.core.events import (
    Abort,
    Commit,
    Create,
    InformAbortAt,
    InformCommitAt,
    RequestCommit,
    RequestCreate,
)
from repro.core.names import ROOT
from repro.core.visibility import (
    committed_at,
    committed_to,
    essence,
    is_live,
    is_orphan,
    is_orphan_at,
    live_transactions,
    visible,
    visible_at,
    visible_to,
    write_subsequence,
)

T = (0,)
U = (0, 0)
DEEP = (0, 0, 0)
OTHER = (1,)


class TestCommittedTo:
    def test_trivially_committed_to_self(self):
        assert committed_to([], T, T)

    def test_needs_whole_chain(self):
        alpha = [Commit(DEEP)]
        assert committed_to(alpha, DEEP, U)
        assert not committed_to(alpha, DEEP, T)
        alpha.append(Commit(U))
        assert committed_to(alpha, DEEP, T)
        assert not committed_to(alpha, DEEP, ROOT)

    def test_chain_any_event_order(self):
        # committed_to only asks for presence, not order, of COMMITs.
        alpha = [Commit(U), Commit(DEEP)]
        assert committed_to(alpha, DEEP, T)


class TestVisibleTo:
    def test_ancestor_always_visible(self):
        """Lemma 7(1): ancestors are visible to descendants."""
        assert visible_to([], T, DEEP)
        assert visible_to([], ROOT, DEEP)

    def test_self_visible(self):
        assert visible_to([], U, U)

    def test_cousin_needs_commit_chain(self):
        assert not visible_to([], U, OTHER)
        assert visible_to([Commit(U), Commit(T)], U, OTHER)
        assert not visible_to([Commit(U)], U, OTHER)

    def test_transitivity(self):
        """Lemma 7(3): visibility is transitive."""
        alpha = [Commit(DEEP), Commit(U), Commit(T)]
        assert visible_to(alpha, DEEP, U)
        assert visible_to(alpha, U, OTHER)
        assert visible_to(alpha, DEEP, OTHER)


class TestVisibleSubsequence:
    def test_own_events_always_visible(self):
        alpha = (Create(T), RequestCommit(T, "v"))
        assert visible(alpha, T) == alpha

    def test_invisible_foreign_events_dropped(self):
        alpha = (Create(T), Create(OTHER))
        assert visible(alpha, T) == (Create(T),)

    def test_commit_makes_events_visible(self):
        alpha = (
            Create(OTHER),
            RequestCommit(OTHER, "v"),
            Commit(OTHER),
        )
        # transaction(COMMIT(OTHER)) = ROOT, visible to T; OTHER's own
        # events become visible once OTHER commits to the root.
        assert visible(alpha, T) == alpha

    def test_informs_never_visible(self):
        alpha = (Create(T), InformCommitAt("x", T))
        assert visible(alpha, T) == (Create(T),)

    def test_lemma9_projection(self):
        """Lemma 9: visible(alpha,T)|T' equals alpha|T' when T' visible."""
        from repro.core.equieffective import project_transaction

        alpha = (
            Create(T),
            RequestCreate(U),
            Create(U),
            RequestCommit(U, 1),
            Commit(U),
            RequestCommit(T, "v"),
        )
        vis = visible(alpha, T)
        assert project_transaction(vis, T) == project_transaction(alpha, T)
        assert project_transaction(vis, U) == project_transaction(alpha, U)

    def test_lemma8_monotone(self):
        """Lemma 8: visibility in a subsequence implies it in the whole."""
        alpha = (Create(U), Commit(U), Commit(T))
        beta = (Create(U), Commit(U))
        for event in visible(beta, OTHER):
            assert event in visible(alpha, OTHER)


class TestOrphans:
    def test_own_abort_makes_orphan(self):
        assert is_orphan([Abort(T)], T)

    def test_ancestor_abort_propagates(self):
        assert is_orphan([Abort(T)], DEEP)

    def test_descendant_abort_does_not(self):
        assert not is_orphan([Abort(DEEP)], T)

    def test_unrelated_abort_does_not(self):
        assert not is_orphan([Abort(OTHER)], T)


class TestLiveness:
    def test_live_between_create_and_return(self):
        assert not is_live([], T)
        assert is_live([Create(T)], T)
        assert not is_live([Create(T), Commit(T)], T)
        assert not is_live([Create(T), Abort(T)], T)

    def test_live_transactions_set(self):
        alpha = [Create(T), Create(OTHER), Commit(OTHER)]
        assert live_transactions(alpha) == {T}


class TestObjectLocalNotions:
    def test_committed_at_requires_ascending_order(self):
        ascending = [InformCommitAt("x", DEEP), InformCommitAt("x", U)]
        descending = [InformCommitAt("x", U), InformCommitAt("x", DEEP)]
        assert committed_at(ascending, "x", DEEP, T)
        assert not committed_at(descending, "x", DEEP, T)

    def test_committed_at_other_object_ignored(self):
        alpha = [InformCommitAt("y", U)]
        assert not committed_at(alpha, "x", U, T)

    def test_visible_at_ancestor(self):
        assert visible_at([], "x", U, DEEP)

    def test_orphan_at(self):
        alpha = [InformAbortAt("x", T)]
        assert is_orphan_at(alpha, "x", DEEP)
        assert not is_orphan_at(alpha, "y", DEEP)
        assert not is_orphan_at(alpha, "x", OTHER)


class TestWriteAndEssence:
    def test_write_subsequence_keeps_write_request_commits(
        self, tiny_system_type
    ):
        writer, reader = (0, 0), (1, 0)
        alpha = (
            Create(writer),
            RequestCommit(writer, None),
            Create(reader),
            RequestCommit(reader, 5),
        )
        assert write_subsequence(alpha, tiny_system_type) == (
            RequestCommit(writer, None),
        )

    def test_write_subsequence_filters_by_object(self, nested_system_type):
        access_x = (0, 0, 0)   # IntRegister.add on x
        access_acct = (0, 0, 2)
        alpha = (
            Create(access_x),
            RequestCommit(access_x, 1),
            Create(access_acct),
            RequestCommit(access_acct, True),
        )
        only_x = write_subsequence(alpha, nested_system_type, "x")
        assert only_x == (RequestCommit(access_x, 1),)

    def test_essence_inserts_creates(self, tiny_system_type):
        writer = (0, 0)
        alpha = (Create(writer), RequestCommit(writer, None))
        assert essence(alpha, tiny_system_type) == (
            Create(writer),
            RequestCommit(writer, None),
        )

    def test_essence_drops_reads_entirely(self, tiny_system_type):
        reader = (1, 0)
        alpha = (Create(reader), RequestCommit(reader, 0))
        assert essence(alpha, tiny_system_type) == ()
