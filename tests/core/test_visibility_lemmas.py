"""Direct tests for the remaining visibility lemmas (10, 11)."""

import pytest

from repro.core.events import (
    Abort,
    Commit,
    Create,
    RequestCommit,
    RequestCreate,
    transaction_of,
)
from repro.core.names import ROOT
from repro.core.visibility import visible, visible_to

T = (0,)
U = (0, 0)
W = (1,)


class TestLemma10:
    """If T'' is visible to both T' and T, then T'' is visible to T'
    within visible(alpha, T)."""

    def test_visibility_preserved_in_visible_subsequence(self):
        alpha = (
            Create(U),
            RequestCommit(U, 1),
            Commit(U),        # U committed to T
            Commit(T),        # T committed to root
        )
        # U is visible to T and to ROOT in alpha.
        assert visible_to(alpha, U, T)
        assert visible_to(alpha, U, ROOT)
        beta = visible(alpha, ROOT)
        assert visible_to(beta, U, T)


class TestLemma11:
    """How visible(alpha pi, T) relates to visible(alpha, T)."""

    def test_invisible_transaction_changes_nothing(self):
        alpha = (Create(T),)
        pi = Create(W)  # W not visible to T
        assert visible(alpha + (pi,), T) == visible(alpha, T)

    def test_visible_non_commit_appends(self):
        alpha = (Create(T),)
        pi = RequestCreate(U)  # transaction(pi) = T, visible to itself
        assert visible(alpha + (pi,), T) == visible(alpha, T) + (pi,)

    def test_commit_merges_child_visibility(self):
        """Lemma 11(3): a COMMIT(U) event brings U's events along."""
        alpha = (
            Create(T),
            RequestCreate(U),
            Create(U),
            RequestCommit(U, 1),
        )
        pi = Commit(U)
        before = set(visible(alpha, T))
        after = set(visible(alpha + (pi,), T))
        gained = after - before - {pi}
        # Exactly U's own events became visible.
        assert gained == {Create(U), RequestCommit(U, 1)}

    def test_abort_does_not_expand_visibility(self):
        alpha = (
            Create(T),
            RequestCreate(U),
            Create(U),
            RequestCommit(U, 1),
        )
        pi = Abort(U)
        before = set(visible(alpha, T))
        after = set(visible(alpha + (pi,), T))
        assert after == before | {pi}


class TestVisibleIdempotence:
    def test_visible_is_idempotent(self):
        alpha = (
            Create(T),
            RequestCreate(U),
            Create(U),
            RequestCommit(U, 1),
            Commit(U),
            Create(W),
        )
        once = visible(alpha, T)
        assert visible(once, T) == once
