"""Unit tests for equieffectiveness, transparency and write-equivalence
(Sections 4, 6.1; Lemmas 15-17, 20, 29-31)."""

import pytest

from repro.adt import Counter, IntRegister
from repro.core.equieffective import (
    equieffective,
    is_basic_object_schedule,
    is_transparent_after,
    project_object,
    project_transaction,
    write_equal,
    write_equivalence_failures,
    write_equivalent,
)
from repro.core.events import Commit, Create, RequestCommit, RequestCreate
from repro.core.names import ROOT, SystemTypeBuilder
from repro.errors import WellFormednessError


@pytest.fixture
def system_type():
    builder = SystemTypeBuilder()
    builder.add_object(Counter("c"))
    top = builder.add_child(ROOT)                         # (0,)
    builder.add_access(top, "c", Counter.increment(1))    # (0,0)
    builder.add_access(top, "c", Counter.value())         # (0,1)
    builder.add_access(top, "c", Counter.increment(5))    # (0,2)
    return builder.build()


INC1, READ, INC5 = (0, 0), (0, 1), (0, 2)


class TestScheduleRecognition:
    def test_valid_schedule(self, system_type):
        alpha = [Create(INC1), RequestCommit(INC1, 1)]
        assert is_basic_object_schedule(system_type, "c", alpha)

    def test_wrong_value_not_schedule(self, system_type):
        alpha = [Create(INC1), RequestCommit(INC1, 99)]
        assert not is_basic_object_schedule(system_type, "c", alpha)


class TestEquieffectiveness:
    def test_schedule_equieffective_to_itself(self, system_type):
        alpha = (Create(INC1), RequestCommit(INC1, 1))
        assert equieffective(system_type, "c", alpha, alpha)

    def test_read_removal_is_equieffective(self, system_type):
        """Semantic condition 3: read responses are transparent."""
        with_read = (
            Create(READ),
            RequestCommit(READ, 0),
            Create(INC1),
            RequestCommit(INC1, 1),
        )
        without_read = (Create(INC1), RequestCommit(INC1, 1))
        assert equieffective(system_type, "c", with_read, without_read)

    def test_create_is_transparent(self, system_type):
        """Semantic condition 1."""
        alpha = (Create(INC1), RequestCommit(INC1, 1))
        assert is_transparent_after(
            system_type, "c", alpha, Create(INC5)
        )

    def test_create_mobility(self, system_type):
        """Semantic condition 2: when a CREATE happened is undetectable."""
        early = (
            Create(INC5),
            Create(INC1),
            RequestCommit(INC1, 1),
            RequestCommit(INC5, 6),
        )
        late = (
            Create(INC1),
            RequestCommit(INC1, 1),
            Create(INC5),
            RequestCommit(INC5, 6),
        )
        assert equieffective(system_type, "c", early, late)

    def test_write_response_not_transparent(self, system_type):
        alpha = (Create(INC1),)
        assert not is_transparent_after(
            system_type, "c", alpha, RequestCommit(INC1, 1)
        )

    def test_different_final_values_not_equieffective(self, system_type):
        one = (Create(INC1), RequestCommit(INC1, 1))
        other = (Create(INC5), RequestCommit(INC5, 5))
        assert not equieffective(system_type, "c", one, other)

    def test_non_schedules_trivially_equieffective(self, system_type):
        bogus_a = (Create(INC1), RequestCommit(INC1, 99))
        bogus_b = (Create(INC5), RequestCommit(INC5, 99))
        assert equieffective(system_type, "c", bogus_a, bogus_b)

    def test_schedule_vs_non_schedule_not_equieffective(self, system_type):
        good = (Create(INC1), RequestCommit(INC1, 1))
        bogus = (Create(INC1), RequestCommit(INC1, 99))
        assert not equieffective(system_type, "c", good, bogus)

    def test_ill_formed_input_rejected(self, system_type):
        with pytest.raises(WellFormednessError):
            equieffective(
                system_type, "c", (RequestCommit(INC1, 1),), ()
            )


class TestLemma20:
    def test_write_equal_well_formed_schedules_are_equieffective(
        self, system_type
    ):
        """Lemma 20 checked on a concrete pair."""
        alpha = (
            Create(READ),
            Create(INC1),
            RequestCommit(READ, 0),
            RequestCommit(INC1, 1),
        )
        beta = (
            Create(INC1),
            RequestCommit(INC1, 1),
        )
        assert write_equal(system_type, "c", alpha, beta)
        assert equieffective(system_type, "c", alpha, beta)


class TestWriteEquivalence:
    def test_reflexive(self, system_type):
        alpha = (Create(INC1), RequestCommit(INC1, 1))
        assert write_equivalent(system_type, alpha, alpha)

    def test_reordering_read_responses_allowed(self, system_type):
        alpha = (
            Create(READ),
            RequestCommit(READ, 0),
            Create(INC1),
            RequestCommit(INC1, 1),
        )
        beta = (
            Create(INC1),
            RequestCommit(INC1, 1),
            Create(READ),
            RequestCommit(READ, 0),
        )
        assert write_equivalent(system_type, alpha, beta)

    def test_reordering_write_responses_forbidden(self, system_type):
        alpha = (
            Create(INC1),
            RequestCommit(INC1, 1),
            Create(INC5),
            RequestCommit(INC5, 6),
        )
        beta = (
            Create(INC5),
            RequestCommit(INC5, 6),
            Create(INC1),
            RequestCommit(INC1, 1),
        )
        failures = write_equivalence_failures(system_type, alpha, beta)
        assert any("write()" in failure for failure in failures)

    def test_different_events_detected(self, system_type):
        alpha = (Create(INC1),)
        beta = (Create(INC5),)
        failures = write_equivalence_failures(system_type, alpha, beta)
        assert any("same events" in failure for failure in failures)

    def test_transaction_projection_differences_detected(self, system_type):
        alpha = (RequestCreate((0, 0)), RequestCreate((0, 1)))
        beta = (RequestCreate((0, 1)), RequestCreate((0, 0)))
        failures = write_equivalence_failures(system_type, alpha, beta)
        assert any("projections" in failure for failure in failures)


class TestProjections:
    def test_project_transaction_includes_child_returns(self):
        alpha = (Create((0,)), Commit((0, 0)), Commit((1, 0)))
        assert project_transaction(alpha, (0,)) == (
            Create((0,)),
            Commit((0, 0)),
        )

    def test_project_object(self, system_type):
        alpha = (
            Create(INC1),
            RequestCreate((0, 0)),
            RequestCommit(INC1, 1),
        )
        assert project_object(system_type, "c", alpha) == (
            Create(INC1),
            RequestCommit(INC1, 1),
        )
