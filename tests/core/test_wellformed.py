"""Unit tests for the three well-formedness definitions (Lemmas 2, 3)."""

import pytest

from repro.core.events import (
    Abort,
    Commit,
    Create,
    InformAbortAt,
    InformCommitAt,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
)
from repro.core.names import ROOT
from repro.core.wellformed import (
    BasicObjectWellFormedness,
    LockingObjectWellFormedness,
    SequenceWellFormedness,
    TransactionWellFormedness,
    assert_well_formed,
    is_well_formed,
)
from repro.errors import WellFormednessError

T = (0,)
CHILD = (0, 0)
CHILD2 = (0, 1)


class TestTransactionWellFormedness:
    def run(self, events):
        checker = TransactionWellFormedness(T)
        for event in events:
            checker.extend(event)

    def test_legal_lifecycle(self):
        self.run(
            [
                Create(T),
                RequestCreate(CHILD),
                ReportCommit(CHILD, "v"),
                RequestCommit(T, "done"),
            ]
        )

    def test_double_create_rejected(self):
        with pytest.raises(WellFormednessError):
            self.run([Create(T), Create(T)])

    def test_output_before_create_rejected(self):
        with pytest.raises(WellFormednessError):
            self.run([RequestCreate(CHILD)])
        with pytest.raises(WellFormednessError):
            self.run([RequestCommit(T, 0)])

    def test_double_request_create_rejected(self):
        with pytest.raises(WellFormednessError):
            self.run([Create(T), RequestCreate(CHILD), RequestCreate(CHILD)])

    def test_output_after_request_commit_rejected(self):
        with pytest.raises(WellFormednessError):
            self.run(
                [Create(T), RequestCommit(T, 0), RequestCreate(CHILD)]
            )

    def test_double_request_commit_rejected(self):
        with pytest.raises(WellFormednessError):
            self.run([Create(T), RequestCommit(T, 0), RequestCommit(T, 1)])

    def test_report_without_request_rejected(self):
        with pytest.raises(WellFormednessError):
            self.run([Create(T), ReportCommit(CHILD, "v")])

    def test_conflicting_reports_rejected(self):
        with pytest.raises(WellFormednessError):
            self.run(
                [
                    Create(T),
                    RequestCreate(CHILD),
                    ReportCommit(CHILD, "v"),
                    ReportAbort(CHILD),
                ]
            )

    def test_conflicting_commit_values_rejected(self):
        with pytest.raises(WellFormednessError):
            self.run(
                [
                    Create(T),
                    RequestCreate(CHILD),
                    ReportCommit(CHILD, "v"),
                    ReportCommit(CHILD, "w"),
                ]
            )

    def test_repeated_identical_report_allowed(self):
        """Lemma 2(4): repeated instances of one report are permitted."""
        self.run(
            [
                Create(T),
                RequestCreate(CHILD),
                ReportCommit(CHILD, "v"),
                ReportCommit(CHILD, "v"),
            ]
        )

    def test_foreign_event_rejected(self):
        with pytest.raises(WellFormednessError):
            self.run([Create((9,))])

    def test_reports_may_arrive_in_any_order(self):
        self.run(
            [
                Create(T),
                RequestCreate(CHILD),
                RequestCreate(CHILD2),
                ReportAbort(CHILD2),
                ReportCommit(CHILD, 1),
            ]
        )


class TestBasicObjectWellFormedness:
    def run(self, system_type, events):
        checker = BasicObjectWellFormedness(system_type, "x")
        for event in events:
            checker.extend(event)
        return checker

    def test_legal_access_lifecycle(self, tiny_system_type):
        checker = self.run(
            tiny_system_type,
            [Create((0, 0)), RequestCommit((0, 0), 5)],
        )
        assert checker.pending() == set()

    def test_pending(self, tiny_system_type):
        checker = self.run(tiny_system_type, [Create((0, 0))])
        assert checker.pending() == {(0, 0)}

    def test_double_create_rejected(self, tiny_system_type):
        with pytest.raises(WellFormednessError):
            self.run(tiny_system_type, [Create((0, 0)), Create((0, 0))])

    def test_response_without_create_rejected(self, tiny_system_type):
        with pytest.raises(WellFormednessError):
            self.run(tiny_system_type, [RequestCommit((0, 0), 5)])

    def test_double_response_rejected(self, tiny_system_type):
        with pytest.raises(WellFormednessError):
            self.run(
                tiny_system_type,
                [
                    Create((0, 0)),
                    RequestCommit((0, 0), 5),
                    RequestCommit((0, 0), 5),
                ],
            )

    def test_non_access_rejected(self, tiny_system_type):
        with pytest.raises(WellFormednessError):
            self.run(tiny_system_type, [Create((0,))])


class TestLockingObjectWellFormedness:
    def run(self, system_type, events):
        checker = LockingObjectWellFormedness(system_type, "x")
        for event in events:
            checker.extend(event)

    def test_inform_commit_needs_response_for_local_access(
        self, tiny_system_type
    ):
        with pytest.raises(WellFormednessError):
            self.run(
                tiny_system_type,
                [Create((0, 0)), InformCommitAt("x", (0, 0))],
            )

    def test_inform_commit_for_internal_node_fine(self, tiny_system_type):
        self.run(tiny_system_type, [InformCommitAt("x", (0,))])

    def test_inform_conflict_rejected(self, tiny_system_type):
        with pytest.raises(WellFormednessError):
            self.run(
                tiny_system_type,
                [InformAbortAt("x", (0,)), InformCommitAt("x", (0,))],
            )
        with pytest.raises(WellFormednessError):
            self.run(
                tiny_system_type,
                [InformCommitAt("x", (0,)), InformAbortAt("x", (0,))],
            )

    def test_inform_for_root_rejected(self, tiny_system_type):
        with pytest.raises(WellFormednessError):
            self.run(tiny_system_type, [InformCommitAt("x", ROOT)])

    def test_legal_locking_sequence(self, tiny_system_type):
        self.run(
            tiny_system_type,
            [
                Create((0, 0)),
                RequestCommit((0, 0), 5),
                InformCommitAt("x", (0, 0)),
                InformCommitAt("x", (0,)),
                InformAbortAt("x", (1,)),
            ],
        )


class TestSequenceWellFormedness:
    def test_serial_sequence_rejects_informs(self, tiny_system_type):
        assert not is_well_formed(
            tiny_system_type, [InformCommitAt("x", (0,))], locking=False
        )

    def test_concurrent_sequence_accepts_informs(self, tiny_system_type):
        assert is_well_formed(
            tiny_system_type, [InformAbortAt("x", (0,))], locking=True
        )

    def test_returns_unconstrained(self, tiny_system_type):
        assert is_well_formed(
            tiny_system_type, [Commit((0,)), Abort((1,))], locking=True
        )

    def test_projection_violation_detected(self, tiny_system_type):
        assert not is_well_formed(
            tiny_system_type, [Create((0,)), Create((0,))]
        )

    def test_assert_well_formed_raises(self, tiny_system_type):
        with pytest.raises(WellFormednessError):
            assert_well_formed(
                tiny_system_type, [RequestCommit((0, 0), 5)]
            )

    def test_request_create_of_root_rejected(self, tiny_system_type):
        assert not is_well_formed(tiny_system_type, [RequestCreate(ROOT)])
