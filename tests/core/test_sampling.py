"""The shared seeded samplers (`repro.core.sampling`).

The dedupe contract: every call site that moved here must see exactly
the values (and the RNG consumption) of the inline code it replaced.
The pinned-weights and ladder-equivalence tests below are that proof.
"""

import random

from repro.core.sampling import (
    RngStreams,
    threshold_index,
    weighted_index,
    zipf_weights,
)

#: zipf_weights(8, 0.9) as computed by the historical
#: ``repro.sim.workload._zipf_weights`` formula -- pinned so a formula
#: "cleanup" cannot silently reshuffle every seeded workload.
_PINNED_ZIPF_8_09 = [
    1.0,
    1.0 / (2 ** 0.9),
    1.0 / (3 ** 0.9),
    1.0 / (4 ** 0.9),
    1.0 / (5 ** 0.9),
    1.0 / (6 ** 0.9),
    1.0 / (7 ** 0.9),
    1.0 / (8 ** 0.9),
]


class TestZipfWeights:
    def test_pinned_values(self):
        assert zipf_weights(8, 0.9) == _PINNED_ZIPF_8_09

    def test_uniform_when_skew_zero(self):
        assert zipf_weights(5, 0.0) == [1.0] * 5
        assert zipf_weights(5, -1.0) == [1.0] * 5

    def test_monotone_decreasing(self):
        weights = zipf_weights(6, 1.2)
        assert weights == sorted(weights, reverse=True)
        assert weights[0] == 1.0


class TestWeightedIndex:
    def test_matches_legacy_choices_call(self):
        """Byte-compat: same rng state -> same draw as the inline
        ``rng.choices(range(n), weights=w, k=1)[0]`` it replaced."""
        weights = zipf_weights(16, 0.9)
        a, b = random.Random(123), random.Random(123)
        for _ in range(200):
            legacy = a.choices(
                range(16), weights=weights, k=1
            )[0]
            assert weighted_index(b, weights) == legacy

    def test_degenerate_single(self):
        assert weighted_index(random.Random(0), [1.0]) == 0


class TestThresholdIndex:
    def test_matches_legacy_ladder(self):
        """Byte-compat with obs.workloads' historical inline ladder:
        roll < 0.7 -> 0, roll < 0.9 -> 1, else 2."""
        a, b = random.Random(77), random.Random(77)
        for _ in range(500):
            roll = a.random()
            legacy = 0 if roll < 0.7 else 1 if roll < 0.9 else 2
            assert threshold_index(b, (0.7, 0.9)) == legacy

    def test_boundary_roll_on_cut(self):
        class Fixed:
            def random(self):
                return 0.7

        # bisect_right: a roll equal to the cut falls in the upper
        # bucket, matching the strict ``<`` ladder it replaced.
        assert threshold_index(Fixed(), (0.7, 0.9)) == 1

    def test_empty_cuts(self):
        assert threshold_index(random.Random(0), ()) == 0


class TestRngStreams:
    def test_streams_are_independent(self):
        streams = RngStreams(42)
        ops_draws = [streams.stream("ops").random() for _ in range(3)]
        # Drawing from one stream never perturbs another: fresh stream
        # objects always restart the named sequence.
        streams.stream("class").random()
        assert [
            streams.stream("ops").random() for _ in range(3)
        ] == ops_draws

    def test_distinct_names_distinct_sequences(self):
        streams = RngStreams(1)
        assert (
            streams.stream("a").random() != streams.stream("b").random()
        )

    def test_seed_changes_every_stream(self):
        assert (
            RngStreams(1).stream("ops").random()
            != RngStreams(2).stream("ops").random()
        )
