"""Unit tests for the operation alphabet."""

from repro.core.events import (
    Abort,
    Commit,
    Create,
    InformAbortAt,
    InformCommitAt,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
    is_report_event,
    is_return_event,
    is_serial_operation,
    subject_of,
    transaction_of,
)
from repro.core.names import ROOT


class TestTransactionAssignment:
    """The paper's transaction(pi) mapping."""

    def test_create_belongs_to_its_transaction(self):
        assert transaction_of(Create((1, 2))) == (1, 2)

    def test_request_commit_belongs_to_its_transaction(self):
        assert transaction_of(RequestCommit((1, 2), "v")) == (1, 2)

    def test_request_create_belongs_to_parent(self):
        assert transaction_of(RequestCreate((1, 2))) == (1,)

    def test_returns_belong_to_parent(self):
        assert transaction_of(Commit((1, 2))) == (1,)
        assert transaction_of(Abort((1, 2))) == (1,)

    def test_reports_belong_to_parent(self):
        assert transaction_of(ReportCommit((1, 2), "v")) == (1,)
        assert transaction_of(ReportAbort((1, 2))) == (1,)

    def test_informs_have_no_transaction(self):
        assert transaction_of(InformCommitAt("x", (1,))) is None
        assert transaction_of(InformAbortAt("x", (1,))) is None

    def test_create_of_root(self):
        assert transaction_of(Create(ROOT)) == ROOT


class TestClassifiers:
    def test_serial_operations(self):
        assert is_serial_operation(Create((1,)))
        assert is_serial_operation(Commit((1,)))
        assert not is_serial_operation(InformCommitAt("x", (1,)))

    def test_return_events(self):
        assert is_return_event(Commit((1,)))
        assert is_return_event(Abort((1,)))
        assert not is_return_event(ReportCommit((1,), 0))

    def test_report_events(self):
        assert is_report_event(ReportCommit((1,), 0))
        assert is_report_event(ReportAbort((1,)))
        assert not is_report_event(Commit((1,)))

    def test_subject_of(self):
        assert subject_of(Commit((1, 2))) == (1, 2)
        assert subject_of(InformAbortAt("x", (3,))) == (3,)


class TestValueSemantics:
    def test_events_hashable_and_equal_by_value(self):
        assert Create((1,)) == Create((1,))
        assert hash(Create((1,))) == hash(Create((1,)))
        assert Create((1,)) != Create((2,))

    def test_request_commit_distinguishes_values(self):
        assert RequestCommit((1,), 1) != RequestCommit((1,), 2)

    def test_str_rendering(self):
        assert str(Create((0, 1))) == "CREATE(T0.0.1)"
        assert "INFORM_COMMIT_AT(x)" in str(InformCommitAt("x", (0,)))
        assert str(Abort((2,))) == "ABORT(T0.2)"
