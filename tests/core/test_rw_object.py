"""Unit tests for Moss' R/W Locking objects M(X) (Section 5.1)."""

import pytest

from repro.adt import Counter, IntRegister
from repro.core.events import (
    Create,
    InformAbortAt,
    InformCommitAt,
    RequestCommit,
)
from repro.core.names import ROOT, SystemTypeBuilder
from repro.core.rw_object import RWLockingObject, least_lockholder
from repro.errors import ModelError, NotEnabledError


@pytest.fixture
def system_type():
    builder = SystemTypeBuilder()
    builder.add_object(Counter("c"))
    t1 = builder.add_child(ROOT)           # (0,)
    builder.add_access(t1, "c", Counter.increment(1))   # (0,0) write
    builder.add_access(t1, "c", Counter.value())        # (0,1) read
    t2 = builder.add_child(ROOT)           # (1,)
    builder.add_access(t2, "c", Counter.value())        # (1,0) read
    builder.add_access(t2, "c", Counter.increment(10))  # (1,1) write
    return builder.build()


@pytest.fixture
def mx(system_type):
    return RWLockingObject(system_type, "c")


W1, R1 = (0, 0), (0, 1)
R2, W2 = (1, 0), (1, 1)


def run_access(mx, access):
    mx.apply(Create(access))
    action = next(
        a for a in mx.enabled_outputs() if a.transaction == access
    )
    mx.apply(action)
    return action.value


class TestLeastLockholder:
    def test_chain(self):
        assert least_lockholder({(), (1,), (1, 2)}) == (1, 2)

    def test_singleton(self):
        assert least_lockholder({()}) == ()

    def test_non_chain_rejected(self):
        with pytest.raises(ModelError):
            least_lockholder({(1,), (2,)})


class TestInitialState:
    def test_root_holds_write_lock(self, mx):
        assert mx.write_lockholders == {ROOT}
        assert mx.map[ROOT] == 0
        assert mx.current_value() == 0


class TestGrantRules:
    def test_write_acquires_lock_and_version(self, mx):
        value = run_access(mx, W1)
        assert value == 1
        assert W1 in mx.write_lockholders
        assert mx.map[W1] == 1
        # Root's version is untouched until commit propagation.
        assert mx.map[ROOT] == 0

    def test_read_acquires_read_lock_no_version(self, mx):
        run_access(mx, R1)
        assert R1 in mx.read_lockholders
        assert R1 not in mx.map

    def test_conflicting_write_blocked(self, mx):
        run_access(mx, W1)
        mx.apply(Create(W2))
        # W1 is not an ancestor of W2: no response enabled for W2.
        assert all(
            action.transaction != W2 for action in mx.enabled_outputs()
        )

    def test_read_blocked_by_foreign_write_lock(self, mx):
        run_access(mx, W1)
        mx.apply(Create(R2))
        assert all(
            action.transaction != R2 for action in mx.enabled_outputs()
        )

    def test_concurrent_reads_allowed(self, mx):
        run_access(mx, R1)
        value = run_access(mx, R2)
        assert value == 0
        assert {R1, R2} <= mx.read_lockholders

    def test_write_blocked_by_foreign_read_lock(self, mx):
        run_access(mx, R2)
        mx.apply(Create(W1))
        assert all(
            action.transaction != W1 for action in mx.enabled_outputs()
        )

    def test_response_requires_create(self, mx):
        with pytest.raises(NotEnabledError):
            mx.apply(RequestCommit(W1, 1))

    def test_no_double_response(self, mx):
        run_access(mx, W1)
        assert not mx.output_enabled(RequestCommit(W1, 1))

    def test_response_value_from_least_holder_version(self, mx):
        run_access(mx, W1)
        mx.apply(InformCommitAt("c", W1))   # lock moves to (0,)
        run_access(mx, R1)                  # read inside same tree
        # R1 must see (0,)'s version, i.e. 1, not root's 0.
        assert mx.map[(0,)] == 1


class TestInformCommit:
    def test_write_lock_and_version_inherited(self, mx):
        run_access(mx, W1)
        mx.apply(InformCommitAt("c", W1))
        assert W1 not in mx.write_lockholders
        assert (0,) in mx.write_lockholders
        assert mx.map[(0,)] == 1
        assert W1 not in mx.map

    def test_read_lock_inherited(self, mx):
        run_access(mx, R1)
        mx.apply(InformCommitAt("c", R1))
        assert R1 not in mx.read_lockholders
        assert (0,) in mx.read_lockholders

    def test_commit_to_root_publishes_value(self, mx):
        run_access(mx, W1)
        mx.apply(InformCommitAt("c", W1))
        mx.apply(InformCommitAt("c", (0,)))
        assert mx.write_lockholders == {ROOT}
        assert mx.map[ROOT] == 1
        # Now the other tree's accesses can run and see the new value.
        assert run_access(mx, R2) == 1

    def test_inform_for_non_holder_is_noop(self, mx):
        before = (set(mx.write_lockholders), dict(mx.map))
        mx.apply(InformCommitAt("c", (1,)))
        assert (set(mx.write_lockholders), dict(mx.map)) == before


class TestInformAbort:
    def test_abort_discards_subtree_locks_and_versions(self, mx):
        run_access(mx, W1)
        mx.apply(InformCommitAt("c", W1))
        run_access(mx, R1)
        mx.apply(InformAbortAt("c", (0,)))
        assert mx.write_lockholders == {ROOT}
        assert mx.read_lockholders == set()
        assert mx.map == {ROOT: 0}

    def test_abort_restores_pre_access_state(self, mx):
        run_access(mx, W1)
        mx.apply(InformCommitAt("c", W1))
        assert mx.current_value() == 1
        mx.apply(InformAbortAt("c", (0,)))
        assert mx.current_value() == 0
        # The other tree now reads the restored value.
        assert run_access(mx, R2) == 0

    def test_abort_unblocks_conflicting_access(self, mx):
        run_access(mx, W1)
        mx.apply(Create(W2))
        assert all(a.transaction != W2 for a in mx.enabled_outputs())
        mx.apply(InformAbortAt("c", (0,)))
        values = [a.value for a in mx.enabled_outputs()
                  if a.transaction == W2]
        assert values == [10]


class TestLemma21Invariant:
    def test_holders_form_ancestor_chain_with_writer(self, mx):
        """Lemma 21: with a write-holder present, holders are related."""
        run_access(mx, W1)
        mx.apply(InformCommitAt("c", W1))
        run_access(mx, R1)
        mx.apply(InformCommitAt("c", R1))
        holders = mx.write_lockholders | mx.read_lockholders
        for a in mx.write_lockholders:
            for b in holders:
                assert a[: len(b)] == b or b[: len(a)] == a
