"""Unit tests for the Lemma 33 serializer."""

import pytest

from repro.core.equieffective import write_equivalent
from repro.core.events import (
    Abort,
    Commit,
    Create,
    InformCommitAt,
    RequestCommit,
    RequestCreate,
)
from repro.core.names import ROOT
from repro.core.serializer import Serializer, serialize_visible
from repro.core.systems import RWLockingSystem
from repro.core.visibility import visible
from repro.errors import SerializationFailure
from repro.ioa.explorer import random_schedules


class TestBasicConstruction:
    def test_empty_schedule(self, tiny_system_type):
        serializer = Serializer(tiny_system_type)
        assert serializer.serial_schedule_for(ROOT) == ()

    def test_create_starts_from_parent(self, tiny_system_type):
        serializer = Serializer(tiny_system_type)
        serializer.extend(Create(ROOT))
        serializer.extend(RequestCreate((0,)))
        serializer.extend(Create((0,)))
        beta = serializer.serial_schedule_for((0,))
        assert beta == (Create(ROOT), RequestCreate((0,)), Create((0,)))

    def test_informs_ignored(self, tiny_system_type):
        serializer = Serializer(tiny_system_type)
        serializer.extend(Create(ROOT))
        serializer.extend(InformCommitAt("x", (0,)))
        assert serializer.serial_schedule_for(ROOT) == (Create(ROOT),)

    def test_orphan_query_rejected(self, tiny_system_type):
        serializer = Serializer(tiny_system_type)
        serializer.extend(Create(ROOT))
        serializer.extend(RequestCreate((0,)))
        serializer.extend(Create((0,)))
        serializer.extend(Abort((0,)))
        with pytest.raises(SerializationFailure):
            serializer.serial_schedule_for((0,))

    def test_never_created_query_rejected(self, tiny_system_type):
        serializer = Serializer(tiny_system_type)
        with pytest.raises(SerializationFailure):
            serializer.serial_schedule_for((1,))

    def test_abort_excludes_subtree_work(self, tiny_system_type):
        """Case 5: the aborted subtree's events never reach the root's
        serial schedule -- matching "aborted means never created"."""
        serializer = Serializer(tiny_system_type)
        events = [
            Create(ROOT),
            RequestCreate((0,)),
            Create((0,)),
            RequestCreate((0, 0)),
            Create((0, 0)),
            Abort((0,)),
        ]
        serializer.extend_all(events)
        beta = serializer.serial_schedule_for(ROOT)
        assert Create((0,)) not in beta
        assert Create((0, 0)) not in beta
        assert Abort((0,)) in beta
        assert RequestCreate((0,)) in beta

    def test_commit_merges_child_events(self, tiny_system_type):
        serializer = Serializer(tiny_system_type)
        events = [
            Create(ROOT),
            RequestCreate((0,)),
            RequestCreate((1,)),
            Create((0,)),
            Create((1,)),   # concurrent siblings
            RequestCommit((1,), "v1"),
            Commit((1,)),
        ]
        serializer.extend_all(events)
        beta = serializer.serial_schedule_for(ROOT)
        # (1,) committed: its events are now visible to the root.
        assert Create((1,)) in beta
        assert Commit((1,)) in beta
        # (0,) is still live and uncommitted: invisible to the root.
        assert Create((0,)) not in beta


class TestAgainstRandomSchedules:
    def test_output_write_equivalent_to_visible(self, nested_system_type):
        """Lemma 33's postcondition on random concurrent schedules."""
        system = RWLockingSystem(nested_system_type)
        for alpha in random_schedules(system, 8, 250, seed=21):
            serializer = Serializer(nested_system_type)
            serializer.extend_all(alpha)
            for name in serializer.tracked():
                if nested_system_type.is_access(name):
                    continue
                beta = serializer.serial_schedule_for(name)
                assert write_equivalent(
                    nested_system_type, visible(alpha, name), beta
                )

    def test_one_shot_wrapper_matches_incremental(self, tiny_system_type):
        system = RWLockingSystem(tiny_system_type)
        for alpha in random_schedules(system, 5, 150, seed=23):
            serializer = Serializer(tiny_system_type)
            serializer.extend_all(alpha)
            from repro.core.visibility import is_orphan

            if not is_orphan(alpha, ROOT) and Create(ROOT) in alpha:
                assert serialize_visible(
                    tiny_system_type, alpha, ROOT
                ) == serializer.serial_schedule_for(ROOT)

    def test_orphan_rejected_by_wrapper(self, tiny_system_type):
        alpha = (Create(ROOT), RequestCreate((0,)), Abort((0,)))
        with pytest.raises(SerializationFailure):
            serialize_visible(tiny_system_type, alpha, (0,))
