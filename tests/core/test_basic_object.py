"""Unit tests for basic object automata (Section 3.2 / 4.3 construction)."""

import pytest

from repro.adt import Counter, IntRegister
from repro.core.basic_object import BasicObjectAutomaton
from repro.core.events import Create, RequestCommit
from repro.core.names import ROOT, SystemTypeBuilder
from repro.errors import NotEnabledError


@pytest.fixture
def system_type():
    builder = SystemTypeBuilder()
    builder.add_object(Counter("c"))
    top = builder.add_child(ROOT)
    builder.add_access(top, "c", Counter.increment(2))
    builder.add_access(top, "c", Counter.value())
    return builder.build()


@pytest.fixture
def automaton(system_type):
    return BasicObjectAutomaton(system_type, "c")


INC = (0, 0)
READ = (0, 1)


class TestSignature:
    def test_inputs_are_local_creates(self, automaton):
        assert automaton.is_input(Create(INC))
        assert not automaton.is_input(Create((0,)))
        assert not automaton.is_input(RequestCommit(INC, 2))

    def test_outputs_are_local_responses(self, automaton):
        assert automaton.is_output(RequestCommit(INC, 2))
        assert not automaton.is_output(RequestCommit((0,), 2))


class TestBehaviour:
    def test_create_makes_access_pending(self, automaton):
        automaton.apply(Create(INC))
        assert automaton.pending == {INC}

    def test_response_applies_operation(self, automaton):
        automaton.apply(Create(INC))
        enabled = list(automaton.enabled_outputs())
        assert enabled == [RequestCommit(INC, 2)]
        automaton.apply(enabled[0])
        assert automaton.value == 2
        assert automaton.pending == set()

    def test_read_does_not_change_value(self, automaton):
        automaton.apply(Create(READ))
        automaton.apply(RequestCommit(READ, 0))
        assert automaton.value == 0

    def test_wrong_value_not_enabled(self, automaton):
        automaton.apply(Create(INC))
        assert not automaton.output_enabled(RequestCommit(INC, 99))
        with pytest.raises(NotEnabledError):
            automaton.apply(RequestCommit(INC, 99))

    def test_response_without_create_rejected(self, automaton):
        with pytest.raises(NotEnabledError):
            automaton.apply(RequestCommit(INC, 2))

    def test_pending_order_independent(self, automaton):
        automaton.apply(Create(INC))
        automaton.apply(Create(READ))
        enabled = set(automaton.enabled_outputs())
        assert enabled == {RequestCommit(INC, 2), RequestCommit(READ, 0)}

    def test_value_evolution_across_accesses(self, automaton):
        automaton.apply(Create(INC))
        automaton.apply(RequestCommit(INC, 2))
        automaton.apply(Create(READ))
        # The read now sees the incremented value.
        assert list(automaton.enabled_outputs()) == [RequestCommit(READ, 2)]

    def test_snapshot_restore(self, automaton):
        automaton.apply(Create(INC))
        saved = automaton.snapshot()
        automaton.apply(RequestCommit(INC, 2))
        automaton.restore(saved)
        assert automaton.value == 0
        assert automaton.pending == {INC}
