"""Whole-system tests with non-default transaction logics.

Theorem 34 must hold regardless of the transaction automata plugged in:
the correctness definition quantifies over the same automata in both
systems.  These tests drive R/W Locking systems built with sequential,
subset and free logics through the checker.
"""

import pytest

from repro.core.correctness import check_serial_correctness
from repro.core.names import ROOT
from repro.core.systems import RWLockingSystem
from repro.core.transaction import (
    FreeLogic,
    ParallelLogic,
    SequentialLogic,
    SubsetLogic,
)
from repro.ioa.explorer import random_schedules


def check_factory(system_type, factory, seed, count=6):
    system = RWLockingSystem(system_type, logic_factory=factory)
    for alpha in random_schedules(system, count, 300, seed=seed):
        report = check_serial_correctness(system, alpha)
        assert report.ok, [
            (item.transaction, item.failures)
            for item in report.failed()
        ]


class TestLogicFactories:
    def test_sequential_everywhere(self, nested_system_type):
        check_factory(
            nested_system_type, lambda name: SequentialLogic(), seed=201
        )

    def test_free_everywhere(self, nested_system_type):
        check_factory(
            nested_system_type, lambda name: FreeLogic(), seed=203
        )

    def test_mixed_logics(self, nested_system_type):
        def factory(name):
            if len(name) == 0:
                return ParallelLogic()
            if len(name) == 1:
                return SequentialLogic()
            return FreeLogic()

        check_factory(nested_system_type, factory, seed=205)

    def test_subset_logic_skips_children(self, nested_system_type):
        """A transaction that only ever requests one child still yields
        correct systems (unrequested subtrees simply never run)."""

        def factory(name):
            children = nested_system_type.children(name)
            return SubsetLogic(children[:1])

        system = RWLockingSystem(nested_system_type, logic_factory=factory)
        for alpha in random_schedules(system, 5, 300, seed=207):
            report = check_serial_correctness(system, alpha)
            assert report.ok
            # Second children are never created.
            from repro.core.events import Create

            created = {
                event.transaction
                for event in alpha
                if isinstance(event, Create)
            }
            for top in nested_system_type.children(ROOT):
                for child in nested_system_type.children(top)[1:]:
                    assert child not in created

    def test_free_logic_commits_early(self, nested_system_type):
        """FreeLogic may request commit before requesting any children;
        the schedulers still sequence returns correctly."""
        from repro.core.events import Commit, RequestCommit

        system = RWLockingSystem(
            nested_system_type,
            logic_factory=lambda name: FreeLogic(),
            propose_aborts=False,
        )
        saw_childless_commit = False
        for alpha in random_schedules(system, 10, 200, seed=209):
            for top in nested_system_type.children(ROOT):
                if Commit(top) in alpha:
                    requested = any(
                        isinstance(event, RequestCommit)
                        and event.transaction == top
                        and event.value == ()
                        for event in alpha
                    )
                    if requested:
                        saw_childless_commit = True
            report = check_serial_correctness(system, alpha)
            assert report.ok
        assert saw_childless_commit
