"""Unit tests for transaction automata and logics."""

import pytest

from repro.core.events import (
    Create,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
)
from repro.core.transaction import (
    FreeLogic,
    ParallelLogic,
    SequentialLogic,
    SubsetLogic,
    TransactionAutomaton,
    default_summary,
)
from repro.errors import NotEnabledError


@pytest.fixture
def automaton(nested_system_type):
    """The automaton for T0.0, which has children (0,0), (0,1), (0,2)."""
    return TransactionAutomaton(
        nested_system_type, (0,), ParallelLogic()
    )


class TestSignature:
    def test_inputs(self, automaton):
        assert automaton.is_input(Create((0,)))
        assert automaton.is_input(ReportCommit((0, 0), "v"))
        assert automaton.is_input(ReportAbort((0, 1)))
        assert not automaton.is_input(Create((1,)))
        assert not automaton.is_input(ReportCommit((1, 0), "v"))

    def test_outputs(self, automaton):
        assert automaton.is_output(RequestCreate((0, 0)))
        assert automaton.is_output(RequestCommit((0,), "v"))
        assert not automaton.is_output(RequestCreate((1, 0)))
        assert not automaton.is_output(RequestCommit((1,), "v"))


class TestParallelLogic:
    def test_nothing_enabled_before_create(self, automaton):
        assert list(automaton.enabled_outputs()) == []

    def test_all_children_offered_after_create(self, automaton):
        automaton.apply(Create((0,)))
        enabled = set(automaton.enabled_outputs())
        assert RequestCreate((0, 0)) in enabled
        assert RequestCreate((0, 1)) in enabled
        assert RequestCreate((0, 2)) in enabled
        # Not ready to commit with unrequested children.
        assert not any(
            isinstance(action, RequestCommit) for action in enabled
        )

    def test_commit_after_all_reports(self, nested_system_type):
        automaton = TransactionAutomaton(
            nested_system_type, (0,), ParallelLogic()
        )
        automaton.apply(Create((0,)))
        for child in nested_system_type.children((0,)):
            automaton.apply(RequestCreate(child))
        for child in nested_system_type.children((0,)):
            automaton.apply(ReportCommit(child, "v"))
        enabled = list(automaton.enabled_outputs())
        assert len(enabled) == 1
        assert isinstance(enabled[0], RequestCommit)

    def test_no_outputs_after_request_commit(self, nested_system_type):
        automaton = TransactionAutomaton(
            nested_system_type, (0,), FreeLogic()
        )
        automaton.apply(Create((0,)))
        value = next(iter(automaton.enabled_outputs()))
        automaton.apply(RequestCommit((0,), default_summary(automaton.view)))
        assert list(automaton.enabled_outputs()) == []

    def test_duplicate_request_create_not_enabled(self, automaton):
        automaton.apply(Create((0,)))
        automaton.apply(RequestCreate((0, 0)))
        assert RequestCreate((0, 0)) not in set(automaton.enabled_outputs())

    def test_disabled_output_raises(self, automaton):
        with pytest.raises(NotEnabledError):
            automaton.apply(RequestCreate((0, 0)))


class TestSequentialLogic:
    def test_one_child_at_a_time(self, nested_system_type):
        automaton = TransactionAutomaton(
            nested_system_type, (0,), SequentialLogic()
        )
        automaton.apply(Create((0,)))
        enabled = [
            action
            for action in automaton.enabled_outputs()
            if isinstance(action, RequestCreate)
        ]
        assert enabled == [RequestCreate((0, 0))]
        automaton.apply(RequestCreate((0, 0)))
        # Nothing more until the first child reports.
        assert list(automaton.enabled_outputs()) == []
        automaton.apply(ReportAbort((0, 0)))
        enabled = list(automaton.enabled_outputs())
        assert enabled == [RequestCreate((0, 1))]


class TestSubsetLogic:
    def test_only_wanted_children(self, nested_system_type):
        automaton = TransactionAutomaton(
            nested_system_type, (0,), SubsetLogic([(0, 1)])
        )
        automaton.apply(Create((0,)))
        requests = [
            action
            for action in automaton.enabled_outputs()
            if isinstance(action, RequestCreate)
        ]
        assert requests == [RequestCreate((0, 1))]

    def test_commit_ignores_unwanted(self, nested_system_type):
        automaton = TransactionAutomaton(
            nested_system_type, (0,), SubsetLogic([(0, 1)])
        )
        automaton.apply(Create((0,)))
        automaton.apply(RequestCreate((0, 1)))
        automaton.apply(ReportCommit((0, 1), "v"))
        assert any(
            isinstance(action, RequestCommit)
            for action in automaton.enabled_outputs()
        )


class TestLocalView:
    def test_reports_recorded_in_arrival_order(self, automaton):
        automaton.apply(Create((0,)))
        automaton.apply(RequestCreate((0, 1)))
        automaton.apply(RequestCreate((0, 0)))
        automaton.apply(ReportCommit((0, 1), "b"))
        automaton.apply(ReportAbort((0, 0)))
        reports = automaton.view.reports
        assert [r.child for r in reports] == [(0, 1), (0, 0)]
        assert reports[0].committed and not reports[1].committed

    def test_duplicate_report_recorded_once(self, automaton):
        automaton.apply(Create((0,)))
        automaton.apply(RequestCreate((0, 0)))
        automaton.apply(ReportCommit((0, 0), "v"))
        automaton.apply(ReportCommit((0, 0), "v"))
        assert len(automaton.view.reports) == 1

    def test_default_summary_is_deterministic(self, automaton):
        automaton.apply(Create((0,)))
        automaton.apply(RequestCreate((0, 0)))
        automaton.apply(ReportCommit((0, 0), "v"))
        assert default_summary(automaton.view) == default_summary(
            automaton.view
        )

    def test_snapshot_restore(self, automaton):
        automaton.apply(Create((0,)))
        saved = automaton.snapshot()
        automaton.apply(RequestCreate((0, 0)))
        automaton.restore(saved)
        assert automaton.view.requested == ()
