"""Unit tests for the generic scheduler (Section 5.2)."""

import pytest

from repro.core.events import (
    Abort,
    Commit,
    Create,
    InformAbortAt,
    InformCommitAt,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
)
from repro.core.generic_scheduler import GenericScheduler
from repro.core.names import ROOT


@pytest.fixture
def scheduler(tiny_system_type):
    return GenericScheduler(tiny_system_type)


class TestConcurrencyFreedom:
    def test_siblings_may_run_concurrently(self, scheduler):
        """Unlike the serial scheduler, both siblings can be live."""
        scheduler.apply(Create(ROOT))
        scheduler.apply(RequestCreate((0,)))
        scheduler.apply(RequestCreate((1,)))
        scheduler.apply(Create((0,)))
        assert scheduler.output_enabled(Create((1,)))
        scheduler.apply(Create((1,)))

    def test_abort_after_work(self, scheduler):
        """The generic scheduler may abort a created, running transaction."""
        scheduler.apply(Create(ROOT))
        scheduler.apply(RequestCreate((0,)))
        scheduler.apply(Create((0,)))
        assert scheduler.output_enabled(Abort((0,)))
        scheduler.apply(Abort((0,)))
        # But never twice, and never after a return.
        assert not scheduler.output_enabled(Abort((0,)))
        assert not scheduler.output_enabled(Commit((0,)))

    def test_root_is_never_returned(self, scheduler):
        scheduler.apply(Create(ROOT))
        assert not scheduler.output_enabled(Abort(ROOT))
        scheduler.apply(RequestCommit(ROOT, "done"))
        assert not scheduler.output_enabled(Commit(ROOT))
        assert Commit(ROOT) not in set(scheduler.enabled_outputs())


class TestCommitRules:
    def test_commit_waits_for_requested_children(self, scheduler):
        scheduler.apply(Create(ROOT))
        scheduler.apply(RequestCreate((0,)))
        scheduler.apply(Create((0,)))
        scheduler.apply(RequestCreate((0, 0)))
        scheduler.apply(RequestCommit((0,), "v"))
        assert not scheduler.output_enabled(Commit((0,)))
        scheduler.apply(Abort((0, 0)))
        assert scheduler.output_enabled(Commit((0,)))


class TestInformOperations:
    def commit_one(self, scheduler):
        scheduler.apply(Create(ROOT))
        scheduler.apply(RequestCreate((0,)))
        scheduler.apply(Create((0,)))
        scheduler.apply(RequestCommit((0,), "v"))
        scheduler.apply(Commit((0,)))

    def test_inform_commit_after_commit(self, scheduler):
        self.commit_one(scheduler)
        assert scheduler.output_enabled(InformCommitAt("x", (0,)))
        assert not scheduler.output_enabled(InformAbortAt("x", (0,)))

    def test_inform_abort_after_abort(self, scheduler):
        scheduler.apply(Create(ROOT))
        scheduler.apply(RequestCreate((0,)))
        scheduler.apply(Abort((0,)))
        assert scheduler.output_enabled(InformAbortAt("x", (0,)))
        assert not scheduler.output_enabled(InformCommitAt("x", (0,)))

    def test_inform_never_for_root(self, scheduler):
        scheduler.apply(Create(ROOT))
        assert not scheduler.output_enabled(InformCommitAt("x", ROOT))

    def test_once_informs_suppresses_proposals(self, scheduler):
        self.commit_one(scheduler)
        scheduler.apply(InformCommitAt("x", (0,)))
        assert InformCommitAt("x", (0,)) not in set(
            scheduler.enabled_outputs()
        )
        # Still accepted on replay.
        assert scheduler.output_enabled(InformCommitAt("x", (0,)))

    def test_relevant_informs_limits_targets(self, nested_system_type):
        scheduler = GenericScheduler(nested_system_type)
        scheduler.apply(Create(ROOT))
        scheduler.apply(RequestCreate((0,)))
        scheduler.apply(Create((0,)))
        scheduler.apply(RequestCreate((0, 2)))  # the balance access
        scheduler.apply(Create((0, 2)))
        scheduler.apply(RequestCommit((0, 2), 100))
        scheduler.apply(Commit((0, 2)))
        proposals = {
            action
            for action in scheduler.enabled_outputs()
            if isinstance(action, InformCommitAt)
        }
        # (0,2) accesses only "acct"; no INFORM proposed at x or s.
        assert proposals == {InformCommitAt("acct", (0, 2))}


class TestLemma25StateCorrespondence:
    def test_state_matches_schedule(self, scheduler):
        scheduler.apply(Create(ROOT))
        scheduler.apply(RequestCreate((0,)))
        scheduler.apply(RequestCreate((1,)))
        scheduler.apply(Create((0,)))
        scheduler.apply(Abort((1,)))
        scheduler.apply(RequestCommit((0,), "v"))
        scheduler.apply(Commit((0,)))
        assert scheduler.create_requested == {ROOT, (0,), (1,)}
        assert scheduler.created == {ROOT, (0,)}
        assert scheduler.commit_requested == {((0,), "v")}
        assert scheduler.committed == {(0,)}
        assert scheduler.aborted == {(1,)}
        assert scheduler.returned == scheduler.committed | scheduler.aborted
        assert not (scheduler.committed & scheduler.aborted)


class TestProposalHygiene:
    def test_proposed_outputs_are_enabled(self, scheduler, rng):
        """Every action yielded by enabled_outputs passes output_enabled."""
        import random
        from repro.core.systems import RWLockingSystem

        for action in scheduler.enabled_outputs():
            assert scheduler.output_enabled(action)
        scheduler.apply(Create(ROOT))
        for action in scheduler.enabled_outputs():
            assert scheduler.output_enabled(action)
