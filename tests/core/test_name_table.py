"""Property tests: NameTable agrees with the tuple-prefix reference.

The interned :class:`~repro.core.names.NameTable` backs the engine's
lock-grant fast path, so its answers must match the module-level
reference implementations (`is_ancestor`, `is_descendant`, `lca`,
`chain_between`) on every input -- including names it has never
interned and tables whose intern pool is capped.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.names import (
    ROOT,
    NameTable,
    chain_between,
    default_table,
    intern_name,
    is_ancestor,
    is_descendant,
    lca,
    parent,
)
from repro.errors import SystemTypeError

names = st.lists(st.integers(0, 3), max_size=6).map(tuple)

# A "random tree" is just a pair/list of names drawn from a small
# branching alphabet: shared prefixes (ancestry) arise naturally.
name_pairs = st.tuples(names, names)


@st.composite
def tables(draw):
    """A NameTable, possibly capped, pre-warmed with random names."""
    max_size = draw(st.one_of(st.none(), st.integers(1, 8)))
    table = NameTable(max_size=max_size)
    for name in draw(st.lists(names, max_size=8)):
        table.node(name)
    return table


class TestAgainstReference:
    @given(tables(), names, names)
    def test_is_ancestor_matches(self, table, a, b):
        assert table.is_ancestor(a, b) == is_ancestor(a, b)

    @given(tables(), names, names)
    def test_is_descendant_matches(self, table, a, b):
        assert table.is_descendant(a, b) == is_descendant(a, b)

    @given(tables(), names, names)
    def test_lca_matches(self, table, a, b):
        assert table.lca(a, b) == lca(a, b)

    @given(tables(), names)
    def test_parent_matches(self, table, name):
        assert table.parent(name) == parent(name)

    @given(tables(), names, names)
    def test_chain_between_matches(self, table, lower, upper):
        if is_ancestor(upper, lower):
            assert list(table.chain_between(lower, upper)) == list(
                chain_between(lower, upper)
            )
        else:
            # Error parity: both implementations reject non-ancestors
            # with the same exception type.
            with pytest.raises(SystemTypeError):
                list(chain_between(lower, upper))
            with pytest.raises(SystemTypeError):
                list(table.chain_between(lower, upper))

    @given(tables(), names, names)
    @settings(max_examples=50)
    def test_interning_never_changes_answers(self, table, a, b):
        """Asking before and after interning gives the same answer."""
        before = (
            table.is_ancestor(a, b),
            table.lca(a, b),
        )
        table.node(a)
        table.node(b)
        after = (
            table.is_ancestor(a, b),
            table.lca(a, b),
        )
        assert before == after


class TestTableMechanics:
    def test_capped_table_stays_bounded(self):
        table = NameTable(max_size=4)
        for top in range(100):
            assert table.is_ancestor((top,), (top, 1, 2))
        assert len(table) <= 4

    def test_uncapped_table_interns_chains(self):
        table = NameTable()
        table.node((1, 2, 3))
        # The whole ancestor chain is interned in one pass.
        assert len(table) == 4  # root, (1,), (1,2), (1,2,3)

    def test_clear_keeps_root(self):
        table = NameTable()
        table.node((5, 6))
        table.clear()
        assert len(table) == 1
        assert table.is_ancestor(ROOT, (5, 6))

    def test_node_reuses_interned_tuples(self):
        table = NameTable()
        first = table.node((2, 7))
        second = table.node((2, 7))
        assert first is second
        assert first.chain[1] is table.node((2,)).name

    def test_uninterned_leaf_uses_parent_chain(self):
        # The engine never interns access leaves; ancestry tests on a
        # fresh leaf route through its (interned) parent.
        table = NameTable(max_size=3)
        table.node((0, 1))
        leaf = (0, 1, 99)
        assert leaf not in table._nodes
        assert table.is_ancestor((0,), leaf)
        assert table.is_ancestor(leaf, leaf)
        assert not table.is_ancestor((1,), leaf)

    def test_default_table_interns(self):
        name = (90001, 2)
        interned = intern_name(name)
        assert interned == name
        assert intern_name((90001, 2)) is interned
        assert default_table().is_ancestor((90001,), (90001, 2, 5))
