"""Unit tests for the classical conflict-serializability oracle."""

import pytest

from repro.adt import Counter, IntRegister
from repro.core.events import Commit, Create, RequestCommit
from repro.core.names import ROOT, SystemTypeBuilder
from repro.core.serializability import (
    PrecedenceGraph,
    committed_accesses,
    equivalent_serial_order,
    is_conflict_serializable,
    precedence_graph,
    replay_committed_values,
)
from repro.errors import ReproError


@pytest.fixture
def two_writer_type():
    builder = SystemTypeBuilder()
    builder.add_object(IntRegister("x"))
    builder.add_object(IntRegister("y"))
    t1 = builder.add_child(ROOT)
    builder.add_access(t1, "x", IntRegister.write(1))   # (0,0)
    builder.add_access(t1, "y", IntRegister.write(1))   # (0,1)
    t2 = builder.add_child(ROOT)
    builder.add_access(t2, "x", IntRegister.write(2))   # (1,0)
    builder.add_access(t2, "y", IntRegister.write(2))   # (1,1)
    return builder.build()


def committed_run(accesses):
    """A schedule committing every access (and its ancestors)."""
    events = []
    tops = set()
    for access, value in accesses:
        events.append(Create(access))
        events.append(RequestCommit(access, value))
        events.append(Commit(access))
        tops.add(access[:1])
    for top in sorted(tops):
        events.append(Commit(top))
    return tuple(events)


class TestPrecedenceGraph:
    def test_cycle_detection(self):
        graph = PrecedenceGraph()
        graph.add_edge((0,), (1,))
        graph.add_edge((1,), (2,))
        assert graph.find_cycle() is None
        graph.add_edge((2,), (0,))
        cycle = graph.find_cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]

    def test_self_edges_ignored(self):
        graph = PrecedenceGraph()
        graph.add_edge((0,), (0,))
        assert graph.edges == {}

    def test_topological_order(self):
        graph = PrecedenceGraph()
        graph.add_edge((1,), (0,))
        graph.add_edge((2,), (1,))
        order = graph.topological_order()
        assert order.index((2,)) < order.index((1,)) < order.index((0,))

    def test_topological_order_rejects_cycle(self):
        graph = PrecedenceGraph()
        graph.add_edge((0,), (1,))
        graph.add_edge((1,), (0,))
        with pytest.raises(ReproError):
            graph.topological_order()


class TestCommittedAccesses:
    def test_only_fully_committed_chains(self, two_writer_type):
        alpha = (
            Create((0, 0)),
            RequestCommit((0, 0), None),
            Commit((0, 0)),
            # (0,) never commits: the access must be excluded.
            Create((1, 0)),
            RequestCommit((1, 0), None),
            Commit((1, 0)),
            Commit((1,)),
        )
        result = committed_accesses(two_writer_type, alpha)
        assert [item.access for item in result] == [(1, 0)]

    def test_positions_preserved(self, two_writer_type):
        alpha = committed_run([((0, 0), None), ((1, 0), None)])
        result = committed_accesses(two_writer_type, alpha)
        assert result[0].position < result[1].position


class TestSerializability:
    def test_serial_order_is_serializable(self, two_writer_type):
        alpha = committed_run(
            [((0, 0), None), ((0, 1), None), ((1, 0), 1), ((1, 1), 1)]
        )
        assert is_conflict_serializable(two_writer_type, alpha)
        report = equivalent_serial_order(two_writer_type, alpha)
        assert report.serializable
        assert report.serial_order == [(0,), (1,)]
        assert report.state_equivalent

    def test_classic_non_serializable_interleaving(self, two_writer_type):
        # T0.0 writes x first, T0.1 writes y first, then they cross.
        alpha = committed_run(
            [((0, 0), None), ((1, 1), None), ((0, 1), 2), ((1, 0), 1)]
        )
        assert not is_conflict_serializable(two_writer_type, alpha)
        report = equivalent_serial_order(two_writer_type, alpha)
        assert not report.serializable
        assert report.cycle is not None

    def test_read_read_never_conflicts(self):
        builder = SystemTypeBuilder()
        builder.add_object(IntRegister("x"))
        t1 = builder.add_child(ROOT)
        builder.add_access(t1, "x", IntRegister.read())
        t2 = builder.add_child(ROOT)
        builder.add_access(t2, "x", IntRegister.read())
        system_type = builder.build()
        alpha = committed_run([((0, 0), 0), ((1, 0), 0)])
        graph = precedence_graph(system_type, alpha)
        assert graph.edges == {}

    def test_replay_respects_order(self, two_writer_type):
        alpha = committed_run(
            [((0, 0), None), ((0, 1), None), ((1, 0), 1), ((1, 1), 1)]
        )
        forward = replay_committed_values(
            two_writer_type, alpha, order=[(0,), (1,)]
        )
        backward = replay_committed_values(
            two_writer_type, alpha, order=[(1,), (0,)]
        )
        assert forward == {"x": 2, "y": 2}
        assert backward == {"x": 1, "y": 1}


class TestAgainstMossRuns:
    def test_rw_locking_schedules_classically_serializable(
        self, nested_system_type
    ):
        """Every Moss schedule passes the classical oracle too."""
        from repro.core.systems import RWLockingSystem
        from repro.ioa.explorer import random_schedules

        system = RWLockingSystem(nested_system_type)
        for alpha in random_schedules(system, 10, 300, seed=91):
            report = equivalent_serial_order(nested_system_type, alpha)
            assert report.serializable, report.cycle
            assert report.state_equivalent is not False

    def test_engine_traces_classically_serializable(self):
        """Traced engine runs pass the classical oracle."""
        import random

        from repro.engine import Engine
        from repro.errors import LockDenied

        rng = random.Random(5)
        engine = Engine(
            [Counter("c"), IntRegister("x")], trace=True
        )
        tops = [engine.begin_top() for _ in range(4)]
        operations = [
            ("c", Counter.increment(1)),
            ("c", Counter.value()),
            ("x", IntRegister.add(2)),
            ("x", IntRegister.read()),
        ]
        for _ in range(40):
            txn = rng.choice(tops)
            if not txn.is_active:
                continue
            try:
                txn.perform(*rng.choice(operations))
            except LockDenied:
                pass
        for txn in tops:
            if txn.is_active:
                txn.commit()
        system_type = engine.recorder.system_type(engine.specs)
        alpha = engine.recorder.schedule()
        report = equivalent_serial_order(system_type, alpha)
        assert report.serializable
        assert report.state_equivalent
