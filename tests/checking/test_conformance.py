"""Integration tests: engine traces refine the model and satisfy Theorem 34."""

import random

import pytest

from repro.adt import BankAccount, Counter, IntRegister
from repro.checking import check_engine_trace, trace_logic_factory
from repro.engine import Engine
from repro.errors import EngineError, LockDenied


def drive_simple_run(policy="moss-rw"):
    engine = Engine(
        [BankAccount("a", 100), BankAccount("b", 0), IntRegister("x")],
        policy=policy,
        trace=True,
    )
    t1 = engine.begin_top()
    leg = t1.begin_child()
    leg.perform("a", BankAccount.withdraw(30))
    leg.perform("b", BankAccount.deposit(30))
    leg.commit("moved")
    t2 = engine.begin_top()
    t2.perform("x", IntRegister.read())
    doomed = t1.begin_child()
    doomed.perform("x", IntRegister.read())
    doomed.abort()
    t1.commit("transfer")
    t2.perform("x", IntRegister.add(1))
    t2.commit("bump")
    return engine


class TestConformance:
    def test_moss_trace_conforms(self):
        report = check_engine_trace(drive_simple_run())
        assert report.refinement_ok, report.rejection
        assert report.ok
        assert report.trace_length > 20

    def test_exclusive_trace_conforms(self):
        engine = Engine([IntRegister("x")], policy="exclusive", trace=True)
        one = engine.begin_top()
        one.perform("x", IntRegister.read())
        one.commit()
        two = engine.begin_top()
        two.perform("x", IntRegister.add(2))
        two.abort()
        report = check_engine_trace(engine)
        assert report.ok, report.rejection

    def test_flat_policy_rejected(self):
        engine = Engine([IntRegister("x")], policy="flat-2pl", trace=True)
        with pytest.raises(EngineError):
            check_engine_trace(engine)

    def test_untraced_engine_rejected(self):
        engine = Engine([IntRegister("x")])
        with pytest.raises(EngineError):
            check_engine_trace(engine)

    def test_random_engine_runs_conform(self):
        """Randomised interleavings of engine calls all conform."""
        rng = random.Random(17)
        for trial in range(5):
            engine = Engine(
                [Counter("c"), IntRegister("x")], trace=True
            )
            tops = [engine.begin_top() for _ in range(3)]
            live = {top.name: top for top in tops}
            operations = [
                ("c", Counter.increment(1)),
                ("c", Counter.value()),
                ("x", IntRegister.add(2)),
                ("x", IntRegister.read()),
            ]
            for _ in range(25):
                if not live:
                    break
                txn = rng.choice(list(live.values()))
                roll = rng.random()
                if roll < 0.55:
                    object_name, operation = rng.choice(operations)
                    try:
                        txn.perform(object_name, operation)
                    except LockDenied:
                        pass
                elif roll < 0.7:
                    child = txn.begin_child()
                    try:
                        child.perform(*rng.choice(operations))
                    except LockDenied:
                        pass
                    if rng.random() < 0.5:
                        child.commit()
                    else:
                        child.abort()
                elif roll < 0.85:
                    if not txn.live_children():
                        txn.commit()
                        del live[txn.name]
                else:
                    txn.abort()
                    del live[txn.name]
            for txn in list(live.values()):
                for child in txn.live_children():
                    child.abort()
                txn.commit()
            report = check_engine_trace(engine)
            assert report.ok, (trial, report.rejection)


class TestLockstep:
    """Engine/M(X) lock-table lockstep (guards the grant fast path)."""

    def test_clean_run_reports_lockstep(self):
        report = check_engine_trace(drive_simple_run())
        assert report.lockstep_ok
        assert report.lockstep_error is None
        assert report.ok

    def test_exclusive_run_reports_lockstep(self):
        engine = Engine([IntRegister("x")], policy="exclusive", trace=True)
        top = engine.begin_top()
        top.perform("x", IntRegister.add(3))
        top.commit()
        report = check_engine_trace(engine)
        assert report.lockstep_ok
        assert report.ok

    def test_corrupted_holder_table_fails_lockstep(self):
        """A holder the trace never granted must break the comparison:
        this is what a fast-path bug that strands or invents a lock
        would look like."""
        engine = drive_simple_run()
        engine.locks.object("x").write_holders.add((9, 9))
        report = check_engine_trace(engine)
        assert report.refinement_ok  # the trace itself is still fine
        assert not report.lockstep_ok
        assert "x" in report.lockstep_error
        assert "(9, 9)" in report.lockstep_error
        assert not report.ok

    def test_missing_holder_fails_lockstep(self):
        engine = Engine([Counter("c")], policy="moss-rw", trace=True)
        top = engine.begin_top()
        top.perform("c", Counter.increment(1))
        # Leave `top` live: it still holds the write lock, so silently
        # dropping it from the engine table must be caught.
        engine.locks.object("c").write_holders.discard(top.name)
        report = check_engine_trace(engine)
        assert not report.lockstep_ok
        assert "c" in report.lockstep_error


class TestTraceLogicFactory:
    def test_reconstructs_requests_and_values(self):
        engine = drive_simple_run()
        alpha = engine.recorder.schedule()
        factory = trace_logic_factory(
            alpha, engine.recorder.commit_values
        )
        logic_t1 = factory((0,))
        assert logic_t1.has_commit
        assert logic_t1.commit_value == "transfer"
        assert set(logic_t1.wanted) == {(0, 0), (0, 1)}
        logic_root = factory(())
        assert not logic_root.has_commit
        assert set(logic_root.wanted) == {(0,), (1,)}
