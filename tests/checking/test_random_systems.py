"""Unit tests for random system-type generation."""

from repro.checking.random_systems import (
    RandomSystemConfig,
    random_system_type,
)
from repro.core.names import ROOT


class TestGeneration:
    def test_reproducible(self):
        one = random_system_type(7)
        two = random_system_type(7)
        assert list(one.transactions()) == list(two.transactions())
        assert list(one.all_accesses()) == list(two.all_accesses())

    def test_seed_changes_shape(self):
        one = random_system_type(1)
        two = random_system_type(2)
        assert (
            list(one.transactions()) != list(two.transactions())
            or [str(one.operation_of(a)) for a in one.all_accesses()]
            != [str(two.operation_of(a)) for a in two.all_accesses()]
        )

    def test_config_respected(self):
        config = RandomSystemConfig(objects=5, top_level=4, max_depth=2)
        system_type = random_system_type(0, config)
        assert len(system_type.object_names()) == 5
        assert len(system_type.children(ROOT)) == 4
        for name in system_type.transactions():
            assert len(name) <= config.max_depth + 1

    def test_every_access_well_classified(self):
        system_type = random_system_type(3)
        for access in system_type.all_accesses():
            spec = system_type.access_spec(access)
            assert spec.object_name in system_type.object_names()

    def test_read_fraction_extremes(self):
        config = RandomSystemConfig(read_fraction=1.0)
        system_type = random_system_type(0, config)
        assert all(
            system_type.is_read_access(access)
            for access in system_type.all_accesses()
        )
        config = RandomSystemConfig(read_fraction=0.0)
        system_type = random_system_type(0, config)
        assert not any(
            system_type.is_read_access(access)
            for access in system_type.all_accesses()
        )

    def test_accesses_exist(self):
        system_type = random_system_type(11)
        assert list(system_type.all_accesses())
