"""Tests for the anomaly detector and the orphan inconsistency witness."""

import pytest

from repro.adt import IntRegister
from repro.checking.anomalies import (
    find_register_anomalies,
    orphan_anomaly_witness,
    orphan_demo_system_type,
)
from repro.core.events import Commit, Create, RequestCommit
from repro.core.names import ROOT, SystemTypeBuilder
from repro.core.visibility import is_orphan


@pytest.fixture
def stream_type():
    builder = SystemTypeBuilder()
    builder.add_object(IntRegister("x"))
    top = builder.add_child(ROOT)
    builder.add_access(top, "x", IntRegister.read())      # (0,0)
    builder.add_access(top, "x", IntRegister.write(3))    # (0,1)
    builder.add_access(top, "x", IntRegister.read())      # (0,2)
    builder.add_access(top, "x", IntRegister.add(2))      # (0,3)
    return builder.build()


def responses(*pairs):
    events = []
    for access, value in pairs:
        events.append(Create(access))
        events.append(RequestCommit(access, value))
    return tuple(events)


class TestDetector:
    def test_consistent_stream_clean(self, stream_type):
        alpha = responses(
            ((0, 0), 0), ((0, 1), 0), ((0, 2), 3), ((0, 3), 5)
        )
        assert find_register_anomalies(stream_type, alpha, (0,)) == []

    def test_non_repeatable_read_detected(self, stream_type):
        alpha = responses(((0, 0), 0), ((0, 2), 7))
        anomalies = find_register_anomalies(stream_type, alpha, (0,))
        assert len(anomalies) == 1
        assert anomalies[0].expected == 0
        assert anomalies[0].observed == 7

    def test_read_after_own_write_checked(self, stream_type):
        alpha = responses(((0, 1), 0), ((0, 2), 99))
        anomalies = find_register_anomalies(stream_type, alpha, (0,))
        assert len(anomalies) == 1
        assert anomalies[0].expected == 3

    def test_add_result_checked(self, stream_type):
        alpha = responses(((0, 1), 0), ((0, 3), 4))
        anomalies = find_register_anomalies(stream_type, alpha, (0,))
        assert len(anomalies) == 1
        assert anomalies[0].expected == 5

    def test_subtree_scoping(self, stream_type):
        # Events outside the subtree are ignored.
        alpha = responses(((0, 0), 0), ((0, 2), 7))
        assert find_register_anomalies(stream_type, alpha, (1,)) == []

    def test_str_rendering(self, stream_type):
        alpha = responses(((0, 0), 0), ((0, 2), 7))
        anomaly = find_register_anomalies(stream_type, alpha, (0,))[0]
        assert "T0.0.2" in str(anomaly)


class TestOrphanWitness:
    def test_witness_is_orphan_with_anomaly(self):
        witness = orphan_anomaly_witness()
        assert is_orphan(witness.schedule, witness.orphan)
        assert len(witness.anomalies) == 1
        assert witness.anomalies[0].expected == 0
        assert witness.anomalies[0].observed == 5

    def test_witness_schedule_is_genuine(self):
        """The witness replays on a fresh R/W Locking system."""
        from repro.core.systems import RWLockingSystem

        witness = orphan_anomaly_witness()
        system = RWLockingSystem(witness.system_type)
        for event in witness.schedule:
            system.apply(event)

    def test_non_orphans_in_witness_still_serially_correct(self):
        """Theorem 34 untouched: the root and writer check out fine."""
        from repro.core.correctness import check_schedule

        witness = orphan_anomaly_witness()
        report = check_schedule(witness.system_type, witness.schedule)
        assert report.ok
        checked = {item.transaction for item in report.reports}
        assert witness.orphan not in checked

    def test_non_orphan_subtrees_never_anomalous(self, nested_system_type):
        """The detector finds nothing in non-orphan subtrees of random
        Moss runs -- the positive side of the orphan boundary."""
        from repro.core.systems import RWLockingSystem
        from repro.ioa.explorer import random_schedules

        system = RWLockingSystem(nested_system_type)
        for alpha in random_schedules(system, 10, 300, seed=97):
            for name in nested_system_type.internal_transactions():
                if is_orphan(alpha, name):
                    continue
                assert (
                    find_register_anomalies(
                        nested_system_type, alpha, name
                    )
                    == []
                )
