"""Tests for the batch validation harness."""

from repro.checking import validate_random_schedules
from repro.checking.harness import ValidationStats


class TestValidationStats:
    def test_ok_property(self):
        assert ValidationStats().ok
        assert not ValidationStats(violations=1).ok

    def test_merge(self):
        a = ValidationStats(schedules=2, events=10, violations=1,
                            failures=["x"])
        b = ValidationStats(schedules=3, events=20,
                            transactions_checked=4)
        a.merge(b)
        assert a.schedules == 5
        assert a.events == 30
        assert a.transactions_checked == 4
        assert a.violations == 1


class TestValidateRandomSchedules:
    def test_fixed_system(self, tiny_system_type):
        stats = validate_random_schedules(
            system_type=tiny_system_type, schedules=5, max_steps=150
        )
        assert stats.ok, stats.failures
        assert stats.schedules == 5
        assert stats.events > 0
        assert stats.transactions_checked > 0

    def test_random_system(self):
        stats = validate_random_schedules(
            schedules=4, max_steps=200, system_seed=5, seed=5
        )
        assert stats.ok, stats.failures

    def test_extra_check_hook(self, tiny_system_type):
        stats = validate_random_schedules(
            system_type=tiny_system_type,
            schedules=2,
            max_steps=50,
            extra_check=lambda st, alpha: "flagged",
        )
        assert stats.violations == 2
        assert stats.failures == ["flagged", "flagged"]

    def test_abort_free_mode(self, tiny_system_type):
        stats = validate_random_schedules(
            system_type=tiny_system_type,
            schedules=3,
            max_steps=150,
            propose_aborts=False,
        )
        assert stats.ok
