"""End-to-end validation of the main theorem.

Theorem 34: every schedule of a R/W Locking system is serially correct for
every non-orphan non-access transaction.  Corollary 35: in particular for
the root.  Checked two ways:

* **exhaustively** on a micro system type -- every schedule the system can
  produce, up to a depth bound, is checked;
* **statistically** on larger random system types via seeded random walks.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.adt import IntRegister
from repro.checking import validate_random_schedules
from repro.checking.random_systems import (
    RandomSystemConfig,
    random_system_type,
)
from repro.core.correctness import check_serial_correctness
from repro.core.names import ROOT, SystemTypeBuilder
from repro.core.systems import RWLockingSystem
from repro.ioa.explorer import explore_exhaustive, random_schedules


def micro_system_type():
    """One writer access and one reader access on one register."""
    builder = SystemTypeBuilder()
    builder.add_object(IntRegister("x"))
    writer = builder.add_child(ROOT)
    builder.add_access(writer, "x", IntRegister.write(1))
    reader = builder.add_child(ROOT)
    builder.add_access(reader, "x", IntRegister.read())
    return builder.build()


class TestExhaustive:
    def test_every_schedule_of_micro_system_serially_correct(self):
        system_type = micro_system_type()
        system = RWLockingSystem(system_type)
        result = explore_exhaustive(
            system, max_depth=12, max_schedules=4000, collect_all=False
        )
        assert result.maximal_schedules
        checked = 0
        for alpha in result.maximal_schedules:
            report = check_serial_correctness(system, alpha)
            assert report.ok, [
                (item.transaction, item.failures)
                for item in report.failed()
            ]
            checked += 1
        assert checked >= 100

    def test_every_prefix_also_serially_correct(self):
        """Serial correctness is prefix-closed in practice: check every
        enumerated prefix, not only maximal schedules."""
        system_type = micro_system_type()
        system = RWLockingSystem(system_type, propose_aborts=False)
        result = explore_exhaustive(
            system, max_depth=9, max_schedules=1500
        )
        for alpha in result.schedules:
            report = check_serial_correctness(system, alpha)
            assert report.ok


class TestStatistical:
    @pytest.mark.parametrize("system_seed", range(6))
    def test_random_system_types(self, system_seed):
        stats = validate_random_schedules(
            system_seed=system_seed,
            schedules=6,
            max_steps=300,
            seed=system_seed * 101 + 1,
        )
        assert stats.ok, stats.failures

    def test_read_heavy_and_write_heavy(self):
        for fraction in (0.0, 1.0):
            config = RandomSystemConfig(read_fraction=fraction)
            stats = validate_random_schedules(
                config=config,
                system_seed=9,
                schedules=5,
                max_steps=250,
                seed=int(fraction * 10) + 3,
            )
            assert stats.ok, stats.failures

    def test_deep_nesting(self):
        config = RandomSystemConfig(
            max_depth=4, top_level=2, max_fanout=2
        )
        stats = validate_random_schedules(
            config=config,
            system_seed=4,
            schedules=5,
            max_steps=400,
            seed=44,
        )
        assert stats.ok, stats.failures

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        system_seed=st.integers(0, 10_000),
        walk_seed=st.integers(0, 10_000),
    )
    def test_hypothesis_sweep(self, system_seed, walk_seed):
        """Property: Theorem 34 holds for arbitrary seeds."""
        stats = validate_random_schedules(
            system_seed=system_seed,
            schedules=2,
            max_steps=200,
            seed=walk_seed,
        )
        assert stats.ok, stats.failures


class TestCorollary35:
    def test_root_serially_correct_on_every_walk(self):
        system_type = random_system_type(2)
        system = RWLockingSystem(system_type)
        from repro.core.correctness import check_schedule
        from repro.core.systems import SerialSystem

        serial = SerialSystem(system_type)
        for alpha in random_schedules(system, 8, 250, seed=55):
            report = check_schedule(
                system_type, alpha, serial_system=serial,
                transactions=[ROOT],
            )
            assert report.ok, report.reports[0].failures
