"""Property tests for the paper's supporting lemmas, over random runs.

Each test takes seeded random concurrent schedules of R/W Locking systems
and checks a lemma's statement literally on every prefix or at the end
state, as appropriate.
"""

import pytest

from repro.checking.random_systems import random_system_type
from repro.core.equieffective import project_transaction
from repro.core.events import Abort, Commit, Create, RequestCommit
from repro.core.names import ROOT, is_ancestor, lca
from repro.core.systems import RWLockingSystem, SerialSystem
from repro.core.visibility import (
    essence,
    is_orphan,
    is_orphan_at,
    visible,
    visible_to,
    visible_x,
)
from repro.core.wellformed import is_well_formed
from repro.ioa.explorer import random_schedules


@pytest.fixture(scope="module")
def runs():
    """A shared pool of (system_type, schedule) pairs."""
    pool = []
    for system_seed in range(4):
        system_type = random_system_type(system_seed)
        system = RWLockingSystem(system_type)
        for alpha in random_schedules(system, 4, 250, seed=system_seed + 70):
            pool.append((system_type, alpha))
    return pool


def named_transactions(system_type, alpha):
    created = [e.transaction for e in alpha if isinstance(e, Create)]
    return created


class TestVisibilityLemmas:
    def test_lemma7_1_ancestors_visible(self, runs):
        for system_type, alpha in runs:
            for name in named_transactions(system_type, alpha):
                for length in range(len(name) + 1):
                    assert visible_to(alpha, name[:length], name)

    def test_lemma7_2_visibility_via_lca(self, runs):
        for system_type, alpha in runs:
            created = named_transactions(system_type, alpha)
            for a in created[:6]:
                for b in created[:6]:
                    assert visible_to(alpha, a, b) == visible_to(
                        alpha, a, lca(a, b)
                    )

    def test_lemma7_3_transitivity(self, runs):
        for system_type, alpha in runs:
            created = named_transactions(system_type, alpha)[:5]
            for a in created:
                for b in created:
                    for c in created:
                        if visible_to(alpha, a, b) and visible_to(
                            alpha, b, c
                        ):
                            assert visible_to(alpha, a, c)

    def test_lemma9_projection(self, runs):
        """visible(alpha,T)|T' == alpha|T' when T' is visible to T,
        empty otherwise."""
        for system_type, alpha in runs:
            created = named_transactions(system_type, alpha)[:5]
            for name in created:
                vis = visible(alpha, name)
                for other in created[:4]:
                    projected = project_transaction(vis, other)
                    if visible_to(alpha, other, name):
                        assert projected == project_transaction(
                            alpha, other
                        )
                    else:
                        assert projected == ()

    def test_lemma12_visible_preserves_well_formedness(self, runs):
        for system_type, alpha in runs:
            if not is_well_formed(system_type, alpha, locking=True):
                continue
            for name in named_transactions(system_type, alpha)[:4]:
                assert is_well_formed(system_type, visible(alpha, name))

    def test_lemma27_visible_transactions_not_orphans(self, runs):
        for system_type, alpha in runs:
            created = named_transactions(system_type, alpha)
            non_orphans = [
                name for name in created if not is_orphan(alpha, name)
            ]
            for name in non_orphans[:5]:
                for other in created[:8]:
                    if visible_to(alpha, other, name):
                        assert not is_orphan(alpha, other)


class TestLockingObjectLemmas:
    def replay_mx(self, system_type, alpha, object_name):
        from repro.core.rw_object import RWLockingObject

        mx = RWLockingObject(system_type, object_name)
        for event in alpha:
            if mx.has_action(event):
                mx.apply(event)
        return mx

    def test_lemma21_holders_chain_with_write_holder(self, runs):
        """Along every prefix: a write-lockholder is ancestor-related to
        every other lockholder."""
        for system_type, alpha in runs:
            for object_name in system_type.object_names():
                from repro.core.rw_object import RWLockingObject

                mx = RWLockingObject(system_type, object_name)
                for event in alpha:
                    if not mx.has_action(event):
                        continue
                    mx.apply(event)
                    for a in mx.write_lockholders:
                        for b in (
                            mx.write_lockholders | mx.read_lockholders
                        ):
                            assert is_ancestor(a, b) or is_ancestor(b, a)

    def test_lemma21_corollary_map_keys_are_write_holders(self, runs):
        for system_type, alpha in runs:
            for object_name in system_type.object_names():
                mx = self.replay_mx(system_type, alpha, object_name)
                assert set(mx.map) == set(mx.write_lockholders)

    def test_lemma22_committed_access_implies_lockholder(self, runs):
        for system_type, alpha in runs:
            for object_name in system_type.object_names():
                mx = self.replay_mx(system_type, alpha, object_name)
                projected = [
                    event for event in alpha if mx.has_action(event)
                ]
                for event in alpha:
                    if not isinstance(event, RequestCommit):
                        continue
                    access = event.transaction
                    if not (
                        system_type.is_access(access)
                        and system_type.object_of(access) == object_name
                    ):
                        continue
                    if is_orphan_at(projected, object_name, access):
                        continue
                    # Find the highest ancestor the access committed to at X.
                    from repro.core.visibility import committed_at

                    highest = access
                    for length in range(len(access) - 1, -1, -1):
                        if committed_at(
                            projected, object_name, access, access[:length]
                        ):
                            highest = access[:length]
                        else:
                            break
                    if system_type.is_read_access(access):
                        assert highest in mx.read_lockholders
                    else:
                        assert highest in mx.write_lockholders

    def test_lemma23_essence_reaches_stored_version(self, runs):
        """essence(visible_X(alpha,T)) is a schedule of X reaching
        map(T') for the least write-lockholding ancestor T'."""
        from repro.core.equieffective import replay_basic_object

        for system_type, alpha in runs:
            for object_name in system_type.object_names():
                mx = self.replay_mx(system_type, alpha, object_name)
                projected = [
                    event for event in alpha if mx.has_action(event)
                ]
                for name in named_transactions(system_type, alpha)[:4]:
                    if is_orphan_at(projected, object_name, name):
                        continue
                    beta = essence(
                        visible_x(projected, system_type, object_name, name),
                        system_type,
                        object_name,
                    )
                    final = replay_basic_object(
                        system_type, object_name, beta
                    )
                    assert final is not None, "essence not a schedule"
                    holder = next(
                        (
                            name[:length]
                            for length in range(len(name), -1, -1)
                            if name[:length] in mx.write_lockholders
                        ),
                        None,
                    )
                    if holder is not None:
                        spec = system_type.object_spec(object_name)
                        assert spec.values_equal(
                            final.value, mx.map[holder]
                        )

    def test_lemma24_28_visible_is_basic_object_schedule(self, runs):
        """Lemma 28: visible(alpha,T)|X is a schedule of basic object X
        for every non-orphan T."""
        from repro.core.equieffective import (
            is_basic_object_schedule,
            project_object,
        )

        for system_type, alpha in runs:
            for name in named_transactions(system_type, alpha)[:4]:
                if is_orphan(alpha, name):
                    continue
                vis = visible(alpha, name)
                for object_name in system_type.object_names():
                    assert is_basic_object_schedule(
                        system_type,
                        object_name,
                        project_object(system_type, object_name, vis),
                    )


class TestSerialSystemLemmas:
    def test_lemma13_visible_of_serial_is_serial(self):
        """visible(alpha,T) of a serial schedule is a serial schedule."""
        from repro.core.correctness import replay_serial

        for system_seed in range(3):
            system_type = random_system_type(system_seed)
            serial = SerialSystem(system_type)
            for alpha in random_schedules(serial, 3, 250,
                                          seed=system_seed + 80):
                for name in named_transactions(system_type, alpha)[:4]:
                    vis = visible(alpha, name)
                    assert replay_serial(serial, vis) is None
