"""E8: with every access designated a write, Moss' algorithm degenerates
into exclusive locking.

Checked at three levels:

1. M(X) automata: an all-writes R/W Locking object and a reference
   exclusive-locking object (independent implementation written here)
   accept exactly the same schedules, enumerated exhaustively.
2. Whole systems: the all-writes R/W Locking system's schedule set equals
   the schedule set of the same system over the reference objects.
3. Engines: moss-rw and exclusive engines make identical lock decisions on
   all-write workloads.
"""

import pytest

from repro.adt import Counter, IntRegister
from repro.core.events import Create, InformAbortAt, InformCommitAt, RequestCommit
from repro.core.names import ROOT, SystemTypeBuilder, is_ancestor, is_descendant, parent
from repro.core.rw_object import RWLockingObject
from repro.engine import Engine
from repro.errors import LockDenied
from repro.ioa.automaton import Automaton
from repro.ioa.explorer import explore_exhaustive


class ReferenceExclusiveObject(Automaton):
    """An independently-written exclusive-locking object (as in [LM]).

    One holder set, one version map; every access conflicts with every
    non-ancestor holder.  Deliberately *not* sharing code with
    RWLockingObject so the comparison means something.
    """

    state_attrs = ("holders", "versions", "requested", "done")

    def __init__(self, system_type, object_name):
        super().__init__("REF(%s)" % object_name)
        self.system_type = system_type
        self.object_name = object_name
        self.spec = system_type.object_spec(object_name)
        self.holders = {ROOT}
        self.versions = {ROOT: self.spec.initial_value()}
        self.requested = set()
        self.done = set()

    def _local(self, name):
        return (
            self.system_type.is_access(name)
            and self.system_type.object_of(name) == self.object_name
        )

    def is_input(self, action):
        if isinstance(action, Create):
            return self._local(action.transaction)
        if isinstance(action, (InformCommitAt, InformAbortAt)):
            return (
                action.object_name == self.object_name
                and action.transaction != ROOT
            )
        return False

    def is_output(self, action):
        return isinstance(action, RequestCommit) and self._local(
            action.transaction
        )

    def enabled_outputs(self):
        for name in sorted(self.requested - self.done):
            if all(is_ancestor(h, name) for h in self.holders):
                value = self.versions[max(self.holders, key=len)]
                result, _ = self.spec.apply(
                    value, self.system_type.operation_of(name)
                )
                yield RequestCommit(name, result)

    def _apply(self, action):
        if isinstance(action, Create):
            self.requested.add(action.transaction)
            return
        if isinstance(action, RequestCommit):
            name = action.transaction
            value = self.versions[max(self.holders, key=len)]
            _, new_value = self.spec.apply(
                value, self.system_type.operation_of(name)
            )
            self.done.add(name)
            self.holders.add(name)
            self.versions[name] = new_value
            return
        if isinstance(action, InformCommitAt):
            name = action.transaction
            if name in self.holders:
                self.holders.discard(name)
                self.holders.add(parent(name))
                self.versions[parent(name)] = self.versions.pop(name)
            return
        if isinstance(action, InformAbortAt):
            doomed = {
                h for h in self.holders
                if is_descendant(h, action.transaction)
            }
            self.holders -= doomed
            for h in doomed:
                self.versions.pop(h, None)


def all_writes_system_type():
    builder = SystemTypeBuilder()
    builder.add_object(Counter("c"))
    one = builder.add_child(ROOT)
    builder.add_access(one, "c", Counter.increment(1))
    two = builder.add_child(ROOT)
    builder.add_access(two, "c", Counter.increment(2))
    return builder.build()


def schedule_set(automaton, depth):
    result = explore_exhaustive(automaton, max_depth=depth)
    return set(result.schedules)


class TestObjectLevelEquivalence:
    def drive_events(self, system_type):
        inc1, inc2 = (0, 0), (1, 0)
        return [
            Create(inc1),
            Create(inc2),
            InformCommitAt("c", inc1),
            InformCommitAt("c", (0,)),
            InformAbortAt("c", (1,)),
            InformCommitAt("c", inc2),
        ]

    def test_exhaustive_schedule_sets_equal(self):
        """The two automata accept identical schedule sets when inputs
        are injected at every point (closed with a driver)."""
        system_type = all_writes_system_type()
        moss = _Closed(RWLockingObject(system_type, "c"),
                       self.drive_events(system_type))
        reference = _Closed(
            ReferenceExclusiveObject(system_type, "c"),
            self.drive_events(system_type),
        )
        assert schedule_set(moss, 7) == schedule_set(reference, 7)

    def test_read_designation_breaks_equivalence(self):
        """Sanity: with a genuine read access the sets differ (Moss
        allows read sharing the reference exclusive object forbids)."""
        builder = SystemTypeBuilder()
        builder.add_object(Counter("c"))
        one = builder.add_child(ROOT)
        builder.add_access(one, "c", Counter.value())
        two = builder.add_child(ROOT)
        builder.add_access(two, "c", Counter.value())
        system_type = builder.build()
        events = [Create((0, 0)), Create((1, 0))]
        moss = _Closed(RWLockingObject(system_type, "c"), events)
        reference = _Closed(
            ReferenceExclusiveObject(system_type, "c"), events
        )
        moss_set = schedule_set(moss, 4)
        reference_set = schedule_set(reference, 4)
        assert reference_set < moss_set


class _Closed(Automaton):
    """Close an object automaton with a driver injecting input events."""

    def __init__(self, inner, inputs):
        super().__init__("closed:%s" % inner.name)
        self.inner = inner
        self.inputs = list(inputs)

    state_attrs = ("pending_inputs",)

    @property
    def pending_inputs(self):
        return self.inputs

    @pending_inputs.setter
    def pending_inputs(self, value):
        self.inputs = list(value)

    def is_input(self, action):
        return False

    def is_output(self, action):
        return True

    def enabled_outputs(self):
        seen = set()
        for action in self.inputs:
            if action not in seen:
                seen.add(action)
                yield action
        for action in self.inner.enabled_outputs():
            yield action

    def output_enabled(self, action):
        if action in self.inputs:
            return True
        return self.inner.output_enabled(action)

    def _apply(self, action):
        if action in self.inputs:
            self.inputs.remove(action)
        self.inner.apply(action)

    def snapshot(self):
        return (list(self.inputs), self.inner.snapshot())

    def restore(self, state):
        self.inputs = list(state[0])
        self.inner.restore(state[1])


class TestEngineLevelEquivalence:
    def run_decisions(self, policy):
        """Record grant/deny decisions of a fixed all-writes scenario."""
        engine = Engine([IntRegister("x"), IntRegister("y")], policy=policy)
        decisions = []
        one = engine.begin_top()
        two = engine.begin_top()
        script = [
            (one, "x", IntRegister.add(1)),
            (two, "y", IntRegister.add(1)),
            (two, "x", IntRegister.add(1)),   # conflicts with one
            (one, "y", IntRegister.add(1)),   # conflicts with two
        ]
        for txn, object_name, operation in script:
            try:
                txn.perform(object_name, operation)
                decisions.append("grant")
            except LockDenied:
                decisions.append("deny")
        one.commit()
        try:
            two.perform("x", IntRegister.add(1))
            decisions.append("grant")
        except LockDenied:
            decisions.append("deny")
        return decisions

    def test_policies_agree_on_all_write_workloads(self):
        assert self.run_decisions("moss-rw") == self.run_decisions(
            "exclusive"
        )

    def test_policies_differ_on_reads(self):
        def read_decisions(policy):
            engine = Engine([IntRegister("x")], policy=policy)
            one = engine.begin_top()
            two = engine.begin_top()
            one.perform("x", IntRegister.read())
            try:
                two.perform("x", IntRegister.read())
                return "grant"
            except LockDenied:
                return "deny"

        assert read_decisions("moss-rw") == "grant"
        assert read_decisions("exclusive") == "deny"
