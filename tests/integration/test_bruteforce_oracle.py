"""Brute-force cross-validation of serial correctness.

The library's checker proves serial correctness *constructively* (via the
Lemma 33 serializer).  This test validates the same statement by a wholly
independent method: enumerate **every** serial schedule of a micro system
type (bounded depth) and confirm, for each concurrent schedule and each
checked transaction, that some enumerated serial schedule has the same
projection at that transaction.

Agreement between the two oracles on every schedule of the exploration
space is strong evidence neither is vacuous.
"""

import pytest

from repro.adt import IntRegister
from repro.core.correctness import project_transaction_automaton
from repro.core.names import ROOT, SystemTypeBuilder
from repro.core.systems import RWLockingSystem, SerialSystem
from repro.core.visibility import is_orphan
from repro.core.events import Create
from repro.ioa.explorer import explore_exhaustive


@pytest.fixture(scope="module")
def micro_type():
    builder = SystemTypeBuilder()
    builder.add_object(IntRegister("x"))
    writer = builder.add_child(ROOT)
    builder.add_access(writer, "x", IntRegister.write(1))
    reader = builder.add_child(ROOT)
    builder.add_access(reader, "x", IntRegister.read())
    return builder.build()


@pytest.fixture(scope="module")
def serial_space(micro_type):
    """Every serial-system schedule prefix up to the depth bound."""
    serial = SerialSystem(micro_type)
    result = explore_exhaustive(serial, max_depth=14, max_schedules=60000)
    return result.schedules


def projections_of(space, name):
    """All distinct projections-at-*name* over a schedule space."""
    return {project_transaction_automaton(alpha, name) for alpha in space}


def test_serial_space_is_substantial(serial_space):
    assert len(serial_space) > 1000


def test_every_concurrent_projection_is_serially_realisable(
    micro_type, serial_space
):
    """The heart of serial correctness, checked by pure enumeration."""
    system = RWLockingSystem(micro_type)
    concurrent = explore_exhaustive(
        system, max_depth=10, max_schedules=4000, collect_all=True
    )
    transactions = [ROOT, (0,), (1,)]
    realisable = {
        name: projections_of(serial_space, name)
        for name in transactions
    }
    checked = 0
    for alpha in concurrent.schedules:
        created = {
            event.transaction
            for event in alpha
            if isinstance(event, Create)
        }
        for name in transactions:
            if name not in created or is_orphan(alpha, name):
                continue
            local = project_transaction_automaton(alpha, name)
            assert local in realisable[name], (
                "projection at %r of %r not realisable serially"
                % (name, alpha)
            )
            checked += 1
    assert checked > 2000


def test_oracles_agree_on_maximal_schedules(micro_type, serial_space):
    """The constructive checker and the brute-force oracle concur."""
    from repro.core.correctness import check_serial_correctness

    system = RWLockingSystem(micro_type)
    concurrent = explore_exhaustive(
        system, max_depth=11, max_schedules=1500, collect_all=False
    )
    for alpha in concurrent.maximal_schedules:
        report = check_serial_correctness(system, alpha)
        assert report.ok
        for item in report.reports:
            local = project_transaction_automaton(
                alpha, item.transaction
            )
            assert local in projections_of(
                serial_space, item.transaction
            )
