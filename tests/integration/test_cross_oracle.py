"""Cross-oracle agreement: Theorem 34 checker vs classical theory.

Two independent notions of correctness over the same schedules:

* the paper's serial correctness (projection equality via the Lemma 33
  serializer + serial-system replay);
* the classical conflict-serializability of the committed top-levels,
  with verified state equivalence (`repro.core.serializability`).

Moss' algorithm should satisfy both on every schedule; hypothesis sweeps
random system types and exploration seeds.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.checking.random_systems import (
    RandomSystemConfig,
    random_system_type,
)
from repro.core.correctness import check_serial_correctness
from repro.core.serializability import equivalent_serial_order
from repro.core.systems import RWLockingSystem
from repro.ioa.explorer import random_schedule

import random


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    system_seed=st.integers(0, 10_000),
    walk_seed=st.integers(0, 10_000),
    read_fraction=st.sampled_from([0.0, 0.3, 0.7, 1.0]),
)
def test_both_oracles_pass_on_moss_schedules(
    system_seed, walk_seed, read_fraction
):
    config = RandomSystemConfig(read_fraction=read_fraction)
    system_type = random_system_type(system_seed, config)
    system = RWLockingSystem(system_type)
    alpha = random_schedule(system, 250, random.Random(walk_seed))

    paper = check_serial_correctness(system, alpha)
    assert paper.ok, [
        (item.transaction, item.failures) for item in paper.failed()
    ]

    classical = equivalent_serial_order(system_type, alpha)
    assert classical.serializable, classical.cycle
    assert classical.state_equivalent is not False


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(system_seed=st.integers(0, 1_000))
def test_classical_serial_order_respects_commit_order(system_seed):
    """Moss (strict locking to the root) commits top-levels in an order
    compatible with the precedence graph: committing earlier at the root
    can never be *forced after* in the equivalent serial order."""
    from repro.core.events import Commit

    system_type = random_system_type(system_seed)
    system = RWLockingSystem(system_type, propose_aborts=False)
    alpha = random_schedule(system, 300, random.Random(system_seed + 9))
    classical = equivalent_serial_order(system_type, alpha)
    assert classical.serializable
    # Commit order of top-levels is itself a valid serial order: check
    # the precedence graph has no edge pointing backwards in it.
    commit_order = [
        event.transaction
        for event in alpha
        if isinstance(event, Commit) and len(event.transaction) == 1
    ]
    position = {top: index for index, top in enumerate(commit_order)}
    from repro.core.serializability import precedence_graph

    graph = precedence_graph(system_type, alpha)
    for source, targets in graph.edges.items():
        for target in targets:
            if source in position and target in position:
                assert position[source] < position[target], (
                    "edge %r -> %r against commit order" % (source, target)
                )
