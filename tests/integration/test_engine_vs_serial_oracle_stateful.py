"""Hypothesis stateful test: the engine against a serial replay oracle.

Moss R/W locking holds every lock to top-level commit, so the commit
order of top-level transactions is a serialisation order: replaying the
committed transactions' operations serially, in commit order, on fresh
ADT instances must reproduce (a) every result the engine returned to a
committed operation and (b) the final committed value of every object.

A :class:`RuleBasedStateMachine` drives the (single-threaded) engine
through random begin/access/commit/abort sequences -- nested children,
aborted subtrees, denied locks and all -- and checks the serial oracle
after every step.  Hypothesis shrinks any counterexample to a minimal
rule sequence automatically.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.adt import BankAccount, Counter
from repro.engine import Engine
from repro.errors import LockDenied

SPECS = {
    "a": BankAccount("a", 100),
    "c": Counter("c"),
}

MENU = {
    "a": [
        BankAccount.deposit(5),
        BankAccount.deposit(17),
        BankAccount.withdraw(30),
        BankAccount.withdraw(200),  # can bounce: result matters
        BankAccount.balance(),
    ],
    "c": [
        Counter.increment(1),
        Counter.increment(3),
        Counter.value(),
    ],
}


class EngineVsSerialOracle(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.engine = Engine(list(SPECS.values()))
        self.live = []
        #: per live transaction: [(object, operation, result), ...] of
        #: its own plus its committed descendants' accesses
        self.oplogs = {}
        #: committed top-level oplogs, in commit order
        self.serial_history = []

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    @rule()
    def begin_top(self):
        if len(self.live) < 6:
            txn = self.engine.begin_top()
            self.live.append(txn)
            self.oplogs[txn.name] = []

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def begin_child(self, data):
        parent = data.draw(st.sampled_from(self.live))
        if parent.is_active and parent.depth < 3:
            child = parent.begin_child()
            self.live.append(child)
            self.oplogs[child.name] = []

    @precondition(lambda self: self.live)
    @rule(
        data=st.data(),
        object_name=st.sampled_from(sorted(MENU)),
        op_index=st.integers(0, 4),
    )
    def access(self, data, object_name, op_index):
        txn = data.draw(st.sampled_from(self.live))
        if not txn.is_active:
            return
        menu = MENU[object_name]
        operation = menu[op_index % len(menu)]
        try:
            result = txn.perform(object_name, operation)
        except LockDenied:
            return
        self.oplogs[txn.name].append(
            (object_name, operation, result)
        )

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def commit(self, data):
        txn = data.draw(st.sampled_from(self.live))
        if not txn.is_active or txn.live_children():
            return
        log = self.oplogs.pop(txn.name, [])
        txn.commit()
        if txn.is_top_level:
            if log:
                self.serial_history.append(log)
        elif txn.parent is not None:
            # Committed child work now belongs to the parent.
            self.oplogs[txn.parent.name].extend(log)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def abort(self, data):
        txn = data.draw(st.sampled_from(self.live))
        if not txn.is_active:
            return
        txn.abort()
        # The whole subtree's work is discarded.
        for name in list(self.oplogs):
            if name[: len(txn.name)] == txn.name:
                del self.oplogs[name]

    # ------------------------------------------------------------------
    # The oracle
    # ------------------------------------------------------------------
    @invariant()
    def serial_replay_matches(self):
        values = {
            name: spec.initial_value()
            for name, spec in SPECS.items()
        }
        for log in self.serial_history:
            for object_name, operation, recorded in log:
                spec = SPECS[object_name]
                result, values[object_name] = spec.apply(
                    values[object_name], operation
                )
                assert result == recorded, (
                    "engine returned %r for %s on %r; serial replay "
                    "says %r" % (
                        recorded, operation, object_name, result
                    )
                )
        for name, spec in SPECS.items():
            committed = self.engine.object_value(name)
            assert spec.values_equal(values[name], committed), (
                "committed value of %r is %r; serial replay says %r"
                % (name, committed, values[name])
            )


EngineVsSerialOracle.TestCase.settings = settings(
    max_examples=30, stateful_step_count=35, deadline=None
)
TestEngineVsSerialOracle = EngineVsSerialOracle.TestCase
