"""Cross-backend contract: one compiled scenario, four drivers.

The headline property (ISSUE acceptance): the sim and threadsafe
backends execute the *same* logical operation stream for the same
spec + seed -- their digests are equal and every transaction commits
eventually.  The serve driver is exercised end to end against an
in-process :class:`ServerThread`.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scenario import (
    ScenarioError,
    build_store,
    compile_scenario,
    driver_names,
    get_driver,
    library_names,
    load_library_scenario,
    load_scenario_text,
)

SMALL_TOML = """
name = "small"
transactions = 16

[arrival]
process = "closed"
clients = 4

[[population]]
name = "acct"
kind = "bank"
count = 6
zipf_skew = 0.8

[[population]]
name = "tally"
kind = "counter"
count = 2

[[class]]
name = "move"
weight = 3.0

[[class.level]]
fanout = 2
accesses = 1

[[class.level]]
accesses = 2
fail_prob = 0.1
retries = 2

[[class]]
name = "check"
weight = 1.0
population = "tally"

[[class.level]]
accesses = 3
read_fraction = 1.0
"""

SPEC = load_scenario_text(SMALL_TOML)


class TestRegistry:
    def test_driver_names(self):
        assert driver_names() == [
            "dist",
            "serve",
            "sharded",
            "sim",
            "threadsafe",
        ]

    def test_unknown_backend(self):
        with pytest.raises(ScenarioError, match="unknown backend"):
            get_driver("mainframe")

    def test_serve_requires_port(self):
        compiled = compile_scenario(SPEC, 0)
        with pytest.raises(ScenarioError, match="port"):
            get_driver("serve").run(compiled)


class TestSimDriver:
    def test_all_commit(self):
        result = get_driver("sim").run(compile_scenario(SPEC, 3))
        assert result.backend == "sim"
        assert result.committed == SPEC.transactions
        assert result.aborted == 0
        assert result.ops > 0
        assert result.makespan > 0
        assert len(result.latencies) == result.committed

    def test_row_and_render(self):
        result = get_driver("sim").run(compile_scenario(SPEC, 3))
        row = result.row()
        assert row["scenario"] == "small"
        assert row["digest"] == result.digest[:16]
        assert "small" in result.render()

    def test_scheme_is_threaded_through(self):
        serial = get_driver("sim").run(
            compile_scenario(SPEC, 3), scheme="serial"
        )
        assert serial.scheme == "serial"
        assert serial.committed == SPEC.transactions


class TestCrossBackendDigest:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_sim_threadsafe_digest_identical(self, seed):
        compiled = compile_scenario(SPEC, seed)
        sim = get_driver("sim").run(compiled)
        safe = get_driver("threadsafe").run(compiled)
        assert sim.digest == safe.digest == compiled.digest()
        assert sim.committed == safe.committed == SPEC.transactions
        assert safe.aborted == 0

    def test_sim_dist_digest_identical(self):
        compiled = compile_scenario(SPEC, 5)
        sim = get_driver("sim").run(compiled)
        dist = get_driver("dist").run(compiled, sites=3)
        assert sim.digest == dist.digest
        assert dist.committed == SPEC.transactions
        assert dist.extras["sites"] == 3

    @settings(
        max_examples=5,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    @given(seed=st.integers(min_value=0, max_value=10 ** 6))
    def test_digest_equality_is_seed_independent(self, seed):
        compiled = compile_scenario(SPEC, seed, transactions=6)
        sim = get_driver("sim").run(compiled)
        safe = get_driver("threadsafe").run(compiled)
        assert sim.digest == safe.digest


class TestThreadSafeDriver:
    def test_all_commit_under_contention(self):
        compiled = compile_scenario(SPEC, 11)
        result = get_driver("threadsafe").run(compiled)
        assert result.committed == SPEC.transactions
        assert result.aborted == 0
        assert result.extras["workers"] == SPEC.arrival.clients
        assert result.extras["engine"]["commits"] >= SPEC.transactions

    def test_flat_2pl_conserves_transactions(self):
        """flat-2pl may exhaust retry budgets where moss-rw's lock
        inheritance succeeds -- but every transaction must still be
        accounted for as committed or aborted."""
        compiled = compile_scenario(SPEC, 11)
        result = get_driver("threadsafe").run(
            compiled, scheme="flat-2pl"
        )
        assert (
            result.committed + result.aborted == SPEC.transactions
        )
        assert result.committed > 0


class TestServeDriver:
    @pytest.fixture()
    def server(self):
        from repro.serve import ServeConfig, TransactionServer

        server = TransactionServer(
            build_store(SPEC),
            scheme="moss-rw",
            config=ServeConfig(host="127.0.0.1", port=0),
        )
        handle = server.start_in_thread()
        try:
            yield handle.address
        finally:
            handle.stop()

    def test_end_to_end(self, server):
        host, port = server
        compiled = compile_scenario(SPEC, 2, transactions=8)
        result = get_driver("serve").run(
            compiled, host=host, port=port, pace=False
        )
        assert result.backend == "serve"
        assert result.committed == 8
        assert result.aborted == 0
        assert result.digest == compiled.digest()

    def test_probe_rejects_wrong_store(self, server):
        host, port = server
        other = load_scenario_text(
            SMALL_TOML.replace('name = "acct"', 'name = "zzz"')
        )
        compiled = compile_scenario(other, 0, transactions=2)
        with pytest.raises(ScenarioError, match="does not serve"):
            get_driver("serve").run(
                compiled, host=host, port=port, pace=False
            )


class TestLibrary:
    def test_catalogue(self):
        assert library_names() == [
            "bank",
            "inventory",
            "social-feed",
            "ticketing",
        ]

    def test_unknown_library_scenario(self):
        with pytest.raises(ScenarioError, match="no library scenario"):
            load_library_scenario("casino")

    @pytest.mark.parametrize("name", library_names())
    def test_each_compiles_and_runs_on_sim(self, name):
        spec = load_library_scenario(name)
        compiled = compile_scenario(spec, 1, transactions=6)
        result = get_driver("sim").run(compiled)
        assert result.committed == 6
        assert result.digest == compiled.digest()
