"""Compiler determinism, stream independence, and the legacy byte-pins.

The pinned digests at the bottom were captured from the pre-refactor
``repro.sim.workload.make_workload`` (the code that generated every
seeded workload in this repo's history).  The shim must keep producing
exactly those streams; a digest change here means every EXPERIMENTS
number silently shifted.
"""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scenario import compile_scenario, load_scenario_text
from repro.scenario.compiler import workload_digest
from repro.sim.workload import WorkloadConfig, make_workload

SPEC = load_scenario_text(
    """
name = "det"
transactions = 40

[arrival]
process = "closed"
clients = 4

[[population]]
name = "obj"
kind = "mixed_probe"
count = 8
zipf_skew = 0.7

[[class]]
name = "oltp"
weight = 3.0

[[class.level]]
fanout = 2
accesses = 1
read_fraction = 0.2

[[class.level]]
accesses = 2
fail_prob = 0.2
retries = 1

[[class]]
name = "scan"
weight = 1.0
think_time = 1.0

[[class.level]]
accesses = 6
read_fraction = 1.0
access_time = 2.0
""".replace("mixed_probe", "bank")
)


class TestDeterminism:
    def test_same_spec_seed_same_digest(self):
        assert (
            compile_scenario(SPEC, 11).digest()
            == compile_scenario(SPEC, 11).digest()
        )

    def test_different_seed_different_digest(self):
        assert (
            compile_scenario(SPEC, 11).digest()
            != compile_scenario(SPEC, 12).digest()
        )

    def test_prefix_property(self):
        """The first N transactions of a longer compile are identical
        to a compile asked for N (quick benchmark modes rely on it)."""
        full = compile_scenario(SPEC, 5)
        short = compile_scenario(SPEC, 5, transactions=7)
        assert short.class_names == full.class_names[:7]
        assert [p.label for p in short.programs] == [
            p.label for p in full.programs[:7]
        ]
        assert (
            workload_digest(short.programs)
            == workload_digest(full.programs[:7])
        )

    def test_arrival_stream_independent_of_ops(self):
        """Switching closed -> poisson must not change which objects
        the transactions touch (named streams are independent)."""
        open_spec = dataclasses.replace(
            SPEC,
            arrival=dataclasses.replace(
                SPEC.arrival, process="poisson", rate=2.0
            ),
        )
        closed = compile_scenario(SPEC, 9)
        opened = compile_scenario(open_spec, 9)
        assert closed.arrival_offsets is None
        assert opened.arrival_offsets is not None
        assert len(opened.arrival_offsets) == len(opened.programs)
        assert workload_digest(closed.programs) == workload_digest(
            opened.programs
        )

    def test_think_times_follow_class(self):
        compiled = compile_scenario(SPEC, 3)
        for name, think in zip(
            compiled.class_names, compiled.think_times
        ):
            assert think == (1.0 if name == "scan" else 0.0)

    @settings(
        max_examples=20,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    @given(seed=st.integers(min_value=0, max_value=2 ** 32))
    def test_digest_stable_across_recompiles(self, seed):
        a = compile_scenario(SPEC, seed, transactions=6)
        b = compile_scenario(SPEC, seed, transactions=6)
        assert a.digest() == b.digest()


class TestTopLevelConvention:
    def test_top_block_never_fails(self):
        """Top-level bodies carry no injected failure (the legacy
        make_workload convention, kept by the compiler)."""
        for program in compile_scenario(SPEC, 2).programs:
            assert program.body.fail_prob == 0.0
            assert program.body.retries == 0


#: SHA-256 digests of make_workload's output captured from the
#: pre-refactor implementation (git history: the version before
#: repro.scenario existed).  (seed, config kwargs) -> digest.
_LEGACY_PINS = [
    (
        1,
        {},
        "646a550eae6c5c7894410b188fc8ea80"
        "fdd511730aa595a67752e9748b563cc1",
    ),
    (
        7,
        dict(
            programs=30,
            objects=12,
            zipf_skew=0.9,
            depth=3,
            fanout=2,
            object_kind="mixed",
            fail_prob=0.2,
            retries=2,
        ),
        "feb6d815a2f915f5559d44e672c004ec"
        "5e987e40465f97bf988c8192831b7983",
    ),
    (
        42,
        dict(object_kind="commutative", read_fraction=0.3),
        "e129b47a5a2f327267987d87124a1e2d"
        "c61a10b16084225cba0eec70f6a424b1",
    ),
    (
        13,
        dict(programs=20, objects=8, depth=1, parallel_blocks=False),
        "5fa69676955180cf772152b809ce1932"
        "1cb4cb95e3c131516e53c28826e69136",
    ),
]


class TestLegacyBytePins:
    def test_make_workload_byte_pinned(self):
        for seed, kwargs, expected in _LEGACY_PINS:
            programs = make_workload(seed, WorkloadConfig(**kwargs))
            assert workload_digest(programs) == expected, (
                "make_workload(%d, %r) drifted from its pre-refactor "
                "output" % (seed, kwargs)
            )

    def test_shim_reexports_tree_classes(self):
        """One class set everywhere: the sim runner's isinstance
        checks must see scenario-compiled programs as its own."""
        import repro.scenario.programs as programs
        import repro.sim.workload as workload

        assert workload.AccessOp is programs.AccessOp
        assert workload.Block is programs.Block
        assert workload.Program is programs.Program
