"""The ``[placement]`` section: spec parsing plus both consumers.

Placement maps population names to abstract home indices; the sharded
backend folds them onto its worker count, the dist topology builder
onto its site count.  Bad placement must surface as
:class:`ScenarioError` with a path-shaped message, never a traceback.
"""

import pytest

from repro.scenario import (
    ScenarioError,
    compile_scenario,
    load_scenario_text,
)

PLACED_TOML = """
name = "placed"
transactions = 10

[arrival]
process = "closed"
clients = 2

[placement]
hot = 0
cold = 3

[[population]]
name = "hot"
kind = "counter"
count = 2

[[population]]
name = "cold"
kind = "register"
count = 3

[[class]]
name = "work"
population = "hot"

[[class.level]]
accesses = 2
"""


def _strip_placement(text):
    lines = text.splitlines()
    out = []
    skip = False
    for line in lines:
        if line.strip() == "[placement]":
            skip = True
            continue
        if skip and (line.startswith("[") or not line.strip()):
            skip = line.strip() == ""
            if line.startswith("["):
                skip = False
                out.append(line)
            continue
        if not skip:
            out.append(line)
    return "\n".join(out)


class TestParsing:
    def test_placement_parses_sorted(self):
        spec = load_scenario_text(PLACED_TOML)
        assert spec.placement == (("cold", 3), ("hot", 0))

    def test_placement_map_expands_populations(self):
        spec = load_scenario_text(PLACED_TOML)
        mapping = spec.placement_map()
        assert mapping == {
            "hot0": 0,
            "hot1": 0,
            "cold0": 3,
            "cold1": 3,
            "cold2": 3,
        }

    def test_unknown_population_rejected(self):
        bad = PLACED_TOML.replace("cold = 3", "ghost = 3")
        with pytest.raises(
            ScenarioError, match="unknown population 'ghost'"
        ):
            load_scenario_text(bad)

    def test_negative_affinity_rejected(self):
        bad = PLACED_TOML.replace("cold = 3", "cold = -1")
        with pytest.raises(ScenarioError, match="placement"):
            load_scenario_text(bad)

    def test_non_integer_affinity_rejected(self):
        bad = PLACED_TOML.replace("cold = 3", 'cold = "east"')
        with pytest.raises(ScenarioError, match="placement"):
            load_scenario_text(bad)

    def test_placement_table_must_be_a_table(self):
        bad = PLACED_TOML.replace(
            "[placement]\nhot = 0\ncold = 3", "placement = 3"
        )
        with pytest.raises(ScenarioError, match="placement"):
            load_scenario_text(bad)


class TestDigests:
    def test_placement_does_not_change_the_operation_stream(self):
        # Placement changes where objects *live*, not what the
        # workload logically does: the compiled program stream must be
        # byte-identical with and without it.  The *spec* digest does
        # move (placement is part of a scenario's identity), but a
        # spec that never had a ``[placement]`` section keeps its
        # pre-placement digest -- ``_as_dict`` only emits the key when
        # non-empty.
        from repro.scenario.compiler import workload_digest

        unplaced = load_scenario_text(_strip_placement(PLACED_TOML))
        assert unplaced.placement == ()
        placed = load_scenario_text(PLACED_TOML)
        assert workload_digest(
            compile_scenario(placed, 7).programs
        ) == workload_digest(compile_scenario(unplaced, 7).programs)
        assert (
            compile_scenario(placed, 7).digest()
            != compile_scenario(unplaced, 7).digest()
        )

    def test_placement_digest_is_stable(self):
        one = compile_scenario(load_scenario_text(PLACED_TOML), 3)
        two = compile_scenario(load_scenario_text(PLACED_TOML), 3)
        assert one.digest() == two.digest()


class TestConsumers:
    def test_dist_topology_honours_affinities(self):
        from repro.dist.topology import uniform_topology

        spec = load_scenario_text(PLACED_TOML)
        names = sorted(spec.placement_map())
        topology = uniform_topology(
            names, sites=2, affinities=spec.placement_map()
        )
        # hot -> site 0, cold -> site 3 % 2 == 1.
        assert topology.site_of("hot0") == 0
        assert topology.site_of("hot1") == 0
        assert topology.site_of("cold0") == 1

    def test_sharded_backend_consumes_placement(self):
        from repro.scenario import compile_scenario
        from repro.scenario.backends import get_driver

        spec = load_scenario_text(PLACED_TOML)
        compiled = compile_scenario(spec, 0)
        result = get_driver("sharded").run(
            compiled, scheme="moss-rw", workers=2
        )
        assert result.extras.get("placement") == len(spec.placement_map())
        assert result.extras.get("shards") == 2
        assert result.committed > 0
