"""Spec validation: bad TOML surfaces as ScenarioError, never a
traceback from deeper in the stack.

The Hypothesis properties fuzz both the TOML text layer and the plain
data layer; any exception other than :class:`ScenarioError` escaping
``load_scenario_text`` / ``spec_from_dict`` is a bug.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scenario import (
    Arrival,
    Level,
    Population,
    ScenarioError,
    ScenarioSpec,
    TxnClass,
    load_scenario_text,
    spec_from_dict,
)

VALID_TOML = """
name = "t"
transactions = 10

[arrival]
process = "closed"
clients = 4

[[population]]
name = "obj"
kind = "counter"
count = 4

[[class]]
name = "work"

[[class.level]]
accesses = 2
"""


class TestLoading:
    def test_valid_toml_loads(self):
        spec = load_scenario_text(VALID_TOML)
        assert spec.name == "t"
        assert spec.transactions == 10
        assert spec.populations[0].kind == "counter"
        assert spec.classes[0].levels[0].accesses == 2

    def test_invalid_toml_syntax(self):
        with pytest.raises(ScenarioError, match="invalid TOML"):
            load_scenario_text("name = [unclosed")

    def test_unknown_key_rejected(self):
        with pytest.raises(ScenarioError, match="unknown key"):
            load_scenario_text(VALID_TOML + "\nbogus_key = 1\n")

    def test_unknown_population_kind(self):
        with pytest.raises(ScenarioError, match="unknown kind"):
            spec_from_dict(
                {
                    "name": "t",
                    "population": [{"name": "p", "kind": "blob"}],
                    "class": [{"name": "c"}],
                }
            )

    def test_unknown_population_reference(self):
        with pytest.raises(ScenarioError, match="unknown population"):
            spec_from_dict(
                {
                    "name": "t",
                    "population": [{"name": "p"}],
                    "class": [{"name": "c", "population": "nope"}],
                }
            )

    def test_fanout_zero_with_deeper_levels(self):
        with pytest.raises(ScenarioError, match="fanout 0"):
            spec_from_dict(
                {
                    "name": "t",
                    "population": [{"name": "p"}],
                    "class": [
                        {
                            "name": "c",
                            "level": [
                                {"accesses": 1},
                                {"accesses": 1},
                            ],
                        }
                    ],
                }
            )

    def test_deepest_level_must_not_fan_out(self):
        with pytest.raises(ScenarioError, match="deepest level"):
            spec_from_dict(
                {
                    "name": "t",
                    "population": [{"name": "p"}],
                    "class": [
                        {"name": "c", "level": [{"accesses": 1,
                                                 "fanout": 2}]}
                    ],
                }
            )

    def test_duplicate_class_names(self):
        with pytest.raises(ScenarioError, match="duplicate class"):
            spec_from_dict(
                {
                    "name": "t",
                    "population": [{"name": "p"}],
                    "class": [{"name": "c"}, {"name": "c"}],
                }
            )

    def test_poisson_needs_positive_rate(self):
        with pytest.raises(ScenarioError, match="rate"):
            spec_from_dict(
                {
                    "name": "t",
                    "arrival": {"process": "poisson", "rate": 0.0},
                    "population": [{"name": "p"}],
                    "class": [{"name": "c"}],
                }
            )

    def test_specs_are_frozen_and_hashable(self):
        spec = load_scenario_text(VALID_TOML)
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.transactions = 5
        assert hash(spec) == hash(load_scenario_text(VALID_TOML))

    def test_direct_construction_validates_too(self):
        with pytest.raises(ScenarioError):
            Population(name="p", count=0)
        with pytest.raises(ScenarioError):
            Level(read_fraction=1.5)
        with pytest.raises(ScenarioError):
            Arrival(process="sometimes")
        with pytest.raises(ScenarioError):
            TxnClass(name="c", levels=(Level(accesses=0),))
        with pytest.raises(ScenarioError):
            ScenarioSpec(name="t", populations=(), classes=())


# Printable-ish text keeps the corpus focused on structural breakage
# rather than TOML's (separately tested) unicode handling.
_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=30,
)
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10 ** 6), max_value=10 ** 6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    _text,
)
_data = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(_text, children, max_size=4),
    ),
    max_leaves=12,
)


class TestProperties:
    @settings(
        max_examples=150,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    @given(data=_data)
    def test_spec_from_dict_raises_only_scenario_error(self, data):
        try:
            spec = spec_from_dict(data)
        except ScenarioError:
            return
        assert isinstance(spec, ScenarioSpec)

    @settings(
        max_examples=100,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    @given(text=_text)
    def test_load_text_raises_only_scenario_error(self, text):
        try:
            load_scenario_text(text)
        except ScenarioError:
            return

    @settings(
        max_examples=60,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    @given(
        key=st.sampled_from(
            ["transactions", "name", "arrival", "population", "class"]
        ),
        value=_scalars,
    )
    def test_mutated_valid_spec_never_tracebacks(self, key, value):
        """Corrupt one top-level field of a known-good spec."""
        import tomllib

        data = tomllib.loads(VALID_TOML)
        data[key] = value
        try:
            spec_from_dict(data)
        except ScenarioError:
            pass
