"""Scenario layer tests."""
