"""Property-based equieffectiveness tests across all ADTs.

Randomised validation of the Section 4 machinery on every object type:

* Lemma 20: any interleaving of reads into a write schedule, and any
  repositioning of CREATEs, yields an equieffective schedule;
* Lemma 15 (restricted transitivity): equieffectiveness chains across
  read-stripped and create-fronted variants;
* the decision procedure is symmetric and reflexive.
"""

import random as stdlib_random

import pytest
from hypothesis import given, settings, strategies as st

from repro.adt import BankAccount, Counter, FifoQueue, SetObject
from repro.core.equieffective import equieffective
from repro.core.events import Create, RequestCommit
from repro.core.names import ROOT, SystemTypeBuilder

SPEC_FACTORIES = [
    lambda: Counter("obj"),
    lambda: BankAccount("obj", 40),
    lambda: SetObject("obj"),
    lambda: FifoQueue("obj"),
]


def build_schedule(spec, rng, length):
    """A random well-formed schedule over *spec*, plus its system type."""
    builder = SystemTypeBuilder()
    builder.add_object(spec)
    top = builder.add_child(ROOT)
    operations = [
        rng.choice(list(spec.example_operations())) for _ in range(length)
    ]
    accesses = [
        builder.add_access(top, spec.name, operation)
        for operation in operations
    ]
    system_type = builder.build()
    value = spec.initial_value()
    schedule = []
    for access, operation in zip(accesses, operations):
        result, value = spec.apply(value, operation)
        schedule.append(Create(access))
        schedule.append(RequestCommit(access, result))
    return system_type, tuple(schedule)


def strip_reads(system_type, schedule):
    return tuple(
        event
        for event in schedule
        if not system_type.is_read_access(event.transaction)
    )


def front_creates(schedule):
    creates = [e for e in schedule if isinstance(e, Create)]
    rest = [e for e in schedule if not isinstance(e, Create)]
    return tuple(creates + rest)


@settings(max_examples=30, deadline=None)
@given(
    spec_index=st.integers(0, len(SPEC_FACTORIES) - 1),
    seed=st.integers(0, 10_000),
    length=st.integers(1, 7),
)
def test_read_stripping_equieffective(spec_index, seed, length):
    spec = SPEC_FACTORIES[spec_index]()
    rng = stdlib_random.Random(seed)
    system_type, schedule = build_schedule(spec, rng, length)
    stripped = strip_reads(system_type, schedule)
    assert equieffective(system_type, spec.name, schedule, stripped)


@settings(max_examples=30, deadline=None)
@given(
    spec_index=st.integers(0, len(SPEC_FACTORIES) - 1),
    seed=st.integers(0, 10_000),
    length=st.integers(1, 7),
)
def test_create_fronting_equieffective(spec_index, seed, length):
    spec = SPEC_FACTORIES[spec_index]()
    rng = stdlib_random.Random(seed)
    system_type, schedule = build_schedule(spec, rng, length)
    fronted = front_creates(schedule)
    assert equieffective(system_type, spec.name, schedule, fronted)


@settings(max_examples=20, deadline=None)
@given(
    spec_index=st.integers(0, len(SPEC_FACTORIES) - 1),
    seed=st.integers(0, 10_000),
    length=st.integers(1, 6),
)
def test_lemma15_transitivity_chain(spec_index, seed, length):
    """schedule ~ stripped and stripped ~ fronted(stripped) imply
    schedule ~ fronted(stripped)."""
    spec = SPEC_FACTORIES[spec_index]()
    rng = stdlib_random.Random(seed)
    system_type, schedule = build_schedule(spec, rng, length)
    stripped = strip_reads(system_type, schedule)
    fronted = front_creates(stripped)
    assert equieffective(system_type, spec.name, schedule, stripped)
    assert equieffective(system_type, spec.name, stripped, fronted)
    assert equieffective(system_type, spec.name, schedule, fronted)


@settings(max_examples=20, deadline=None)
@given(
    spec_index=st.integers(0, len(SPEC_FACTORIES) - 1),
    seed=st.integers(0, 10_000),
    length=st.integers(0, 6),
)
def test_reflexive_and_symmetric(spec_index, seed, length):
    spec = SPEC_FACTORIES[spec_index]()
    rng = stdlib_random.Random(seed)
    system_type, schedule = build_schedule(spec, rng, length)
    stripped = strip_reads(system_type, schedule)
    assert equieffective(system_type, spec.name, schedule, schedule)
    assert equieffective(
        system_type, spec.name, stripped, schedule
    ) == equieffective(system_type, spec.name, schedule, stripped)
