"""Unit tests for Counter, SetObject, FifoQueue, BankAccount, KVMap."""

import pytest

from repro.adt import BankAccount, Counter, FifoQueue, KVMap, SetObject


class TestCounter:
    def test_increment(self):
        spec = Counter("c")
        result, new_value = spec.apply(0, Counter.increment(3))
        assert (result, new_value) == (3, 3)

    def test_decrement(self):
        spec = Counter("c")
        result, new_value = spec.apply(10, Counter.decrement(4))
        assert (result, new_value) == (6, 6)

    def test_value_is_read(self):
        spec = Counter("c")
        result, new_value = spec.apply(5, Counter.value())
        assert (result, new_value) == (5, 5)
        assert Counter.value().is_read

    def test_initial(self):
        assert Counter("c", initial=9).initial_value() == 9


class TestSetObject:
    def test_insert_reports_novelty(self):
        spec = SetObject("s")
        result, new_value = spec.apply(frozenset(), SetObject.insert("a"))
        assert result is True
        assert new_value == frozenset({"a"})
        result, _ = spec.apply(new_value, SetObject.insert("a"))
        assert result is False

    def test_remove_reports_presence(self):
        spec = SetObject("s")
        value = frozenset({"a"})
        result, new_value = spec.apply(value, SetObject.remove("a"))
        assert result is True
        assert new_value == frozenset()
        result, _ = spec.apply(new_value, SetObject.remove("a"))
        assert result is False

    def test_reads(self):
        spec = SetObject("s", initial={"a", "b"})
        value = spec.initial_value()
        assert spec.apply(value, SetObject.contains("a"))[0] is True
        assert spec.apply(value, SetObject.size())[0] == 2
        assert SetObject.contains("a").is_read
        assert SetObject.size().is_read


class TestFifoQueue:
    def test_enqueue_dequeue_fifo_order(self):
        spec = FifoQueue("q")
        value = spec.initial_value()
        _, value = spec.apply(value, FifoQueue.enqueue("a"))
        _, value = spec.apply(value, FifoQueue.enqueue("b"))
        result, value = spec.apply(value, FifoQueue.dequeue())
        assert result == "a"
        result, value = spec.apply(value, FifoQueue.dequeue())
        assert result == "b"

    def test_dequeue_empty_returns_none(self):
        spec = FifoQueue("q")
        result, value = spec.apply((), FifoQueue.dequeue())
        assert result is None
        assert value == ()

    def test_peek_and_length_are_reads(self):
        spec = FifoQueue("q")
        value = ("x", "y")
        assert spec.apply(value, FifoQueue.peek()) == ("x", value)
        assert spec.apply(value, FifoQueue.length()) == (2, value)
        assert FifoQueue.peek().is_read
        assert FifoQueue.length().is_read

    def test_enqueue_returns_new_length(self):
        spec = FifoQueue("q")
        result, _ = spec.apply(("a",), FifoQueue.enqueue("b"))
        assert result == 2


class TestBankAccount:
    def test_deposit(self):
        spec = BankAccount("a")
        result, new_value = spec.apply(10, BankAccount.deposit(5))
        assert (result, new_value) == (15, 15)

    def test_withdraw_success(self):
        spec = BankAccount("a")
        result, new_value = spec.apply(10, BankAccount.withdraw(4))
        assert result is True
        assert new_value == 6

    def test_withdraw_insufficient_funds_is_noop(self):
        spec = BankAccount("a")
        result, new_value = spec.apply(3, BankAccount.withdraw(4))
        assert result is False
        assert new_value == 3

    def test_withdraw_exact_balance(self):
        spec = BankAccount("a")
        result, new_value = spec.apply(4, BankAccount.withdraw(4))
        assert result is True
        assert new_value == 0

    def test_balance_is_read(self):
        assert BankAccount.balance().is_read


class TestKVMap:
    def test_put_returns_displaced(self):
        spec = KVMap("m")
        value = spec.initial_value()
        result, value = spec.apply(value, KVMap.put("k", 1))
        assert result is None
        result, value = spec.apply(value, KVMap.put("k", 2))
        assert result == 1

    def test_delete(self):
        spec = KVMap("m", initial={"k": 1})
        result, value = spec.apply(
            spec.initial_value(), KVMap.delete("k")
        )
        assert result == 1
        assert value == ()

    def test_get_and_keys_are_reads(self):
        spec = KVMap("m", initial={"a": 1, "b": 2})
        value = spec.initial_value()
        assert spec.apply(value, KVMap.get("a"))[0] == 1
        assert spec.apply(value, KVMap.get("zzz"))[0] is None
        assert spec.apply(value, KVMap.keys())[0] == ("a", "b")
        assert KVMap.get("a").is_read
        assert KVMap.keys().is_read

    def test_canonical_representation(self):
        """Two insertion orders yield equal values."""
        spec = KVMap("m")
        one = spec.initial_value()
        _, one = spec.apply(one, KVMap.put("a", 1))
        _, one = spec.apply(one, KVMap.put("b", 2))
        two = spec.initial_value()
        _, two = spec.apply(two, KVMap.put("b", 2))
        _, two = spec.apply(two, KVMap.put("a", 1))
        assert spec.values_equal(one, two)
