"""Property-based verification of the Section 4.3 semantic conditions.

Every ADT in :mod:`repro.adt` must satisfy, for the basic-object
construction to meet the paper's obligations:

* **read transparency** -- read operations leave the value unchanged;
* **determinism/purity** -- apply is a pure function;
* **create transparency / mobility** -- holds structurally for the
  pending-set construction and is exercised against real basic objects
  here via equieffectiveness.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.adt import (
    BankAccount,
    Counter,
    FifoQueue,
    IntRegister,
    KVMap,
    Register,
    SetObject,
)
from repro.core.object_spec import (
    check_purity,
    check_read_transparency,
)

ALL_SPECS = [
    Register("r", initial=0),
    IntRegister("i", initial=3),
    Counter("c", initial=1),
    SetObject("s", initial={"a"}),
    FifoQueue("q", initial=("x",)),
    BankAccount("b", initial=50),
    KVMap("m", initial={"k": 1}),
]


@pytest.mark.parametrize(
    "spec", ALL_SPECS, ids=lambda spec: type(spec).__name__
)
def test_read_transparency_on_examples(spec):
    check_read_transparency(spec)


@pytest.mark.parametrize(
    "spec", ALL_SPECS, ids=lambda spec: type(spec).__name__
)
def test_purity_on_examples(spec):
    check_purity(spec)


@given(
    value=st.integers(-1000, 1000),
    amount=st.integers(0, 100),
)
def test_counter_reads_transparent(value, amount):
    spec = Counter("c")
    result, new_value = spec.apply(value, Counter.value())
    assert result == value
    assert new_value == value
    # And writes commute with themselves deterministically.
    once = spec.apply(value, Counter.increment(amount))
    again = spec.apply(value, Counter.increment(amount))
    assert once == again


@given(
    elements=st.frozensets(st.integers(0, 10), max_size=6),
    probe=st.integers(0, 10),
)
def test_set_reads_transparent(elements, probe):
    spec = SetObject("s")
    for operation in (SetObject.contains(probe), SetObject.size()):
        _, new_value = spec.apply(elements, operation)
        assert new_value == elements


@given(
    balance=st.integers(0, 10_000),
    amount=st.integers(0, 10_000),
)
def test_bank_withdraw_never_overdraws(balance, amount):
    spec = BankAccount("b")
    success, new_balance = spec.apply(balance, BankAccount.withdraw(amount))
    assert new_balance >= 0
    if success:
        assert new_balance == balance - amount
    else:
        assert new_balance == balance


@given(items=st.lists(st.integers(), max_size=8))
def test_queue_roundtrip_preserves_order(items):
    spec = FifoQueue("q")
    value = spec.initial_value()
    for item in items:
        _, value = spec.apply(value, FifoQueue.enqueue(item))
    drained = []
    for _ in items:
        result, value = spec.apply(value, FifoQueue.dequeue())
        drained.append(result)
    assert drained == items
    assert value == ()


@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 100)), max_size=8
    )
)
def test_kvmap_matches_reference_dict(pairs):
    spec = KVMap("m")
    value = spec.initial_value()
    reference = {}
    for key, item in pairs:
        _, value = spec.apply(value, KVMap.put(key, item))
        reference[key] = item
    for key in reference:
        result, _ = spec.apply(value, KVMap.get(key))
        assert result == reference[key]


@settings(max_examples=25)
@given(
    writes=st.lists(st.integers(-5, 5), min_size=1, max_size=4),
    data=st.data(),
)
def test_read_insertion_equieffective_on_basic_object(writes, data):
    """Inserting a read response anywhere in a register schedule is
    equieffective to omitting it (semantic condition 3 end-to-end)."""
    from repro.core.equieffective import equieffective
    from repro.core.events import Create, RequestCommit
    from repro.core.names import ROOT, SystemTypeBuilder

    builder = SystemTypeBuilder()
    builder.add_object(IntRegister("x"))
    top = builder.add_child(ROOT)
    accesses = [
        builder.add_access(top, "x", IntRegister.add(amount))
        for amount in writes
    ]
    reader = builder.add_access(top, "x", IntRegister.read())
    system_type = builder.build()

    base = []
    value = 0
    for access, amount in zip(accesses, writes):
        value += amount
        base.append(Create(access))
        base.append(RequestCommit(access, value))
    cut = data.draw(st.integers(0, len(writes)))
    prefix_value = sum(writes[:cut])
    with_read = (
        base[: 2 * cut]
        + [Create(reader), RequestCommit(reader, prefix_value)]
        + base[2 * cut:]
    )
    assert equieffective(system_type, "x", tuple(with_read), tuple(base))
