"""Unit tests for Register / IntRegister."""

import pytest

from repro.adt import IntRegister, Register
from repro.errors import ReproError


class TestRegister:
    def test_initial_value(self):
        assert Register("x", initial="hello").initial_value() == "hello"
        assert Register("x").initial_value() is None

    def test_read_returns_value_unchanged(self):
        spec = Register("x", initial=7)
        result, new_value = spec.apply(7, Register.read())
        assert result == 7
        assert new_value == 7

    def test_write_returns_old_value(self):
        spec = Register("x", initial=1)
        result, new_value = spec.apply(1, Register.write(9))
        assert result == 1
        assert new_value == 9

    def test_read_classified_read(self):
        assert Register.read().is_read
        assert not Register.write(0).is_read

    def test_unknown_operation_rejected(self):
        from repro.core.object_spec import Operation

        with pytest.raises(ReproError):
            Register("x").apply(None, Operation("explode"))


class TestIntRegister:
    def test_initial_defaults_to_zero(self):
        assert IntRegister("x").initial_value() == 0

    def test_add_returns_new_value(self):
        spec = IntRegister("x")
        result, new_value = spec.apply(10, IntRegister.add(5))
        assert result == 15
        assert new_value == 15

    def test_add_negative(self):
        spec = IntRegister("x")
        result, _ = spec.apply(10, IntRegister.add(-3))
        assert result == 7

    def test_write_coerces_int(self):
        spec = IntRegister("x")
        _, new_value = spec.apply(0, IntRegister.write(4))
        assert new_value == 4

    def test_inherits_read(self):
        spec = IntRegister("x")
        result, new_value = spec.apply(42, IntRegister.read())
        assert result == 42
        assert new_value == 42
