"""Unit tests for the labelled serialization graph."""

from repro.audit import SerializationGraph, WitnessEdge, edge_kind


def make_edge(source, target, kind="ww", object_name="x",
              source_position=0, target_position=1):
    return WitnessEdge(
        source=source,
        target=target,
        kind=kind,
        object_name=object_name,
        source_op="r" if kind == "rw" else "w",
        source_position=source_position,
        target_op="r" if kind == "wr" else "w",
        target_position=target_position,
    )


class TestEdgeKind:
    def test_truth_table(self):
        assert edge_kind(True, False) == "rw"
        assert edge_kind(True, True) == "rw"
        assert edge_kind(False, True) == "wr"
        assert edge_kind(False, False) == "ww"


class TestWitnessEdge:
    def test_pinned_rendering(self):
        edge = WitnessEdge(
            source=(0,),
            target=(1,),
            kind="rw",
            object_name="x",
            source_op="r",
            source_position=0,
            target_op="w",
            target_position=1,
        )
        assert str(edge) == "T0.0 -rw[x]-> T0.1 (r x @0 < w x @1)"


class TestSerializationGraph:
    def test_first_label_per_pair_wins(self):
        graph = SerializationGraph()
        graph.add_vertex((0,), 1)
        graph.add_vertex((1,), 2)
        first = make_edge((0,), (1,), object_name="x")
        second = make_edge((0,), (1,), object_name="y")
        graph.add_edge(first)
        graph.add_edge(second)
        assert graph.edge_count == 1
        assert graph.label((0,), (1,)).object_name == "x"

    def test_self_loops_are_ignored(self):
        graph = SerializationGraph()
        graph.add_vertex((0,), 1)
        graph.add_edge(make_edge((0,), (0,)))
        assert graph.edge_count == 0

    def test_witness_cycle_through_labels_the_edges(self):
        graph = SerializationGraph()
        for index, name in enumerate([(0,), (1,)]):
            graph.add_vertex(name, index + 1)
        graph.add_edge(make_edge((0,), (1,), kind="rw"))
        graph.add_edge(make_edge((1,), (0,), kind="wr",
                                 object_name="y",
                                 source_position=2, target_position=3))
        witness = graph.witness_cycle_through((1,))
        assert witness is not None
        assert [(e.source, e.target) for e in witness] == [
            ((1,), (0,)),
            ((0,), (1,)),
        ]

    def test_witness_cycle_absent(self):
        graph = SerializationGraph()
        graph.add_vertex((0,), 1)
        graph.add_vertex((1,), 2)
        graph.add_edge(make_edge((0,), (1,)))
        assert graph.witness_cycle_through((0,)) is None

    def test_remove_vertex_drops_incident_edges(self):
        graph = SerializationGraph()
        for index, name in enumerate([(0,), (1,), (2,)]):
            graph.add_vertex(name, index + 1)
        graph.add_edge(make_edge((0,), (1,)))
        graph.add_edge(make_edge((1,), (2,)))
        graph.add_edge(make_edge((2,), (0,)))
        graph.remove_vertex((1,))
        assert len(graph) == 2
        assert graph.edge_count == 1
        assert graph.label((2,), (0,))
        # Removal restored acyclicity here.
        assert graph.witness_cycle_through((0,)) is None

    def test_remove_unknown_vertex_is_a_no_op(self):
        graph = SerializationGraph()
        graph.remove_vertex((9,))
        assert len(graph) == 0
