"""Attachment wiring: engine, thread-safe facade, simulation runner."""

import threading

from repro.adt import IntRegister
from repro.analysis.faults import NoInheritPolicy
from repro.audit import AuditConfig, OnlineAuditor
from repro.engine.engine import Engine
from repro.engine.threadsafe import ThreadSafeEngine


class TestEngineAttachment:
    def test_capability_dial_defaults_to_sampling(self):
        engine = Engine([IntRegister("x")], policy="moss-rw")
        auditor = engine.attach_auditor()
        assert auditor.config.sample_every == 16

    def test_explicit_config_wins(self):
        engine = Engine([IntRegister("x")], policy="moss-rw")
        auditor = engine.attach_auditor(config=AuditConfig())
        assert auditor.config.sample_every == 1

    def test_online_violation_detection(self):
        engine = Engine(
            [IntRegister("x"), IntRegister("y")],
            policy=NoInheritPolicy(),
        )
        auditor = engine.attach_auditor(config=AuditConfig())
        t1 = engine.begin_top()
        t2 = engine.begin_top()
        child = t1.begin_child()
        child.perform("x", IntRegister.read())
        child.commit()
        t2.perform("x", IntRegister.write(5))
        t2.perform("y", IntRegister.write(7))
        t2.commit()
        t1.perform("y", IntRegister.read())
        t1.commit()
        assert auditor.verdict == "violation"

    def test_correct_policy_same_workload_is_clean(self):
        from repro.errors import LockDenied

        engine = Engine(
            [IntRegister("x"), IntRegister("y")], policy="moss-rw"
        )
        auditor = engine.attach_auditor(config=AuditConfig())
        t1 = engine.begin_top()
        t2 = engine.begin_top()
        child = t1.begin_child()
        child.perform("x", IntRegister.read())
        child.commit()
        try:
            t2.perform("x", IntRegister.write(5))
        except LockDenied:
            pass
        t1.perform("y", IntRegister.read())
        t1.commit()
        t2.perform("x", IntRegister.write(5))
        t2.commit()
        assert auditor.verdict == "clean"


class TestThreadSafeAttachment:
    def test_threaded_run_is_audited_and_clean(self):
        facade = ThreadSafeEngine(
            [IntRegister("x"), IntRegister("y")], policy="moss-rw"
        )
        auditor = facade.attach_auditor(config=AuditConfig())

        def worker(object_name):
            for _ in range(5):
                top = facade.begin_top()
                try:
                    top.perform(object_name, IntRegister.add(1))
                    top.commit()
                except Exception:
                    if top.is_active:
                        top.abort()

        threads = [
            threading.Thread(target=worker, args=(name,))
            for name in ("x", "y")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        report = auditor.report()
        assert report.verdict == "clean"
        assert report.stats["tops_seen"] == 10

    def test_existing_auditor_can_be_reattached(self):
        facade = ThreadSafeEngine([IntRegister("x")], policy="moss-rw")
        auditor = OnlineAuditor(AuditConfig())
        assert facade.attach_auditor(auditor) is auditor


class TestSimulationAttachment:
    def test_long_sim_workload_stays_bounded(self):
        from repro.sim import (
            SimulationConfig,
            WorkloadConfig,
            make_store,
            make_workload,
            run_simulation,
        )

        config = WorkloadConfig(
            programs=60,
            objects=8,
            read_fraction=0.5,
            zipf_skew=0.6,
            depth=2,
            fanout=2,
            accesses_per_block=2,
        )
        programs = make_workload(11, config)
        store = make_store(config)
        auditor = OnlineAuditor(AuditConfig(sample_every=1))
        metrics = run_simulation(
            programs,
            store,
            SimulationConfig(mpl=6, policy="moss-rw", seed=11),
            auditor=auditor,
        )
        assert metrics.committed > 0
        report = auditor.report()
        assert report.verdict == "clean"
        # Bounded memory: the graph was garbage-collected during the
        # run instead of accumulating one vertex per committed top.
        assert report.stats["vertices_collected"] > 0
        assert report.stats["vertices_live"] <= metrics.committed
        assert (
            report.stats["vertices_collected"]
            + report.stats["vertices_live"]
            <= metrics.committed
        )
