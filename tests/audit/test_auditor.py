"""Deterministic scenario tests for the online auditor."""

import pytest

from repro.audit import AuditConfig, OnlineAuditor


def classic_violation(auditor):
    """T0.0 reads x, T0.1 overwrites x and writes y, T0.0 reads y.

    The committed-top graph is T0.0 -rw[x]-> T0.1 -wr[y]-> T0.0: no
    serial order of the two explains both observations.
    """
    auditor.txn_begin((0,))
    auditor.txn_begin((1,))
    auditor.access((0,), "x", "read", True)
    auditor.access((1,), "x", "write", False)
    auditor.access((1,), "y", "write", False)
    auditor.txn_commit((1,))
    auditor.access((0,), "y", "read", True)
    auditor.txn_commit((0,))
    return auditor


class TestViolationDetection:
    def test_classic_cycle_is_witnessed(self):
        auditor = classic_violation(OnlineAuditor())
        assert auditor.verdict == "violation"
        (violation,) = auditor.violations
        assert violation.objects == ("x", "y")
        assert violation.cycle_text() == "T0.0 -> T0.1 -> T0.0"

    def test_witness_describe_is_pinned(self):
        auditor = classic_violation(OnlineAuditor())
        (violation,) = auditor.violations
        assert violation.describe() == (
            "cycle T0.0 -> T0.1 -> T0.0 over x, y\n"
            "  T0.0 -rw[x]-> T0.1 (r x @0 < w x @1)\n"
            "  T0.1 -wr[y]-> T0.0 (w y @2 < r y @3)"
        )

    def test_report_render_is_pinned(self):
        auditor = classic_violation(OnlineAuditor())
        assert auditor.report().render() == (
            "verdict : violation\n"
            "audited : 2/2 top-level transaction(s) (sample 1/1)\n"
            "graph   : 0 live vertex(es), 1 collected\n"
            "witness 0:\n"
            "  cycle T0.0 -> T0.1 -> T0.0 over x, y\n"
            "    T0.0 -rw[x]-> T0.1 (r x @0 < w x @1)\n"
            "    T0.1 -wr[y]-> T0.0 (w y @2 < r y @3)"
        )

    def test_offender_eviction_restores_acyclicity(self):
        auditor = classic_violation(OnlineAuditor())
        # A later pair with a plain WR dependency must not re-flag
        # against the evicted offender.
        auditor.txn_begin((2,))
        auditor.txn_begin((3,))
        auditor.access((2,), "x", "write", False)
        auditor.txn_commit((2,))
        auditor.access((3,), "x", "read", True)
        auditor.txn_commit((3,))
        assert len(auditor.violations) == 1

    def test_serial_history_is_clean(self):
        auditor = OnlineAuditor()
        for top in range(3):
            auditor.txn_begin((top,))
            auditor.access((top,), "x", "write", False)
            auditor.access((top,), "x", "read", True)
            auditor.txn_commit((top,))
        assert auditor.verdict == "clean"
        assert auditor.violations == []

    def test_read_read_never_conflicts(self):
        auditor = OnlineAuditor()
        auditor.txn_begin((0,))
        auditor.txn_begin((1,))
        auditor.access((0,), "x", "read", True)
        auditor.access((1,), "x", "read", True)
        auditor.txn_commit((1,))
        auditor.txn_commit((0,))
        report = auditor.report()
        assert report.verdict == "clean"
        assert report.stats["edges_live"] == 0

    def test_aborted_top_never_enters_the_graph(self):
        auditor = OnlineAuditor()
        auditor.txn_begin((0,))
        auditor.txn_begin((1,))
        auditor.access((0,), "x", "read", True)
        auditor.access((1,), "x", "write", False)
        auditor.access((1,), "y", "write", False)
        auditor.txn_commit((1,))
        auditor.access((0,), "y", "read", True)
        auditor.txn_abort((0,))  # would have closed the cycle
        assert auditor.verdict == "clean"


class TestSubtreePruning:
    def test_aborted_child_accesses_are_pruned(self):
        auditor = OnlineAuditor()
        auditor.txn_begin((0,))
        auditor.txn_begin((1,))
        # The conflicting read happens inside a child that aborts:
        # Moss' versions undo it, so no rw edge may be drawn.
        auditor.txn_begin((0, 0))
        auditor.access((0, 0), "x", "read", True)
        auditor.txn_abort((0, 0))
        auditor.access((1,), "x", "write", False)
        auditor.access((1,), "y", "write", False)
        auditor.txn_commit((1,))
        auditor.access((0,), "y", "read", True)
        auditor.txn_commit((0,))
        assert auditor.verdict == "clean"
        assert auditor.stats["accesses_pruned"] == 1

    def test_pruning_is_prefix_exact(self):
        auditor = OnlineAuditor()
        auditor.txn_begin((0,))
        auditor.txn_begin((0, 0))
        auditor.txn_begin((0, 1))
        auditor.access((0, 0), "x", "write", False)
        auditor.access((0, 1), "y", "write", False)
        auditor.txn_abort((0, 1))
        auditor.txn_commit((0, 0))
        auditor.txn_commit((0,))
        # Only the aborted sibling's access vanished.
        assert auditor.stats["accesses_pruned"] == 1
        assert auditor.stats["accesses_buffered"] == 2


class TestSampling:
    def test_sample_every_skips_unaudited_trees(self):
        auditor = OnlineAuditor(AuditConfig(sample_every=2))
        for top in range(4):
            auditor.txn_begin((top,))
            auditor.access((top,), "x", "write", False)
            auditor.txn_commit((top,))
        assert auditor.stats["tops_seen"] == 4
        assert auditor.stats["tops_audited"] == 2

    def test_unaudited_trees_cost_no_buffering(self):
        auditor = OnlineAuditor(AuditConfig(sample_every=2))
        auditor.txn_begin((0,))
        auditor.txn_begin((1,))
        auditor.access((1,), "x", "write", False)
        auditor.txn_commit((1,))
        auditor.txn_commit((0,))
        assert auditor.stats["accesses_buffered"] == 0

    def test_sample_every_must_be_positive(self):
        with pytest.raises(ValueError):
            AuditConfig(sample_every=0)


class TestTrustDial:
    def test_conformant_schemes_sample(self):
        from repro.kernel import get_scheme

        config = AuditConfig.for_capabilities(
            get_scheme("moss-rw").capabilities
        )
        assert config.sample_every == 16

    def test_experimental_schemes_run_fully_audited(self):
        from repro.kernel import get_scheme

        config = AuditConfig.for_capabilities(
            get_scheme("mvto").capabilities
        )
        assert config.sample_every == 1


class TestInconclusive:
    def test_dropped_events_downgrade_clean(self):
        auditor = OnlineAuditor()
        auditor.txn_begin((0,))
        auditor.access((0,), "x", "write", False)
        auditor.txn_commit((0,))
        auditor.note_dropped_events(5)
        report = auditor.report()
        assert report.verdict == "inconclusive"
        assert not report.ok
        assert "dropped : 5 event(s)" in report.render()
        findings = report.to_analysis_report().findings
        assert [f.rule.code for f in findings] == ["SER002"]

    def test_violation_beats_inconclusive(self):
        auditor = classic_violation(OnlineAuditor())
        auditor.note_dropped_events(5)
        assert auditor.verdict == "violation"

    def test_zero_drops_stay_clean(self):
        auditor = OnlineAuditor()
        auditor.note_dropped_events(0)
        assert auditor.verdict == "clean"


class TestGarbageCollection:
    def test_sequential_tops_are_collected(self):
        auditor = OnlineAuditor()
        for top in range(50):
            auditor.txn_begin((top,))
            auditor.access((top,), "x", "write", False)
            auditor.txn_commit((top,))
        report = auditor.report()
        assert report.stats["vertices_collected"] == 50
        assert report.stats["vertices_live"] == 0
        assert auditor._timelines == {}

    def test_overlapping_top_retains_the_graph(self):
        auditor = OnlineAuditor()
        auditor.txn_begin((0,))  # stays live throughout
        for top in range(1, 5):
            auditor.txn_begin((top,))
            auditor.access((top,), "x", "write", False)
            auditor.txn_commit((top,))
        # T0.0 began before every commit: nothing may be collected
        # while it can still fold in edges against them.
        assert auditor.stats["vertices_collected"] == 0
        assert len(auditor.graph) == 4
        auditor.txn_commit((0,))
        # T0.0 folded no accesses (no vertex of its own); its commit
        # releases the barrier and the four writers are collected.
        assert auditor.stats["vertices_collected"] == 4
        assert len(auditor.graph) == 0

    def test_gc_soundness_late_conflict_is_still_caught(self):
        auditor = OnlineAuditor()
        auditor.txn_begin((0,))
        auditor.access((0,), "x", "read", True)
        auditor.txn_begin((1,))
        auditor.access((1,), "x", "write", False)
        auditor.access((1,), "y", "write", False)
        auditor.txn_commit((1,))
        # T0.1 must be retained: T0.0 is still live and began first.
        auditor.access((0,), "y", "read", True)
        auditor.txn_commit((0,))
        assert auditor.verdict == "violation"


class TestRobustness:
    def test_events_for_unknown_tops_are_ignored(self):
        auditor = OnlineAuditor()
        auditor.txn_commit((7,))
        auditor.txn_abort((7,))
        auditor.access((7,), "x", "write", False)
        auditor.txn_abort((7, 0))
        assert auditor.verdict == "clean"
        assert auditor.stats["accesses_buffered"] == 0

    def test_attach_helper_delegates(self):
        from repro.adt import IntRegister
        from repro.audit import attach_auditor
        from repro.engine.engine import Engine

        engine = Engine([IntRegister("x")], policy="moss-rw")
        auditor = attach_auditor(engine, config=AuditConfig())
        assert engine.obs.auditor is auditor
