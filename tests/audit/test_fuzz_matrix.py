"""Cross-scheme audit matrix over the deterministic fuzzer.

The acceptance bar of the auditor: every seeded broken-scheme run
produces a witness cycle; correct schemes produce zero false positives
across >= 25 seeds each.
"""

import pytest

from repro.fuzz import FuzzConfig, run_case

CLEAN_SCHEMES = ("moss-rw", "serial")
SEEDS = range(25)


class TestCleanSchemes:
    @pytest.mark.parametrize("scheme", CLEAN_SCHEMES)
    def test_no_false_positives_across_seeds(self, scheme):
        dirty = []
        for seed in SEEDS:
            result = run_case(
                FuzzConfig(seed=seed, scheme=scheme), audit=True
            )
            assert result.audit is not None
            if result.audit.violations:
                dirty.append((seed, result.audit.violations))
        assert dirty == []


class TestBrokenScheme:
    @pytest.mark.parametrize("seed", range(5))
    def test_every_seed_yields_a_witness_cycle(self, seed):
        result = run_case(
            FuzzConfig(seed=seed, scheme="broken-no-inherit"),
            audit=True,
        )
        assert result.audit is not None
        assert result.audit.verdict == "violation"
        for violation in result.audit.violations:
            assert violation.edges
            assert violation.cycle_text().startswith("T0.")

    def test_deny_spike_run_yields_a_witness_cycle(self):
        result = run_case(
            FuzzConfig(
                seed=0,
                faults="deny-spike",
                scheme="broken-no-inherit",
            ),
            audit=True,
        )
        assert result.audit is not None
        assert result.audit.verdict == "violation"
        assert result.audit.violations

    def test_audit_kind_fires_when_no_stronger_oracle(self):
        # The conformance oracle sees the same runs, so on the broken
        # scheme the case fails with kind "conformance" -- but the
        # audit report must still ride along with its witnesses.
        result = run_case(
            FuzzConfig(seed=0, scheme="broken-no-inherit"),
            audit=True,
        )
        assert result.failed
        assert result.audit.violations


class TestRingBufferInterplay:
    def test_truncated_trace_is_inconclusive_not_clean(self):
        result = run_case(
            FuzzConfig(seed=3, scheme="moss-rw"),
            trace_limit=8,
            audit=True,
        )
        assert result.audit is not None
        assert result.audit.dropped_events > 0
        assert result.audit.verdict == "inconclusive"
        # An inconclusive audit is not a failure verdict by itself.
        assert result.kind != "audit"

    def test_full_trace_stays_clean(self):
        result = run_case(
            FuzzConfig(seed=3, scheme="moss-rw"), audit=True
        )
        assert result.audit.verdict == "clean"


class TestSearchIntegration:
    def test_fuzz_search_passes_audit_through(self):
        from repro.fuzz import fuzz_search

        search = fuzz_search(
            FuzzConfig(seed=0, scheme="moss-rw"), runs=3, audit=True
        )
        assert search.failure is None

    def test_explore_bounded_passes_audit_through(self):
        from repro.fuzz import explore_bounded

        search = explore_bounded(
            FuzzConfig(seed=0, scheme="moss-rw"),
            max_preemptions=1,
            budget=5,
            audit=True,
        )
        assert search.failure is None
