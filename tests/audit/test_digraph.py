"""Unit tests for the shared directed-graph cycle core."""

import pytest

from repro.core.digraph import (
    find_cycle,
    shortest_cycle_through,
    topological_order,
)


def adjacency(edges):
    table = {}
    for source, target in edges:
        table.setdefault(source, []).append(target)
    return lambda node: table.get(node, ())


class TestFindCycle:
    def test_acyclic_graph_has_none(self):
        successors = adjacency([(1, 2), (2, 3), (1, 3)])
        assert find_cycle([1, 2, 3], successors) is None

    def test_simple_cycle_is_closed(self):
        successors = adjacency([(1, 2), (2, 3), (3, 1)])
        cycle = find_cycle([1, 2, 3], successors)
        assert cycle == [1, 2, 3, 1]

    def test_self_loop(self):
        successors = adjacency([(1, 1)])
        assert find_cycle([1], successors) == [1, 1]

    def test_deterministic_across_orderings(self):
        edges = [(3, 1), (1, 2), (2, 3), (4, 2)]
        successors = adjacency(edges)
        first = find_cycle([4, 3, 2, 1], successors)
        second = find_cycle([1, 2, 3, 4], successors)
        assert first == second

    def test_deep_chain_does_not_overflow(self):
        depth = 5000
        edges = [(i, i + 1) for i in range(depth)]
        edges.append((depth, 0))
        successors = adjacency(edges)
        cycle = find_cycle(range(depth + 1), successors)
        assert cycle is not None
        assert cycle[0] == cycle[-1]


class TestShortestCycleThrough:
    def test_prefers_the_short_cycle(self):
        # Through 1 there is a 2-cycle and a 4-cycle.
        successors = adjacency(
            [(1, 2), (2, 1), (1, 3), (3, 4), (4, 5), (5, 1)]
        )
        assert shortest_cycle_through(1, successors) == [1, 2, 1]

    def test_no_cycle_through_node(self):
        successors = adjacency([(1, 2), (2, 3)])
        assert shortest_cycle_through(1, successors) is None

    def test_cycle_elsewhere_does_not_count(self):
        successors = adjacency([(2, 3), (3, 2), (1, 2)])
        assert shortest_cycle_through(1, successors) is None

    def test_lexicographically_first_among_equal_lengths(self):
        successors = adjacency([(1, 2), (1, 3), (2, 1), (3, 1)])
        assert shortest_cycle_through(1, successors) == [1, 2, 1]


class TestTopologicalOrder:
    def test_orders_a_dag(self):
        successors = adjacency([(1, 2), (2, 3), (1, 3)])
        order = topological_order([3, 2, 1], successors)
        assert order.index(1) < order.index(2) < order.index(3)

    def test_raises_on_cycle(self):
        successors = adjacency([(1, 2), (2, 1)])
        with pytest.raises(ValueError):
            topological_order([1, 2], successors)

    def test_empty_graph(self):
        assert topological_order([], adjacency([])) == []
