"""Offline adapters: schedules, traced engines, JSONL streams."""

import json

import pytest

from repro.adt import IntRegister
from repro.analysis.faults import NoInheritPolicy
from repro.audit import (
    AuditConfig,
    audit_engine,
    audit_jsonl,
    audit_jsonl_file,
    audit_schedule,
)
from repro.engine.engine import Engine
from repro.errors import ReproError


def drive_broken_interleaving(policy):
    """The no-inherit anomaly: child read lock dropped at child commit."""
    engine = Engine(
        [IntRegister("x"), IntRegister("y")], policy=policy, trace=True
    )
    t1 = engine.begin_top()
    t2 = engine.begin_top()
    child = t1.begin_child()
    child.perform("x", IntRegister.read())
    child.commit()
    t2.perform("x", IntRegister.write(5))
    t2.perform("y", IntRegister.write(7))
    t2.commit()
    t1.perform("y", IntRegister.read())
    t1.commit()
    return engine


class TestAuditEngine:
    def test_broken_engine_yields_a_witness(self):
        engine = drive_broken_interleaving(NoInheritPolicy())
        report = audit_engine(engine, AuditConfig(sample_every=1))
        assert report.verdict == "violation"
        (violation,) = report.violations
        assert violation.objects == ("x", "y")

    def test_untraced_engine_is_rejected(self):
        engine = Engine([IntRegister("x")], policy="moss-rw")
        with pytest.raises(ReproError):
            audit_engine(engine)

    def test_ring_buffer_drops_downgrade_to_inconclusive(self):
        engine = Engine(
            [IntRegister("x")], policy="moss-rw", trace=True,
            trace_limit=4,
        )
        for _ in range(4):
            top = engine.begin_top()
            top.perform("x", IntRegister.read())
            top.commit()
        assert engine.recorder.dropped_events > 0
        report = audit_engine(engine)
        assert report.verdict == "inconclusive"


class TestAuditSchedule:
    def test_matches_the_online_auditor(self):
        engine = drive_broken_interleaving(NoInheritPolicy())
        system_type = engine.recorder.system_type(engine.specs)
        auditor = audit_schedule(
            system_type,
            engine.recorder.schedule(),
            config=AuditConfig(sample_every=1),
        )
        assert auditor.verdict == "violation"

    def test_serialization_witnesses_facade(self):
        from repro.checking import serialization_witnesses

        engine = drive_broken_interleaving(NoInheritPolicy())
        system_type = engine.recorder.system_type(engine.specs)
        witnesses = serialization_witnesses(
            system_type, engine.recorder.schedule()
        )
        assert len(witnesses) == 1
        assert witnesses[0].objects == ("x", "y")

    def test_clean_engine_has_no_witnesses(self):
        from repro.checking import serialization_witnesses

        engine = drive_clean_run()
        system_type = engine.recorder.system_type(engine.specs)
        assert serialization_witnesses(
            system_type, engine.recorder.schedule()
        ) == []


def drive_clean_run():
    engine = Engine(
        [IntRegister("x"), IntRegister("y")], policy="moss-rw",
        trace=True,
    )
    for _ in range(3):
        top = engine.begin_top()
        top.perform("x", IntRegister.add(1))
        top.perform("y", IntRegister.read())
        top.commit()
    return engine


def span(txn, start, end, outcome):
    return json.dumps(
        {
            "type": "span",
            "cat": "txn",
            "txn": txn,
            "start": start,
            "end": end,
            "args": {"outcome": outcome},
        }
    )


def access(txn, ts, object_name, is_read):
    return json.dumps(
        {
            "type": "instant",
            "cat": "access",
            "name": ("r " if is_read else "w ") + object_name,
            "ts": ts,
            "txn": txn,
            "args": {
                "object": object_name,
                "op": "read" if is_read else "write",
            },
        }
    )


class TestAuditJsonl:
    def test_handcrafted_violation_stream(self):
        lines = [
            span("T0.0", 0.0, 10.0, "commit"),
            span("T0.1", 0.0, 5.0, "commit"),
            access("T0.0", 1.0, "x", True),
            access("T0.1", 2.0, "x", False),
            access("T0.1", 3.0, "y", False),
            access("T0.0", 6.0, "y", True),
        ]
        report = audit_jsonl(lines)
        assert report.verdict == "violation"
        (violation,) = report.violations
        assert violation.objects == ("x", "y")

    def test_aborted_and_unfinished_spans_stay_out(self):
        lines = [
            span("T0.0", 0.0, 10.0, "abort"),
            span("T0.1", 0.0, 5.0, "unfinished"),
            access("T0.0", 1.0, "x", True),
            access("T0.1", 2.0, "x", False),
        ]
        report = audit_jsonl(lines)
        assert report.verdict == "clean"
        assert report.stats["vertices_live"] == 0

    def test_garbage_lines_are_skipped(self):
        lines = [
            "",
            json.dumps({"type": "instant", "cat": "access",
                        "name": "r x", "ts": 1.0, "txn": "bogus",
                        "args": {"object": "x", "op": "read"}}),
            span("T0.0", 0.0, 2.0, "commit"),
        ]
        assert audit_jsonl(lines).verdict == "clean"

    def test_round_trip_through_the_exporter(self, tmp_path):
        from repro.obs import Observer, write_jsonl
        from repro.obs.workloads import run_workload

        observer = Observer()
        run_workload("banking", observer, seed=3)
        path = tmp_path / "trace.jsonl"
        write_jsonl(str(path), observer)
        report = audit_jsonl_file(str(path))
        assert report.verdict == "clean"
        assert report.stats["tops_audited"] > 0
        assert report.stats["vertices_collected"] > 0
