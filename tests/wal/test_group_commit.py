"""Group commit: the fsync-coalescing sink and its deferred-flush seam.

Three layers under test:

* :class:`~repro.wal.log.GroupCommitSink` itself -- ticket semantics,
  coalescing under concurrency, durable shutdown;
* :meth:`~repro.wal.log.WriteAheadLog.flush_async` -- the split
  begin/wait API the coarse-locked facade needs;
* the :class:`~repro.engine.threadsafe.ThreadSafeEngine` seam -- a
  group sink attached through the facade defers the commit-path flush
  past the facade locks, and the resulting log still recovers to the
  live engine's state (coalescing must never trade away durability).
"""

import threading

import pytest

from repro.adt import Counter
from repro.engine.threadsafe import ThreadSafeEngine
from repro.wal import FileWalSink, recover
from repro.wal.log import GroupCommitSink, WriteAheadLog, read_log_bytes


class TestGroupCommitSink:
    def test_flush_makes_appends_durable(self, tmp_path):
        sink = GroupCommitSink(str(tmp_path), window_ms=1.0)
        sink.append(b"abc")
        sink.append(b"def")
        assert sink.flush() >= 0
        assert read_log_bytes(str(tmp_path)) == b"abcdef"
        sink.close()

    def test_ticket_taken_before_wait_covers_prior_appends(
        self, tmp_path
    ):
        sink = GroupCommitSink(str(tmp_path), window_ms=1.0)
        sink.append(b"x")
        ticket = sink.flush_begin()
        sink.flush_wait(ticket)
        assert sink.fsync_count >= 1
        assert read_log_bytes(str(tmp_path)) == b"x"
        sink.close()

    def test_concurrent_flushers_share_fsyncs(self, tmp_path):
        # A wide window so every thread's ticket lands inside one
        # group on any scheduler: the coalescing must show in the
        # fsync count, deterministically fewer than the flush count.
        sink = GroupCommitSink(str(tmp_path), window_ms=50.0)
        lock = threading.Lock()
        flushers = 8
        barrier = threading.Barrier(flushers)

        def committer(index):
            with lock:
                sink.append(b"r%d" % index)
                ticket = sink.flush_begin()
            barrier.wait()
            sink.flush_wait(ticket)

        pool = [
            threading.Thread(target=committer, args=(index,))
            for index in range(flushers)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert sink.fsync_count < flushers
        assert len(read_log_bytes(str(tmp_path))) == 2 * flushers
        sink.close()

    def test_close_is_durable_and_stops_the_syncer(self, tmp_path):
        sink = GroupCommitSink(str(tmp_path), window_ms=500.0)
        sink.append(b"tail")
        sink.close()
        assert read_log_bytes(str(tmp_path)) == b"tail"
        assert not sink._syncer.is_alive()
        # Waiters arriving after shutdown still return durable.
        sink2 = GroupCommitSink(str(tmp_path / "b"), window_ms=500.0)
        sink2.append(b"z")
        ticket = sink2.flush_begin()
        sink2.close()
        sink2.flush_wait(ticket)

    def test_roll_preserves_tickets_across_segments(self, tmp_path):
        sink = GroupCommitSink(str(tmp_path), window_ms=1.0)
        sink.append(b"one")
        sink.roll()
        sink.append(b"two")
        sink.flush()
        assert read_log_bytes(str(tmp_path)) == b"onetwo"
        sink.close()


class TestFlushAsync:
    def test_plain_sink_flushes_inline_and_returns_none(
        self, tmp_path
    ):
        wal = WriteAheadLog(sink=FileWalSink(str(tmp_path)))
        wal.open("moss-rw", [Counter("c")])
        assert wal.flush_async() is None
        assert wal.stats["flushes"] >= 1
        assert wal.stats["fsyncs"] >= 1

    def test_group_sink_returns_waiter_and_accounts_fsyncs(
        self, tmp_path
    ):
        wal = WriteAheadLog(
            sink=GroupCommitSink(str(tmp_path), window_ms=1.0)
        )
        wal.open("moss-rw", [Counter("c")])
        flushes = wal.stats["flushes"]
        waiter = wal.flush_async()
        assert callable(waiter)
        assert wal.stats["flushes"] == flushes + 1
        waiter()
        assert wal.stats["fsyncs"] >= 1
        wal.close()


class TestFacadeSeam:
    def test_facade_defers_only_for_group_sinks(self, tmp_path):
        plain = ThreadSafeEngine([Counter("c")], policy="moss-rw")
        plain.attach_wal(sink=FileWalSink(str(tmp_path / "plain")))
        assert plain._engine.wal_defers is False
        grouped = ThreadSafeEngine([Counter("c")], policy="moss-rw")
        grouped.attach_wal(
            sink=GroupCommitSink(str(tmp_path / "group"), window_ms=1.0)
        )
        assert grouped._engine.wal_defers is True

    @pytest.mark.parametrize("threads", [1, 4])
    def test_group_commit_log_recovers_to_live_state(
        self, tmp_path, threads
    ):
        specs = [Counter("own%d" % index) for index in range(threads)]
        facade = ThreadSafeEngine(specs, policy="moss-rw")
        wal = facade.attach_wal(
            sink=GroupCommitSink(str(tmp_path), window_ms=2.0)
        )
        per_thread = 25

        def worker(index):
            name = "own%d" % index
            for _ in range(per_thread):
                top = facade.begin_top()
                top.perform(name, Counter.increment(1))
                top.commit()

        pool = [
            threading.Thread(target=worker, args=(index,))
            for index in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        # No waiter may be left pending once all commits returned.
        assert facade._engine.pending_flush is None
        stats = dict(wal.stats)
        assert stats["flushes"] == threads * per_thread
        wal.close()
        state = recover(str(tmp_path))
        assert state.report.verdict == "complete"
        assert state.report.committed == {
            "own%d" % index: per_thread for index in range(threads)
        }

    def test_aborts_flush_through_the_seam_too(self, tmp_path):
        facade = ThreadSafeEngine([Counter("c")], policy="moss-rw")
        facade.attach_wal(
            sink=GroupCommitSink(str(tmp_path), window_ms=1.0)
        )
        top = facade.begin_top()
        top.perform("c", Counter.increment(1))
        top.abort()
        assert facade._engine.pending_flush is None
        state = recover(str(tmp_path))
        assert state.report.verdict == "complete"
        assert state.report.committed == {"c": 0}
