"""Shared machinery for the crash-recovery test harness.

Three independent pieces, deliberately *not* built on the production
recovery module so its answers can be checked differentially:

* a **scripted driver**: a seeded random sequence of engine API calls
  (begin/child/perform/commit/abort) that replays deterministically,
  with a measured step -> WAL-record-count mapping so every record
  boundary of a log maps back to a script prefix -- the never-crashed
  reference run the recovered state must match byte-for-byte;
* a **mini replayer**: an ~80-line holder-table reconstruction straight
  from the record payloads and the locking policy's published rules
  (grant owner, lock inheritance on commit, subtree discard on abort,
  presumed abort), sharing no code with ``repro.wal.recovery``;
* a **serial oracle**: committed values computed by applying each
  committed top-level's *surviving* operations (every enclosing
  subtransaction committed, no enclosing abort) serially in top-level
  commit order -- the paper's serializability contract for values.

``save_log_artifact`` writes a failing log to ``WAL_ARTIFACT_DIR`` (the
CI recovery-smoke job uploads that directory), so harness failures ship
their reproducer bytes.
"""

import os
import random

from repro.adt import Counter, IntRegister
from repro.core.names import ROOT
from repro.engine.engine import Engine
from repro.engine.locks import LockMode
from repro.engine.policies import make_policy
from repro.errors import LockDenied
from repro.wal import records as rec

#: Objects the scripted driver uses (mirrors the fuzz workload store:
#: even index -> Counter, odd -> IntRegister).
SCRIPT_OBJECTS = ("c", "x", "q")


def make_specs(objects=SCRIPT_OBJECTS):
    specs = []
    for index, name in enumerate(objects):
        if index % 2 == 0:
            specs.append(Counter(name))
        else:
            specs.append(IntRegister(name))
    return specs


def _operation_menu(objects=SCRIPT_OBJECTS):
    menu = []
    for index, name in enumerate(objects):
        if index % 2 == 0:
            menu.append((name, Counter.increment(1)))
            menu.append((name, Counter.increment(3)))
            menu.append((name, Counter.value()))
        else:
            menu.append((name, IntRegister.add(2)))
            menu.append((name, IntRegister.write(7)))
            menu.append((name, IntRegister.read()))
    return menu


# ----------------------------------------------------------------------
# Scripted driver
# ----------------------------------------------------------------------
def generate_script(
    seed, policy="moss-rw", objects=SCRIPT_OBJECTS, steps=60, rng=None
):
    """A seeded, replayable list of engine API calls.

    Steps: ``("begin_top",)``, ``("begin_child", parent_name)``,
    ``("perform", name, object, operation)``, ``("commit", name)``,
    ``("abort", name)``.  Generated against a scratch engine so every
    step is valid when replayed in order on a fresh engine of the same
    policy (perform steps may be denied -- deterministically so).
    """
    if rng is None:
        rng = random.Random(seed)
    menu = _operation_menu(objects)
    scratch = Engine(make_specs(objects), policy=policy)
    live = []  # live handles, generation order
    script = []
    for _ in range(steps):
        roll = rng.random()
        if not live or roll < 0.2:
            top = scratch.begin_top()
            live.append(top)
            script.append(("begin_top",))
            continue
        txn = rng.choice(live)
        if not txn.is_active:
            live = [t for t in live if t.is_active]
            continue
        if roll < 0.5:
            object_name, operation = rng.choice(menu)
            try:
                txn.perform(object_name, operation)
            except LockDenied:
                pass
            script.append(
                ("perform", txn.name, object_name, operation)
            )
        elif roll < 0.65 and txn.depth < 4:
            child = txn.begin_child()
            live.append(child)
            script.append(("begin_child", txn.name))
        elif roll < 0.9:
            if txn.live_children():
                continue
            txn.commit()
            live.remove(txn)
            script.append(("commit", txn.name))
        else:
            txn.abort()
            live = [t for t in live if t.is_active]
            script.append(("abort", txn.name))
    return script


def run_script(engine, script, wal=None):
    """Drive *engine* through *script*; return per-step record counts.

    The returned list has one entry per executed step: the total WAL
    record count (``wal.stats["appends"]``) after that step, or 0 when
    no *wal* is given.  Entry 0 of a WAL-attached run is preceded by
    the segment header (record count 1 before any step).
    """
    counts = []
    for step in script:
        kind = step[0]
        if kind == "begin_top":
            engine.begin_top()
        elif kind == "begin_child":
            engine.transactions[step[1]].begin_child()
        elif kind == "perform":
            try:
                engine.transactions[step[1]].perform(step[2], step[3])
            except LockDenied:
                pass
        elif kind == "commit":
            engine.transactions[step[1]].commit()
        elif kind == "abort":
            engine.transactions[step[1]].abort()
        else:  # pragma: no cover - script bug
            raise AssertionError("unknown step %r" % (step,))
        counts.append(wal.stats["appends"] if wal is not None else 0)
    return counts


def step_prefix_for(counts, record_count):
    """How many script steps a *record_count*-record prefix covers.

    Returns ``None`` when the boundary falls inside a step (possible
    only across a segment roll, where one step emits two records).
    """
    if record_count < 1:
        return None  # not even the segment header survived
    steps = 0
    for count in counts:
        if count <= record_count:
            steps += 1
        else:
            break
    covered = counts[steps - 1] if steps else 1
    return steps if covered == record_count else None


# ----------------------------------------------------------------------
# Independent mini replayer (holder tables only)
# ----------------------------------------------------------------------
def mini_replay_holders(records, policy_name, presume_abort=True):
    """Rebuild per-object holder tables straight from the payloads.

    Returns ``{object: {"write": sorted names, "read": sorted names}}``
    using only the policy's published rules -- no engine, no
    ``repro.wal.recovery`` code.
    """
    policy = make_policy(policy_name)
    header = rec.first_segment_header(records)
    objects = (
        [name for name, _ in header.payload["objects"]]
        if header
        else []
    )
    writes = {name: {ROOT} for name in objects}
    reads = {name: set() for name in objects}
    begun = []
    finished = set()

    def discard_subtree(doomed):
        for table in (writes, reads):
            for holders in table.values():
                for holder in [
                    h
                    for h in holders
                    if h != ROOT and h[: len(doomed)] == doomed
                ]:
                    holders.discard(holder)

    def move_up(name):
        mother = name[:-1]
        for table in (writes, reads):
            for holders in table.values():
                if name in holders:
                    holders.discard(name)
                    holders.add(mother)

    for record in records:
        payload = record.payload
        if record.kind == rec.BEGIN:
            begun.append(rec.name_from_wire(payload["txn"]))
        elif record.kind == rec.ACQUIRE:
            access = rec.name_from_wire(payload["access"])
            operation = rec.operation_from_wire(payload["op"])
            mode = policy.mode_for(operation)
            if policy.moves_locks:
                # The access leaf commits instantly, passing its lock
                # to the performer (Moss' instantaneous-leaf model).
                holder = access[:-1]
            else:
                holder = policy.owner_for(access)
            table = writes if mode is LockMode.WRITE else reads
            table[payload["object"]].add(holder)
        elif record.kind == rec.COMMIT:
            name = rec.name_from_wire(payload["txn"])
            finished.add(name)
            if policy.moves_locks or len(name) == 1:
                move_up(name)
        elif record.kind == rec.ABORT:
            name = rec.name_from_wire(payload["txn"])
            finished.add(name)
            discard_subtree(name)
    if presume_abort:
        for name in begun:
            if len(name) == 1 and name not in finished:
                discard_subtree(name)
    return {
        name: {
            "write": sorted(writes[name]),
            "read": sorted(reads[name]),
        }
        for name in objects
    }


def engine_holders(engine):
    """The engine's holder tables in the mini replayer's shape."""
    result = {}
    for object_name, managed in sorted(engine.locks.objects.items()):
        write_holders, read_holders = managed.holders_view()
        result[object_name] = {
            "write": sorted(write_holders),
            "read": sorted(read_holders),
        }
    return result


# ----------------------------------------------------------------------
# Serial oracle (committed values only)
# ----------------------------------------------------------------------
def serial_committed(records, objects=SCRIPT_OBJECTS):
    """Committed values by serial application of surviving operations.

    An ACQUIRE survives when every enclosing transaction up to its
    top level has a COMMIT record in the prefix and no enclosing
    transaction has an ABORT record.  Surviving operations apply in
    top-level commit order (strict locking makes that a correct
    serialization order), LSN order within a top level.
    """
    header = rec.first_segment_header(records)
    if header is not None:
        objects = tuple(
            name for name, _ in header.payload["objects"]
        )
    specs = {spec.name: spec for spec in make_specs(objects)}
    committed = {}
    aborted = []
    acquires = []
    for record in records:
        payload = record.payload
        if record.kind == rec.COMMIT:
            committed[rec.name_from_wire(payload["txn"])] = payload[
                "lsn"
            ]
        elif record.kind == rec.ABORT:
            aborted.append(rec.name_from_wire(payload["txn"]))
        elif record.kind == rec.ACQUIRE:
            acquires.append(
                (
                    payload["lsn"],
                    rec.name_from_wire(payload["access"]),
                    payload["object"],
                    rec.operation_from_wire(payload["op"]),
                )
            )

    def survives(access):
        for doomed in aborted:
            if access[: len(doomed)] == doomed:
                return False
        # Every proper ancestor (performer .. top) must have committed;
        # the leaf itself commits instantly and is never logged.
        for depth in range(1, len(access)):
            if access[:depth] not in committed:
                return False
        return True

    tops = sorted(
        {name for name in committed if len(name) == 1},
        key=lambda name: committed[name],
    )
    values = {
        name: specs[name].initial_value() for name in specs
    }
    for top in tops:
        ops = sorted(
            (lsn, object_name, operation)
            for lsn, access, object_name, operation in acquires
            if access[:1] == top and survives(access)
        )
        for _, object_name, operation in ops:
            _, values[object_name] = specs[object_name].apply(
                values[object_name], operation
            )
    return values


# ----------------------------------------------------------------------
# Failure artifacts
# ----------------------------------------------------------------------
def save_log_artifact(name, data):
    """Write *data* under ``WAL_ARTIFACT_DIR`` (no-op when unset)."""
    directory = os.environ.get("WAL_ARTIFACT_DIR")
    if not directory:
        return None
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, name)
    with open(path, "wb") as handle:
        handle.write(data)
    return path


def sampled_boundaries(boundaries, cap=12):
    """All boundaries when few, else an even sample (last kept)."""
    if len(boundaries) <= cap:
        return list(boundaries)
    stride = len(boundaries) // cap
    sampled = list(boundaries[::stride])
    if sampled[-1] != boundaries[-1]:
        sampled.append(boundaries[-1])
    return sampled
