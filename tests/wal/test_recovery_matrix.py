"""Cross-scheme recovery matrix over the deterministic fuzzer.

The acceptance bar of the durability layer: for every durable scheme,
>= 25 fuzz seeds under the ``crash`` and ``chaos`` fault presets
recover to a state whose post-recovery history the serializability
auditor certifies clean, and whose committed values match the serial
oracle.  Schemes that opt out of durability (``mvto``) are
capability-gated: ``run_case(wal=True)`` runs them without a log and
``attach_wal`` refuses.

Tier-1 runs a reduced seed slice per cell; the full >= 25-seed matrix
is marked slow and runs in the CI ``recovery-smoke`` job.
"""

import pytest

from repro.adt import Counter
from repro.audit import AuditConfig
from repro.errors import EngineError
from repro.engine.threadsafe import ThreadSafeEngine
from repro.fuzz import FuzzConfig, run_case
from repro.kernel import get_scheme
from repro.wal import recover, scan_records

from tests.wal.harness import (
    engine_holders,
    mini_replay_holders,
    save_log_artifact,
    serial_committed,
)

DURABLE_SCHEMES = ("moss-rw", "exclusive", "flat-2pl")
PRESETS = ("crash", "chaos")
QUICK_SEEDS = range(4)
FULL_SEEDS = range(25)


def _recover_and_check(scheme, preset, seed):
    result = run_case(
        FuzzConfig(
            seed=seed,
            faults=preset,
            scheme=scheme,
            workers=3,
            transactions_per_worker=2,
            steps_per_transaction=4,
        ),
        wal=True,
    )
    assert result.wal is not None
    data = result.wal.sink.getvalue()
    scan = scan_records(data)
    assert scan.clean

    state = recover(data)
    report = state.report
    assert report.verdict == "complete", report.render()
    assert report.scheme == scheme

    failures = []
    if engine_holders(state.engine) != mini_replay_holders(
        scan.records, scheme
    ):
        failures.append("holder tables diverge from mini replayer")
    if report.committed != serial_committed(scan.records):
        failures.append("committed values diverge from serial oracle")

    engine = state.engine
    auditor = engine.attach_auditor(config=AuditConfig(sample_every=1))
    for _ in range(3):
        top = engine.begin_top()
        top.perform("c", Counter.increment(1))
        top.commit()
    audit = auditor.report()
    if audit.verdict != "clean":
        failures.append("post-recovery audit: %s" % audit.verdict)

    if failures:
        save_log_artifact(
            "matrix-%s-%s-%d.wal" % (scheme, preset, seed), data
        )
    return failures


class TestDurableSchemes:
    @pytest.mark.parametrize("preset", PRESETS)
    @pytest.mark.parametrize("scheme", DURABLE_SCHEMES)
    def test_quick_matrix(self, scheme, preset):
        dirty = {}
        for seed in QUICK_SEEDS:
            failures = _recover_and_check(scheme, preset, seed)
            if failures:
                dirty[seed] = failures
        assert dirty == {}

    @pytest.mark.slow
    @pytest.mark.parametrize("preset", PRESETS)
    @pytest.mark.parametrize("scheme", DURABLE_SCHEMES)
    def test_full_matrix(self, scheme, preset):
        dirty = {}
        for seed in FULL_SEEDS:
            failures = _recover_and_check(scheme, preset, seed)
            if failures:
                dirty[seed] = failures
        assert dirty == {}


class TestCapabilityGate:
    def test_durable_flags(self):
        for scheme in DURABLE_SCHEMES:
            assert get_scheme(scheme).capabilities.durable
        assert not get_scheme("mvto").capabilities.durable

    def test_mvto_runs_without_a_log(self):
        result = run_case(
            FuzzConfig(seed=0, scheme="mvto", faults="crash"), wal=True
        )
        assert result.wal is None
        assert result.kind == "ok"

    def test_mvto_attach_wal_refuses(self):
        facade = ThreadSafeEngine([Counter("c")], policy="mvto")
        with pytest.raises(EngineError, match="durable"):
            facade.attach_wal()

    def test_attach_after_transactions_refuses(self):
        facade = ThreadSafeEngine([Counter("c")], policy="moss-rw")
        top = facade.begin_top()
        top.commit()
        with pytest.raises(EngineError, match="before any transaction"):
            facade.attach_wal()
