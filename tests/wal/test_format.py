"""Golden pin of the WAL on-disk format.

These bytes are the contract: a recovery build must read logs written
by any earlier build of the same ``FORMAT_VERSION``.  Changing any
golden value here means bumping :data:`repro.wal.records.FORMAT_VERSION`
and writing migration notes in docs/DURABILITY.md -- not updating the
test to match.
"""

import pytest

from repro.core.object_spec import Operation
from repro.wal import records as rec
from repro.wal import scan_records

GOLDEN_FRAMES = {
    # encode_record(SEGMENT, segment_payload(1, 0, "moss-rw",
    #                                        [("c", "Counter")]))
    "segment": bytes.fromhex(
        "50007b22666f726d6174223a312c226c736e223a312c226f626a65637473"
        "223a5b5b2263222c22436f756e746572225d5d2c22736368656d65223a22"
        "6d6f73732d7277222c227365676d656e74223a307ddeeda09f"
    ),
    # encode_record(BEGIN, begin_payload(2, (0,)))
    "begin": bytes.fromhex(
        "14017b226c736e223a322c2274786e223a5b305d7daf1557c0"
    ),
    # encode_record(ACQUIRE, acquire_payload(3, (0, 0), "c",
    #               Operation("increment", (1,), False), 0))
    "acquire": bytes.fromhex(
        "60027b22616363657373223a5b302c305d2c2267656e223a302c226c736e"
        "223a332c226f626a656374223a2263222c226f70223a7b2261726773223a"
        "5b315d2c226b696e64223a22696e6372656d656e74222c2272656164223a"
        "66616c73657d7dd245b0d3"
    ),
    # encode_record(COMMIT, commit_payload(4, (0,)))
    "commit": bytes.fromhex(
        "14037b226c736e223a342c2274786e223a5b305d7dc3c6a4e5"
    ),
    # encode_record(ABORT, abort_payload(5, (0,)))
    "abort": bytes.fromhex(
        "14047b226c736e223a352c2274786e223a5b305d7d3f2c459f"
    ),
}


class TestGoldenEncoding:
    def test_format_version_is_pinned(self):
        assert rec.FORMAT_VERSION == 1

    def test_segment_frame(self):
        assert (
            rec.encode_record(
                rec.SEGMENT,
                rec.segment_payload(1, 0, "moss-rw", [("c", "Counter")]),
            )
            == GOLDEN_FRAMES["segment"]
        )

    def test_begin_frame(self):
        assert (
            rec.encode_record(rec.BEGIN, rec.begin_payload(2, (0,)))
            == GOLDEN_FRAMES["begin"]
        )

    def test_acquire_frame(self):
        assert (
            rec.encode_record(
                rec.ACQUIRE,
                rec.acquire_payload(
                    3, (0, 0), "c", Operation("increment", (1,), False), 0
                ),
            )
            == GOLDEN_FRAMES["acquire"]
        )

    def test_commit_and_abort_frames(self):
        assert (
            rec.encode_record(rec.COMMIT, rec.commit_payload(4, (0,)))
            == GOLDEN_FRAMES["commit"]
        )
        assert (
            rec.encode_record(rec.ABORT, rec.abort_payload(5, (0,)))
            == GOLDEN_FRAMES["abort"]
        )

    def test_stream_of_golden_frames_scans_clean(self):
        data = b"".join(GOLDEN_FRAMES.values())
        scan = scan_records(data)
        assert scan.clean
        assert [record.kind_name for record in scan.records] == [
            "segment",
            "begin",
            "acquire",
            "commit",
            "abort",
        ]
        assert [
            record.payload["lsn"] for record in scan.records
        ] == [1, 2, 3, 4, 5]


class TestVarint:
    @pytest.mark.parametrize(
        "value,encoded",
        [
            (0, "00"),
            (1, "01"),
            (127, "7f"),
            (128, "8001"),
            (300, "ac02"),
            (1 << 21, "80808001"),
        ],
    )
    def test_known_encodings(self, value, encoded):
        assert rec.encode_varint(value) == bytes.fromhex(encoded)
        decoded, end = rec.decode_varint(bytes.fromhex(encoded), 0)
        assert decoded == value
        assert end == len(bytes.fromhex(encoded))

    def test_truncated_varint_is_torn(self):
        with pytest.raises(IndexError):
            rec.decode_varint(b"\x80", 0)

    def test_oversized_varint_is_corrupt(self):
        with pytest.raises(rec.WalFormatError):
            rec.decode_varint(b"\x80" * 6 + b"\x01", 0)

    def test_negative_value_rejected(self):
        with pytest.raises(rec.WalFormatError):
            rec.encode_varint(-1)


class TestScanDiscrimination:
    """Torn tails vs corrupt records: the cases recovery branches on."""

    def _stream(self):
        return b"".join(
            (
                GOLDEN_FRAMES["segment"],
                GOLDEN_FRAMES["begin"],
                GOLDEN_FRAMES["commit"],
            )
        )

    def test_truncation_mid_record_is_torn(self):
        data = self._stream()
        cut = len(GOLDEN_FRAMES["segment"]) + 3
        scan = scan_records(data[:cut])
        assert scan.stopped == "torn"
        assert len(scan.records) == 1
        assert scan.stopped_at == len(GOLDEN_FRAMES["segment"])

    def test_flipped_payload_byte_is_corrupt_crc(self):
        data = bytearray(self._stream())
        # Flip a byte inside the BEGIN record's JSON payload.
        index = len(GOLDEN_FRAMES["segment"]) + 5
        data[index] ^= 0xFF
        scan = scan_records(bytes(data))
        assert scan.stopped == "corrupt"
        assert scan.detail == "CRC mismatch"
        # Scanning stopped at the first bad record: only the segment
        # header survives, the clean COMMIT behind the damage is not
        # trusted.
        assert [r.kind_name for r in scan.records] == ["segment"]

    def test_unknown_kind_is_corrupt(self):
        import zlib

        body = bytes([9]) + b"{}"
        frame = (
            rec.encode_varint(len(body))
            + body
            + (zlib.crc32(body) & 0xFFFFFFFF).to_bytes(4, "little")
        )
        scan = scan_records(GOLDEN_FRAMES["segment"] + frame)
        assert scan.stopped == "corrupt"
        assert "unknown record kind" in scan.detail

    def test_oversized_length_is_corrupt_not_torn(self):
        data = GOLDEN_FRAMES["segment"] + rec.encode_varint(
            rec.MAX_BODY_BYTES + 1
        )
        scan = scan_records(data)
        assert scan.stopped == "corrupt"
        assert "exceeds limit" in scan.detail

    def test_boundaries_enumerate_record_ends(self):
        data = self._stream()
        scan = scan_records(data)
        assert scan.boundaries() == [
            0,
            len(GOLDEN_FRAMES["segment"]),
            len(GOLDEN_FRAMES["segment"]) + len(GOLDEN_FRAMES["begin"]),
            len(data),
        ]


class TestCorruptRecovery:
    """Recovery over a corrupt log stops at the first bad CRC with a
    ``partial`` verdict -- the inconclusive-style report."""

    def test_recovery_stops_at_first_bad_crc(self):
        from repro.adt import Counter
        from repro.engine.engine import Engine
        from repro.wal import recover

        engine = Engine([Counter("c")], policy="moss-rw")
        wal = engine.attach_wal()
        first = engine.begin_top()
        first.perform("c", Counter.increment(5))
        first.commit()
        second = engine.begin_top()
        second.perform("c", Counter.increment(9))
        second.commit()
        data = bytearray(wal.sink.getvalue())
        scan = scan_records(bytes(data))
        # Damage the second top's ACQUIRE payload.
        target = [
            r
            for r in scan.records
            if r.kind == rec.ACQUIRE and r.payload["lsn"] > 4
        ][0]
        data[target.offset + 4] ^= 0xFF

        state = recover(bytes(data))
        assert state.report.verdict == "partial"
        assert state.report.stopped == "corrupt"
        assert state.report.detail == "CRC mismatch"
        assert state.report.stopped_at == target.offset
        # Only the first (intact) commit is recovered; the second top
        # had begun, so presumed-abort kills it.
        assert state.report.committed == {"c": 5}
        assert state.report.presumed_aborted == ((1,),)
        rendered = state.report.render()
        assert "partial" in rendered
        assert "corrupt" in rendered


class TestWriterMatchesEncodeRecord:
    """The writer's inlined fast paths emit ``encode_record`` bytes.

    ``WriteAheadLog.log_*`` build frames from fixed byte templates on
    hot shapes (depth <= 3, plain-int names) and fall back to the
    generic encoders elsewhere; every emitted frame must be
    indistinguishable from the slow canonical encoding.
    """

    NAMES = [
        (0,),
        (3, 1),
        (3, 1, 2),
        (1, 2, 3, 4),  # depth 4: generic-encoder fallback
        (10**40, 10**41, 10**42),  # long body: varint length path
    ]
    ACCESSES = [(0,), (0, 1), (0, 1, 2), (0, 1, 2, 9)]

    def test_every_frame_matches_the_canonical_encoding(self):
        from repro.adt import Counter
        from repro.wal.log import MemoryWalSink, WriteAheadLog

        wal = WriteAheadLog(
            sink=MemoryWalSink(), segment_bytes=1 << 30
        )
        wal.open("moss-rw", [Counter("c")])
        expected = [
            rec.encode_record(
                rec.SEGMENT,
                rec.segment_payload(
                    1, 0, "moss-rw", [("c", "Counter")]
                ),
            )
        ]
        lsn = 1
        for name in self.NAMES:
            wal.log_begin(name)
            lsn += 1
            expected.append(
                rec.encode_record(
                    rec.BEGIN, rec.begin_payload(lsn, name)
                )
            )
        operations = [
            Operation("increment", (1,), False),
            Operation("increment", (1,), False),  # equal, distinct id
            Operation("value", (), True),
            Operation("weird", ((1, 2), "s"), False),
            Operation("odd", ([1], {"k": 1}), False),  # unhashable args
        ]
        for access in self.ACCESSES:
            for obj in ("c", "héllo", "x" * 150):
                for operation in operations:
                    for _ in range(2):  # second pass hits the caches
                        wal.log_acquire(access, obj, operation, 7)
                        lsn += 1
                        expected.append(
                            rec.encode_record(
                                rec.ACQUIRE,
                                rec.acquire_payload(
                                    lsn, access, obj, operation, 7
                                ),
                            )
                        )
        for name in self.NAMES:
            wal.log_commit(name)
            lsn += 1
            expected.append(
                rec.encode_record(
                    rec.COMMIT, rec.commit_payload(lsn, name)
                )
            )
            wal.log_abort(name)
            lsn += 1
            expected.append(
                rec.encode_record(
                    rec.ABORT, rec.abort_payload(lsn, name)
                )
            )
        assert wal.sink.getvalue() == b"".join(expected)
