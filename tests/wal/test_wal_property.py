"""Hypothesis round-trip laws for the durability layer.

For arbitrary generated operation sequences (Hypothesis drives the
scripted driver's decision RNG):

* **round trip**: ``recover(log(ops), presume_abort=False)`` rebuilds
  the crash-free engine's holder tables, version stacks, and
  generations exactly;
* **idempotence**: recovering the same log twice yields identical
  state, and re-logging a recovered run produces a log that recovers
  to the same state again;
* **prefix law**: truncating the log at *every* record boundary
  recovers ``complete`` with committed values matching the serial
  oracle -- and truncating mid-record recovers exactly the state of
  the last whole record.
"""

import pytest

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.engine import Engine
from repro.wal import (
    RecoveryError,
    holder_snapshot,
    recover,
    scan_records,
)

from tests.wal.harness import (
    engine_holders,
    generate_script,
    make_specs,
    mini_replay_holders,
    run_script,
    serial_committed,
)

COMMON = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _logged_run(rng, policy="moss-rw", steps=25):
    script = generate_script(0, policy=policy, steps=steps, rng=rng)
    engine = Engine(make_specs(), policy=policy)
    wal = engine.attach_wal()
    run_script(engine, script, wal=wal)
    return engine, wal.sink.getvalue()


class TestRoundTrip:
    @given(rng=st.randoms(use_true_random=False))
    @settings(**COMMON)
    def test_recover_equals_crash_free_state(self, rng):
        engine, data = _logged_run(rng)
        state = recover(data, presume_abort=False)
        assert state.report.verdict == "complete"
        assert holder_snapshot(state.engine) == holder_snapshot(engine)

    @given(
        rng=st.randoms(use_true_random=False),
        policy=st.sampled_from(["moss-rw", "exclusive", "flat-2pl"]),
    )
    @settings(**COMMON)
    def test_round_trip_across_policies(self, rng, policy):
        engine, data = _logged_run(rng, policy=policy)
        state = recover(data, presume_abort=False)
        assert holder_snapshot(state.engine) == holder_snapshot(engine)


class TestIdempotence:
    @given(rng=st.randoms(use_true_random=False))
    @settings(**COMMON)
    def test_recover_twice_is_identical(self, rng):
        _, data = _logged_run(rng)
        first = recover(data)
        second = recover(data)
        assert holder_snapshot(first.engine) == holder_snapshot(
            second.engine
        )
        assert first.report.committed == second.report.committed
        assert (
            first.report.presumed_aborted
            == second.report.presumed_aborted
        )

    @given(rng=st.randoms(use_true_random=False))
    @settings(**COMMON)
    def test_relogged_recovery_recovers_to_same_state(self, rng):
        # recover . log . recover == recover: replay the recovered
        # engine's own WAL (recovery drives a fresh engine, so logging
        # that replay reproduces the original log's effects).
        script = generate_script(0, steps=25, rng=rng)
        engine = Engine(make_specs(), policy="moss-rw")
        wal = engine.attach_wal()
        run_script(engine, script, wal=wal)
        data = wal.sink.getvalue()

        relog_engine = Engine(make_specs(), policy="moss-rw")
        relog_wal = relog_engine.attach_wal()
        run_script(relog_engine, script)
        relogged = relog_wal.sink.getvalue()
        assert relogged == data  # logging itself is deterministic

        first = recover(data)
        second = recover(relogged)
        assert holder_snapshot(first.engine) == holder_snapshot(
            second.engine
        )


class TestPrefixLaw:
    @given(rng=st.randoms(use_true_random=False))
    @settings(**COMMON)
    def test_every_boundary_truncation_recovers(self, rng):
        _, data = _logged_run(rng, steps=20)
        scan = scan_records(data)
        for boundary in scan.boundaries()[1:]:
            prefix = data[:boundary]
            state = recover(prefix)
            assert state.report.verdict == "complete"
            assert state.report.committed == serial_committed(
                scan_records(prefix).records
            )
            assert engine_holders(state.engine) == mini_replay_holders(
                scan_records(prefix).records, "moss-rw"
            )

    @given(
        rng=st.randoms(use_true_random=False),
        extra=st.integers(min_value=1, max_value=4),
    )
    @settings(**COMMON)
    def test_mid_record_truncation_equals_last_boundary(
        self, rng, extra
    ):
        _, data = _logged_run(rng, steps=20)
        scan = scan_records(data)
        boundary = scan.boundaries()[-2]
        cut = boundary + min(extra, len(data) - boundary - 1)
        if cut == len(data) or cut <= 0:
            return
        torn = recover(data[:cut])
        clean = recover(data[:boundary])
        assert torn.report.stopped == "torn"
        assert holder_snapshot(torn.engine) == holder_snapshot(
            clean.engine
        )

    @given(rng=st.randoms(use_true_random=False))
    @settings(**COMMON)
    def test_headerless_prefix_raises(self, rng):
        _, data = _logged_run(rng, steps=10)
        with pytest.raises(RecoveryError):
            recover(data[:0])
