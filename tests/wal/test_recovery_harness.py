"""The crash-recovery harness: truncate, recover, validate three ways.

1. **Holder-table identity** against a never-crashed reference run of
   the surviving prefix (the scripted driver's step -> record-count
   mapping makes the reference non-circular: it is a fresh engine
   driven through the same script prefix, never through recovery);
2. the PR 6 **serializability auditor** over post-recovery history on
   the recovered engine;
3. the **serial oracle** for committed values (surviving operations
   applied serially in top-level commit order).

The independent mini replayer in :mod:`tests.wal.harness` additionally
differential-checks the production recovery module's holder tables on
every fuzz log, including every sampled truncation prefix.
"""

import pytest

from repro.adt import Counter
from repro.audit import AuditConfig
from repro.engine.engine import Engine
from repro.fuzz import FuzzConfig, run_case
from repro.wal import (
    MemoryWalSink,
    RecoveryError,
    WriteAheadLog,
    holder_snapshot,
    recover,
    scan_records,
)

from tests.wal.harness import (
    engine_holders,
    generate_script,
    make_specs,
    mini_replay_holders,
    run_script,
    sampled_boundaries,
    save_log_artifact,
    serial_committed,
    step_prefix_for,
)

SCRIPT_SEEDS = range(6)
FUZZ_SEEDS = (2, 6, 7, 8)  # seeds whose crashes hit live-child blocks


class TestScriptedTruncation:
    """Every record boundary of a scripted run recovers to the exact
    state of a never-crashed reference run of the same prefix."""

    @pytest.mark.parametrize("seed", SCRIPT_SEEDS)
    @pytest.mark.parametrize("policy", ["moss-rw", "exclusive"])
    def test_every_boundary_matches_reference_run(self, seed, policy):
        script = generate_script(seed, policy=policy)
        engine = Engine(make_specs(), policy=policy)
        wal = engine.attach_wal()
        counts = run_script(engine, script, wal=wal)
        data = wal.sink.getvalue()
        scan = scan_records(data)
        assert scan.clean

        for record_count, boundary in enumerate(scan.boundaries()):
            steps = step_prefix_for(counts, record_count)
            if steps is None:
                # Nothing before the header survives a crash usefully.
                with pytest.raises(RecoveryError):
                    recover(data[:boundary])
                continue
            state = recover(data[:boundary], presume_abort=False)
            assert state.report.verdict == "complete"
            assert state.report.records_applied == record_count

            reference = Engine(make_specs(), policy=policy)
            run_script(reference, script[:steps])
            if holder_snapshot(reference) != holder_snapshot(
                state.engine
            ):
                save_log_artifact(
                    "script-%s-%d-%d.wal" % (policy, seed, boundary),
                    data[:boundary],
                )
                assert holder_snapshot(reference) == holder_snapshot(
                    state.engine
                )

    @pytest.mark.parametrize("seed", SCRIPT_SEEDS)
    def test_presumed_abort_matches_oracle_at_boundaries(self, seed):
        script = generate_script(seed)
        engine = Engine(make_specs(), policy="moss-rw")
        wal = engine.attach_wal()
        run_script(engine, script, wal=wal)
        data = wal.sink.getvalue()
        scan = scan_records(data)
        for boundary in sampled_boundaries(scan.boundaries()[1:]):
            prefix = data[:boundary]
            state = recover(prefix)
            expected = serial_committed(scan_records(prefix).records)
            if state.report.committed != expected:
                save_log_artifact(
                    "oracle-%d-%d.wal" % (seed, boundary), prefix
                )
            assert state.report.committed == expected

    def test_torn_tail_recovers_to_previous_boundary(self):
        script = generate_script(0)
        engine = Engine(make_specs(), policy="moss-rw")
        wal = engine.attach_wal()
        run_script(engine, script, wal=wal)
        data = wal.sink.getvalue()
        scan = scan_records(data)
        # Cut mid-record (three bytes past a boundary): torn write.
        boundary = scan.boundaries()[-3]
        torn = data[: boundary + 3]
        state = recover(torn)
        assert state.report.verdict == "partial"
        assert state.report.stopped == "torn"
        clean = recover(data[:boundary])
        assert holder_snapshot(state.engine) == holder_snapshot(
            clean.engine
        )
        assert state.report.committed == clean.report.committed

    def test_segment_roll_boundaries_recover(self):
        # A tiny segment budget forces rolls mid-script; recovery must
        # read across segment headers transparently.
        script = generate_script(1)
        engine = Engine(make_specs(), policy="moss-rw")
        wal = engine.attach_wal(
            WriteAheadLog(sink=MemoryWalSink(), segment_bytes=256)
        )
        run_script(engine, script, wal=wal)
        assert wal.stats["segment_rolls"] > 0
        data = wal.sink.getvalue()
        scan = scan_records(data)
        assert scan.clean
        state = recover(data, presume_abort=False)
        assert state.report.verdict == "complete"
        assert state.report.segments == wal.stats["segment_rolls"] + 1
        assert holder_snapshot(state.engine) == holder_snapshot(engine)


class TestCrashFuzzRecovery:
    """Fuzzer-driven runs with the seeded crash injector: recover the
    log (full and truncated), then validate all three ways."""

    def _fuzz_log(self, seed, faults="crash"):
        result = run_case(
            FuzzConfig(
                seed=seed,
                faults=faults,
                workers=3,
                transactions_per_worker=3,
                steps_per_transaction=5,
            ),
            wal=True,
        )
        assert result.wal is not None
        return result, result.wal.sink.getvalue()

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_crashed_runs_recover_with_holder_identity(self, seed):
        result, data = self._fuzz_log(seed)
        assert sum(log.crashed for log in result.logs) > 0
        scan = scan_records(data)
        assert scan.clean
        for boundary in sampled_boundaries(scan.boundaries()[1:]):
            prefix = data[:boundary]
            state = recover(prefix)
            assert state.report.verdict == "complete"
            expected = mini_replay_holders(
                scan_records(prefix).records, "moss-rw"
            )
            if engine_holders(state.engine) != expected:
                save_log_artifact(
                    "fuzz-%d-%d.wal" % (seed, boundary), prefix
                )
            assert engine_holders(state.engine) == expected
            assert state.report.committed == serial_committed(
                scan_records(prefix).records
            )

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_recovered_engine_passes_post_crash_audit(self, seed):
        _, data = self._fuzz_log(seed)
        state = recover(data)
        engine = state.engine
        auditor = engine.attach_auditor(
            config=AuditConfig(sample_every=1)
        )
        # Post-recovery history: new transactions against the
        # recovered store must serialize cleanly with each other.
        for _ in range(4):
            top = engine.begin_top()
            top.perform("c", Counter.increment(1))
            top.perform("c", Counter.value())
            top.commit()
        report = auditor.report()
        assert report.verdict == "clean", report.render()

    def test_crash_with_live_child_recovers(self):
        # The fixed injector crashes workers mid-child-block; the log
        # then carries BEGIN records for children whose top aborted
        # around them, exactly the orphan shape recovery must handle.
        result, data = self._fuzz_log(2)
        assert (
            sum(log.crashed_with_live_child for log in result.logs) > 0
        )
        state = recover(data)
        assert state.report.verdict == "complete"
        assert engine_holders(state.engine) == mini_replay_holders(
            scan_records(data).records, "moss-rw"
        )

    def test_recovery_is_idempotent(self):
        _, data = self._fuzz_log(6)
        first = recover(data)
        second = recover(data)
        assert holder_snapshot(first.engine) == holder_snapshot(
            second.engine
        )
        assert first.report.committed == second.report.committed
        assert (
            first.report.presumed_aborted
            == second.report.presumed_aborted
        )


@pytest.mark.slow
class TestDenseTruncation:
    """Every boundary (no sampling) across fuzz crash logs."""

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_all_boundaries(self, seed):
        result = run_case(
            FuzzConfig(
                seed=seed,
                faults="chaos",
                workers=3,
                transactions_per_worker=3,
                steps_per_transaction=5,
            ),
            wal=True,
        )
        data = result.wal.sink.getvalue()
        scan = scan_records(data)
        for boundary in scan.boundaries()[1:]:
            prefix = data[:boundary]
            state = recover(prefix)
            assert state.report.verdict == "complete"
            assert engine_holders(state.engine) == mini_replay_holders(
                scan_records(prefix).records, "moss-rw"
            )
            assert state.report.committed == serial_committed(
                scan_records(prefix).records
            )
