"""Pinned regressions for the durability PR.

The headline pin: the fuzzer ``crash`` injector used to draw its crash
decision only between *top-level* steps, so a crashed worker could
never have an in-flight nested child -- recovery's orphan handling
went untested.  The injector now also draws before each access inside
a child block and crash-aborts the top while the child handle is live;
these seeds pin that the new path actually fires and that the logs it
produces recover.
"""

import pytest

from repro.fuzz import FuzzConfig, run_case
from repro.wal import recover, scan_records

from tests.wal.harness import (
    engine_holders,
    mini_replay_holders,
    serial_committed,
)

#: Seeds (workers=3, tops=3, steps=5) where the in-child crash draw
#: fires; found by sweeping seeds 0..39 after the injector fix.
LIVE_CHILD_SEEDS = (2, 6, 7)


def _crash_case(seed):
    return run_case(
        FuzzConfig(
            seed=seed,
            faults="crash",
            workers=3,
            transactions_per_worker=3,
            steps_per_transaction=5,
        ),
        wal=True,
    )


class TestCrashInjectorCoversChildren:
    @pytest.mark.parametrize("seed", LIVE_CHILD_SEEDS)
    def test_crashes_fire_inside_child_blocks(self, seed):
        result = _crash_case(seed)
        assert result.kind == "ok"
        live_child_crashes = sum(
            log.crashed_with_live_child for log in result.logs
        )
        assert live_child_crashes > 0
        # Live-child crashes are a subset of all crashes.
        assert (
            sum(log.crashed for log in result.logs)
            >= live_child_crashes
        )

    def test_seed_2_pins_the_injector_stream(self):
        # The per-worker fault RNG streams are consumed in program
        # order, so the counts are exact, not merely positive.  A
        # change here means the crash placement moved: update the
        # numbers only with a fuzz re-sweep showing child coverage.
        result = _crash_case(2)
        assert [log.crashed for log in result.logs] == [2, 0, 2]
        assert [
            log.crashed_with_live_child for log in result.logs
        ] == [1, 0, 1]

    @pytest.mark.parametrize("seed", LIVE_CHILD_SEEDS)
    def test_live_child_crash_logs_recover(self, seed):
        result = _crash_case(seed)
        data = result.wal.sink.getvalue()
        state = recover(data)
        assert state.report.verdict == "complete"
        records = scan_records(data).records
        assert engine_holders(state.engine) == mini_replay_holders(
            records, "moss-rw"
        )
        assert state.report.committed == serial_committed(records)

    def test_crash_runs_replay_byte_identically(self):
        first = _crash_case(2)
        second = run_case(first.config, choices=first.choices, wal=True)
        assert second.digest == first.digest
        assert (
            second.wal.sink.getvalue() == first.wal.sink.getvalue()
        )

    def test_zero_rate_presets_draw_nothing(self):
        # Fault modes with rate 0 must not consume RNG draws, so adding
        # the in-child crash draw cannot shift deny/orphan placement
        # for presets that do not crash (pinned digests elsewhere rely
        # on this).
        result = run_case(FuzzConfig(seed=3, faults="none"))
        assert result.kind == "ok"
        assert all(log.crashed == 0 for log in result.logs)
        assert all(
            log.crashed_with_live_child == 0 for log in result.logs
        )
