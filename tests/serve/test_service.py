"""End-to-end service tests: real sockets, real threads, real engine.

Every test spins a :class:`~repro.serve.server.ServerThread` on an
ephemeral port and drives it with the real clients.  The headline
check is the serial oracle: N concurrent remote clients racing
``Counter`` increments must leave the counter equal to the number of
*acknowledged* commits -- per scheme, with the online auditor attached
and reporting clean.
"""

import random
import threading
import time

import pytest

from repro.adt import Counter, IntRegister
from repro.serve import protocol as proto
from repro.serve.client import ServeError, SyncClient, backoff_ms
from repro.serve.loadgen import LoadgenConfig, run_loadgen
from repro.serve.server import ServeConfig, TransactionServer


def start_server(scheme="moss-rw", objects=None, audit=True, **config):
    if objects is None:
        objects = [Counter("c%d" % i) for i in range(4)]
    server = TransactionServer(
        objects, scheme=scheme, config=ServeConfig(port=0, **config)
    )
    if audit:
        server.attach_auditor()
    handle = server.start_in_thread()
    return server, handle


@pytest.fixture()
def server():
    server, handle = start_server()
    yield server
    handle.stop()


def connect(server):
    host, port = server.address
    return SyncClient(host, port)


class TestBasics:
    def test_hello_handshake(self, server):
        with connect(server) as client:
            hello = client.hello()
            assert hello["version"] == proto.PROTOCOL_VERSION
            assert hello["scheme"] == "moss-rw"
            assert hello["objects"] == ["c0", "c1", "c2", "c3"]

    def test_hello_version_mismatch(self, server):
        with connect(server) as client:
            with pytest.raises(ServeError) as excinfo:
                client.call("hello", version=99)
            assert excinfo.value.code == proto.ERR_VERSION

    def test_ping_echoes_payload(self, server):
        with connect(server) as client:
            assert client.ping(["x", 1])["payload"] == ["x", 1]

    def test_stats_reports_engine_and_admission(self, server):
        with connect(server) as client:
            stats = client.stats()
            assert stats["scheme"] == "moss-rw"
            assert stats["connections"] == 1
            assert "engine" in stats and "metrics" in stats
            assert stats["audit_verdict"] == "clean"

    def test_remote_nested_transactions(self, server):
        with connect(server) as client:
            top = client.begin()
            child = client.child(top)
            client.write(child, "c0", kind="increment", args=[5])
            client.commit(child)
            doomed = client.child(top)
            client.write(doomed, "c0", kind="increment", args=[100])
            client.abort(doomed)
            client.commit(top)
            probe = client.begin()
            assert client.read(probe, "c0", kind="value") == 5
            client.commit(probe)

    def test_bad_frame_closes_connection(self, server):
        host, port = server.address
        import socket

        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(b"\x05garbg\x00\x00\x00\x00")
            decoder = proto.FrameDecoder()
            messages = []
            while True:
                data = sock.recv(4096)
                if not data:
                    break  # server hung up, as promised
                messages.extend(decoder.feed(data))
            assert len(messages) == 1
            assert messages[0]["error"]["code"] == proto.ERR_BAD_FRAME


def _hammer(server, scheme, clients=4, txns=25):
    """Race increments from N real client threads; return acked count."""
    host, port = server.address
    acked = [0] * clients
    errors = []

    def worker(index):
        rng = random.Random(index)
        try:
            with SyncClient(host, port, timeout=30.0) as client:
                for _ in range(txns):
                    for attempt in range(50):
                        try:
                            txn = client.begin()
                            client.write(
                                txn,
                                "c%d" % rng.randrange(4),
                                kind="increment",
                                args=[1],
                            )
                            client.commit(txn)
                            acked[index] += 1
                            break
                        except ServeError as exc:
                            if not exc.retryable:
                                raise
                            if exc.code != proto.ERR_TXN_ABORTED:
                                try:
                                    client.abort(txn)
                                except ServeError:
                                    pass
                            time.sleep(
                                backoff_ms(
                                    exc.retry_after_ms, attempt, rng
                                )
                                / 1000.0
                            )
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(index,))
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    return sum(acked)


class TestSerialOracle:
    @pytest.mark.parametrize("scheme", ["moss-rw", "exclusive", "mvto"])
    def test_acked_commits_equal_final_state(self, scheme):
        server, handle = start_server(scheme=scheme, op_timeout=10.0)
        try:
            acked = _hammer(server, scheme)
            # The oracle: every acknowledged commit is durable in the
            # engine, nothing else is.
            total = 0
            with connect(server) as client:
                txn = client.begin()
                for name in ("c0", "c1", "c2", "c3"):
                    total += client.read(txn, name, kind="value")
                client.commit(txn)
            assert total == acked
            assert server.auditor.verdict == "clean"
        finally:
            handle.stop()


class TestOrphanCleanup:
    def test_disconnect_aborts_open_transactions(self, server):
        host, port = server.address
        first = SyncClient(host, port)
        txn = first.begin()
        first.write(txn, "c0", kind="increment", args=[7])
        # Drop the connection with the transaction open and its lock
        # held: the server must abort the orphan and free the lock.
        first.close()
        with SyncClient(host, port) as second:
            txn2 = second.begin()
            deadline = time.monotonic() + 5.0
            while True:
                try:
                    second.write(
                        txn2, "c0", kind="increment", args=[1]
                    )
                    break
                except ServeError as exc:
                    assert exc.retryable
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
            second.commit(txn2)
            probe = second.begin()
            # The orphan's increment is gone; only ours survived.
            assert second.read(probe, "c0", kind="value") == 1
            second.commit(probe)
            stats = second.stats()
            counters = stats["metrics"]["counters"]
            assert counters.get("serve.orphan_aborts", 0) >= 1

    def test_idle_connections_are_reaped(self):
        server, handle = start_server(idle_timeout=0.2)
        try:
            host, port = server.address
            idle = SyncClient(host, port)
            idle.ping()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                try:
                    idle.ping()
                    time.sleep(0.3)  # stop pinging; go idle
                    idle._sock.settimeout(1.0)
                    if not idle._sock.recv(1):
                        break  # EOF: reaped
                except (ConnectionError, OSError):
                    break
            else:
                pytest.fail("idle connection was never reaped")
            with SyncClient(host, port) as probe:
                stats = probe.stats()
            counters = stats["metrics"]["counters"]
            assert counters.get("serve.reaped", 0) >= 1
        finally:
            handle.stop()


class TestOverload:
    def test_burst_sheds_and_bounds_inflight(self):
        server, handle = start_server(
            audit=False,
            max_inflight=4,
            max_inflight_per_conn=4,
            max_batch=2,
        )
        try:
            with connect(server) as client:
                txn = client.begin()
                responses = client.pipeline(
                    [
                        (
                            "read",
                            {
                                "txn": list(txn),
                                "object": "c0",
                                "kind": "value",
                            },
                        )
                    ]
                    * 64
                )
            ok = [r for r in responses if r.get("ok")]
            shed = [
                r
                for r in responses
                if not r.get("ok")
                and r["error"]["code"] == proto.ERR_OVERLOADED
            ]
            assert len(ok) + len(shed) == 64
            assert shed, "a 64-deep burst over cap 4 must shed"
            for response in shed:
                assert response["error"]["retryable"] is True
                assert response["error"]["retry_after_ms"] >= 1
            stats = server.stats()
            assert stats["inflight_high_water"] <= 4
            assert stats["shed"] == len(shed)
            counters = stats["metrics"]["counters"]
            assert counters["serve.shed"] == len(shed)
        finally:
            handle.stop()

    def test_token_bucket_sheds_above_rate(self):
        server, handle = start_server(audit=False, rate=5.0, burst=2.0)
        try:
            with connect(server) as client:
                outcomes = []
                txn = None
                for _ in range(10):
                    try:
                        txn = client.begin()
                        outcomes.append("ok")
                    except ServeError as exc:
                        outcomes.append(exc.code)
                assert outcomes.count("ok") >= 2
                assert proto.ERR_OVERLOADED in outcomes
        finally:
            handle.stop()


class TestBatching:
    def test_pipelined_ops_coalesce(self):
        server, handle = start_server(
            audit=False,
            max_batch=32,
            max_inflight=128,
            max_inflight_per_conn=128,
        )
        try:
            with connect(server) as client:
                txn = client.begin()
                responses = client.pipeline(
                    [
                        (
                            "write",
                            {
                                "txn": list(txn),
                                "object": "c0",
                                "kind": "increment",
                                "args": [1],
                            },
                        )
                    ]
                    * 48
                )
                assert all(r.get("ok") for r in responses)
                client.commit(txn)
            histograms = server.metrics.snapshot()["histograms"]
            batches = histograms["serve.batch_size"]
            assert batches["count"] >= 1
            # Coalescing happened: fewer executor hops than ops.
            assert batches["count"] < 48
            assert batches["max"] > 1
        finally:
            handle.stop()

    def test_max_batch_one_disables_coalescing(self):
        server, handle = start_server(audit=False, max_batch=1)
        try:
            with connect(server) as client:
                txn = client.begin()
                responses = client.pipeline(
                    [
                        (
                            "read",
                            {
                                "txn": list(txn),
                                "object": "c0",
                                "kind": "value",
                            },
                        )
                    ]
                    * 16
                )
                assert all(r.get("ok") for r in responses)
            histograms = server.metrics.snapshot()["histograms"]
            assert histograms["serve.batch_size"]["max"] == 1.0
        finally:
            handle.stop()


class TestLoadgen:
    """The load generators against an in-process server."""

    def test_closed_loop_reports_commits(self):
        server, handle = start_server(audit=False)
        try:
            host, port = server.address
            report = run_loadgen(
                LoadgenConfig(
                    host=host,
                    port=port,
                    mode="closed",
                    clients=3,
                    duration=0.7,
                    ops_per_txn=2,
                    seed=7,
                )
            )
            assert report.committed > 0
            assert report.failed == 0
            assert report.throughput > 0
            data = report.to_json()
            assert data["mode"] == "closed"
            assert data["latency_ms"]["p50"] > 0
            assert "p99" in data["latency_ms"]
        finally:
            handle.stop()

    def test_open_loop_reports_commits(self):
        server, handle = start_server(audit=False)
        try:
            host, port = server.address
            report = run_loadgen(
                LoadgenConfig(
                    host=host,
                    port=port,
                    mode="open",
                    clients=4,
                    duration=0.7,
                    rate=60.0,
                    ops_per_txn=2,
                    seed=7,
                )
            )
            assert report.committed > 0
            assert report.failed == 0
            assert "open" in report.render()
        finally:
            handle.stop()

    def test_loadgen_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            LoadgenConfig(mode="sideways")


class TestServerLifecycle:
    def test_stop_is_clean_with_live_connections(self):
        server, handle = start_server(audit=False)
        host, port = server.address
        client = SyncClient(host, port)
        txn = client.begin()
        client.write(txn, "c0", kind="increment", args=[1])
        handle.stop()
        # The dangling transaction was aborted, not committed.
        assert server.facade.engine.stats["commits"] == 0
        client.close()

    def test_registers_as_served_objects(self):
        server, handle = start_server(
            audit=False, objects=[IntRegister("r0"), IntRegister("r1")]
        )
        try:
            with connect(server) as client:
                assert client.hello()["objects"] == ["r0", "r1"]
                txn = client.begin()
                client.write(txn, "r0", value=41)
                assert client.read(txn, "r0") == 41
                client.commit(txn)
        finally:
            handle.stop()
