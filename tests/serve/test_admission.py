"""Unit tests for admission control (deterministic, injected clock)."""

import pytest

from repro.serve.admission import AdmissionController, TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_dry(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        assert [bucket.try_take() for _ in range(3)] == [0.0] * 3
        wait = bucket.try_take()
        assert wait == pytest.approx(0.1)

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=1.0, clock=clock)
        assert bucket.try_take() == 0.0
        assert bucket.try_take() > 0.0
        clock.advance(0.1)  # exactly one token
        assert bucket.try_take() == 0.0
        assert bucket.try_take() > 0.0

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(60.0)
        assert [bucket.try_take() for _ in range(2)] == [0.0] * 2
        assert bucket.try_take() > 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class TestAdmissionController:
    def test_admits_until_global_cap(self):
        control = AdmissionController(
            max_inflight=3, max_inflight_per_conn=10
        )
        for _ in range(3):
            admitted, hint = control.admit(0)
            assert admitted and hint is None
        admitted, hint = control.admit(0)
        assert not admitted
        assert hint >= 1
        assert control.shed_total == 1
        assert control.inflight == 3
        assert control.inflight_high_water == 3

    def test_per_connection_cap_binds_first(self):
        control = AdmissionController(
            max_inflight=100, max_inflight_per_conn=2
        )
        admitted, hint = control.admit(2)
        assert not admitted
        assert control.inflight == 0  # shed requests never count

    def test_release_reopens_admission(self):
        control = AdmissionController(
            max_inflight=1, max_inflight_per_conn=8
        )
        assert control.admit(0)[0]
        assert not control.admit(0)[0]
        control.release()
        assert control.admit(0)[0]

    def test_release_is_clamped(self):
        control = AdmissionController()
        control.release(5)
        assert control.inflight == 0

    def test_hint_grows_with_pressure(self):
        control = AdmissionController(
            max_inflight=4, max_inflight_per_conn=1, shed_backoff_ms=25
        )
        empty_hint = control.admit(1)[1]
        for _ in range(4):
            assert control.admit(0)[0]
        full_hint = control.admit(1)[1]
        assert full_hint > empty_hint

    def test_token_bucket_gate(self):
        clock = FakeClock()
        control = AdmissionController(
            max_inflight=100,
            max_inflight_per_conn=100,
            rate=10.0,
            burst=2.0,
            clock=clock,
        )
        assert control.admit(0)[0]
        assert control.admit(0)[0]
        admitted, hint = control.admit(0)
        assert not admitted
        assert hint == 100  # (1 token) / (10/s) = 100ms
        clock.advance(0.2)
        assert control.admit(0)[0]

    def test_rejects_bad_caps(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(max_inflight_per_conn=0)
