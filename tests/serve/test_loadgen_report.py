"""LoadReport accounting: engine aborts never fold into sheds.

League tables compare schemes by their *real* abort rates; admission
sheds (``overloaded``) and retryable lock denials are operational
noise.  ``txn_aborted`` carves the engine-side aborts (wounds, MVTO
conflicts) out of the aborted column so the distinction survives
into JSON artifacts and rendered tables.
"""

from repro.serve import protocol as proto
from repro.serve.loadgen import LoadReport


class TestTxnAbortedAccounting:
    def test_txn_aborted_is_a_subset_of_aborted(self):
        report = LoadReport("open")
        report.outcome(proto.ERR_TXN_ABORTED)
        report.outcome(proto.ERR_TXN_ABORTED)
        report.outcome(proto.ERR_LOCK_DENIED)
        report.outcome(proto.ERR_RETRY_LATER)
        report.outcome(proto.ERR_OVERLOADED)
        assert report.aborted == 4
        assert report.txn_aborted == 2
        assert report.shed == 1
        assert report.failed == 0

    def test_unknown_codes_count_as_failures(self):
        report = LoadReport("open")
        report.outcome(proto.ERR_INTERNAL)
        assert report.failed == 1
        assert report.aborted == 0
        assert report.txn_aborted == 0

    def test_json_and_render_carry_the_split(self):
        report = LoadReport("closed")
        report.outcome(proto.ERR_TXN_ABORTED)
        report.outcome(proto.ERR_OVERLOADED)
        data = report.to_json()
        assert data["txn_aborted"] == 1
        assert data["aborted"] == 1
        assert data["shed"] == 1
        assert "1 txn_aborted" in report.render()

    def test_error_codes_tallied_by_code(self):
        report = LoadReport("open")
        for _ in range(3):
            report.outcome(proto.ERR_TXN_ABORTED)
        assert report.errors[proto.ERR_TXN_ABORTED] == 3
