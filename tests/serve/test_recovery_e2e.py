"""Crash the WAL-attached server mid-load; recover and audit the log.

The durability contract across the service boundary: a commit the
server *acknowledged* over the wire was fsynced first, so after a
``kill -9`` the log replays it.  The test drives a real ``repro
serve`` subprocess with racing clients, SIGKILLs it while load is in
flight, then

* runs the ``repro recover`` CLI and requires a decisive verdict
  (exit 0 complete or 1 partial -- never 4/inconclusive: a crashed
  server leaves at worst a torn tail, not a corrupt prefix);
* checks every acknowledged commit appears as a COMMIT record in the
  recovered prefix;
* replays the log's access stream through the online auditor
  (presume-abort for in-flight tops) and requires a clean verdict.
"""

import os
import signal
import subprocess
import sys
import threading
import time

from repro.audit import AuditConfig, OnlineAuditor
from repro.serve.client import ServeError, SyncClient
from repro.wal import records as rec
from repro.wal.log import read_log_bytes

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src"
)


def spawn_server(wal_dir):
    """Start ``repro serve`` on an ephemeral port; return (proc, addr)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    proc = subprocess.Popen(
        [
            sys.executable,
            "-u",
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--objects",
            "4",
            "--object-type",
            "counter",
            "--wal-dir",
            wal_dir,
            "--op-timeout",
            "10.0",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        banner = proc.stdout.readline()
        assert banner.startswith("serving on "), (
            "no serve banner: %r / %s" % (banner, proc.stderr.read())
        )
        endpoint = banner.split()[2]
        host, port = endpoint.rsplit(":", 1)
        return proc, (host, int(port))
    except BaseException:
        proc.kill()
        proc.wait()
        raise


def run_load(address, stop, acked, errors, index):
    """Race counter increments until *stop*; record acked top names."""
    import random

    host, port = address
    rng = random.Random(index)
    try:
        client = SyncClient(host, port, timeout=30.0)
    except OSError:
        return
    try:
        while not stop.is_set():
            try:
                txn = client.begin()
                client.write(
                    txn,
                    "x%d" % rng.randrange(4),
                    kind="increment",
                    args=[1],
                )
                client.commit(txn)
                acked.append(tuple(txn))
            except ServeError as exc:
                if not exc.retryable:
                    errors.append(exc)
                    return
                time.sleep(0.002)
            except (ConnectionError, OSError, EOFError):
                return  # the server was killed under us: expected
    finally:
        try:
            client.close()
        except (ConnectionError, OSError):
            pass


def replay_audit(data):
    """Feed a scanned log through the auditor; presume-abort leftovers.

    Returns ``(scan, auditor)``.  ACQUIRE payloads carry the *leaf*
    access name plus a slot suffix, so the owning transaction is
    ``access[:-1]``; its read/write polarity rides in ``op.read``.
    """
    scan = rec.scan_records(data)
    auditor = OnlineAuditor(AuditConfig(sample_every=1))
    live = set()
    for record in scan.records:
        if record.kind == rec.BEGIN:
            name = tuple(record.payload["txn"])
            auditor.txn_begin(name)
            if len(name) == 1:
                live.add(name)
        elif record.kind == rec.ACQUIRE:
            access = tuple(record.payload["access"])
            op = record.payload["op"]
            auditor.access(
                access[:-1],
                record.payload["object"],
                op["kind"],
                bool(op["read"]),
            )
        elif record.kind == rec.COMMIT:
            name = tuple(record.payload["txn"])
            auditor.txn_commit(name)
            if len(name) == 1:
                live.discard(name)
        elif record.kind == rec.ABORT:
            name = tuple(record.payload["txn"])
            auditor.txn_abort(name)
            if len(name) == 1:
                live.discard(name)
    for name in sorted(live):
        auditor.txn_abort(name, cause="presumed")
    return scan, auditor


class TestKillMinusNine:
    def test_recover_after_sigkill_mid_load(self, tmp_path):
        wal_dir = str(tmp_path / "wal")
        proc, address = spawn_server(wal_dir)
        stop = threading.Event()
        acked = []
        errors = []
        threads = [
            threading.Thread(
                target=run_load,
                args=(address, stop, acked, errors, index),
            )
            for index in range(4)
        ]
        try:
            for thread in threads:
                thread.start()
            # Let real commits land, then pull the plug mid-flight.
            deadline = time.monotonic() + 10.0
            while len(acked) < 20 and time.monotonic() < deadline:
                time.sleep(0.02)
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
            proc.wait()
            if proc.stdout is not None:
                proc.stdout.close()
            if proc.stderr is not None:
                proc.stderr.close()
        assert errors == []
        assert len(acked) >= 20, "no load landed before the kill"

        # (1) The recover CLI is decisive: complete or partial, never
        # inconclusive -- a SIGKILL tears at most the tail.
        result = subprocess.run(
            [sys.executable, "-m", "repro", "recover", wal_dir],
            env=dict(os.environ, PYTHONPATH=REPO_SRC),
            capture_output=True,
            text=True,
        )
        assert result.returncode in (0, 1), (
            "recover was not decisive: exit %d\n%s%s"
            % (result.returncode, result.stdout, result.stderr)
        )
        assert "verdict" in result.stdout or result.stdout

        # (2) Ack implies durable: every acknowledged commit has a
        # COMMIT record in the recovered prefix (fsync before ack).
        scan, auditor = replay_audit(read_log_bytes(wal_dir))
        assert scan.stopped in ("end", "torn"), (
            scan.stopped,
            scan.detail,
        )
        committed = {
            tuple(record.payload["txn"])
            for record in scan.records
            if record.kind == rec.COMMIT
            and len(record.payload["txn"]) == 1
        }
        missing = set(acked) - committed
        assert not missing, (
            "%d acked commits missing from the log" % len(missing)
        )

        # (3) The logged history itself is serializable.
        assert auditor.verdict == "clean", auditor.report().render()
