"""Unit tests for the session layer (no sockets: messages in, out).

A :class:`~repro.serve.session.Session` is driven here exactly as the
server's worker threads drive it -- ``run(message) -> response`` --
so every protocol-level contract (error codes, idempotent abort,
wound translation, ownership) is pinned without network plumbing.
"""

import pytest

from repro.adt import Counter, IntRegister
from repro.engine.threadsafe import ThreadSafeEngine
from repro.serve import protocol as proto
from repro.serve.session import Session


@pytest.fixture()
def facade():
    return ThreadSafeEngine(
        [Counter("c"), IntRegister("r")], policy="moss-rw"
    )


@pytest.fixture()
def session(facade):
    return Session(facade, conn_id=0, op_timeout=0.2)


def run(session, op, request_id=1, **fields):
    return session.run(proto.request(op, request_id, **fields))


def begin(session):
    response = run(session, "begin")
    assert response["ok"]
    return response["txn"]


class TestHappyPath:
    def test_begin_write_read_commit(self, session):
        txn = begin(session)
        assert run(session, "write", txn=txn, object="r", value=7)["ok"]
        response = run(session, "read", txn=txn, object="r")
        assert response["ok"] and response["result"] == 7
        assert run(session, "commit", txn=txn)["ok"]
        # Committed data visible to a later transaction.
        txn2 = begin(session)
        assert run(session, "read", txn=txn2, object="r")["result"] == 7

    def test_typed_operations(self, session):
        txn = begin(session)
        run(
            session, "write",
            txn=txn, object="c", kind="increment", args=[5],
        )
        response = run(
            session, "read", txn=txn, object="c", kind="value"
        )
        assert response["result"] == 5

    def test_child_commit_merges_into_parent(self, session):
        parent = begin(session)
        child = run(session, "child", txn=parent)["txn"]
        assert child == parent + [0]
        run(session, "write", txn=child, object="r", value=3)
        assert run(session, "commit", txn=child)["ok"]
        assert run(session, "read", txn=parent, object="r")["result"] == 3

    def test_child_abort_discards_only_subtree(self, session):
        parent = begin(session)
        run(session, "write", txn=parent, object="r", value=1)
        child = run(session, "child", txn=parent)["txn"]
        run(session, "write", txn=child, object="r", value=99)
        assert run(session, "abort", txn=child)["ok"]
        assert run(session, "read", txn=parent, object="r")["result"] == 1
        # The parent is still usable; the child's name is retired.
        assert (
            run(session, "read", txn=child, object="r")["error"]["code"]
            == proto.ERR_UNKNOWN_TXN
        )


class TestErrorTaxonomy:
    def test_unknown_op(self, session):
        assert (
            run(session, "snapshot")["error"]["code"]
            == proto.ERR_BAD_REQUEST
        )

    def test_missing_fields_are_bad_requests(self, session):
        txn = begin(session)
        for message in (
            proto.request("read", 1, txn=txn),  # no object
            proto.request("write", 2, txn=txn, object="r"),  # no value
            proto.request("read", 3, object="r"),  # no txn
            proto.request("read", 4, txn=["x"], object="r"),
        ):
            response = session.run(message)
            assert response["error"]["code"] == proto.ERR_BAD_REQUEST

    def test_foreign_txn_is_unknown(self, session):
        response = run(session, "read", txn=[404], object="r")
        assert response["error"]["code"] == proto.ERR_UNKNOWN_TXN
        response = run(session, "commit", txn=[404])
        assert response["error"]["code"] == proto.ERR_UNKNOWN_TXN

    def test_commit_with_live_children_is_invalid(self, session):
        txn = begin(session)
        run(session, "child", txn=txn)
        response = run(session, "commit", txn=txn)
        assert response["error"]["code"] == proto.ERR_INVALID_STATE

    def test_commit_retires_the_whole_tree(self, session):
        txn = begin(session)
        child = run(session, "child", txn=txn)["txn"]
        assert run(session, "commit", txn=child)["ok"]
        assert run(session, "commit", txn=txn)["ok"]
        for name in (txn, child):
            response = run(session, "read", txn=name, object="r")
            assert (
                response["error"]["code"] == proto.ERR_UNKNOWN_TXN
            )

    def test_abort_is_idempotent(self, session):
        txn = begin(session)
        assert run(session, "abort", txn=txn)["ok"]
        again = run(session, "abort", txn=txn)
        assert again["ok"] and again["already_finished"]
        # Aborting a name that never existed is also just "done".
        never = run(session, "abort", txn=[404])
        assert never["ok"] and never["already_finished"]

    def test_responses_echo_request_ids(self, session):
        response = run(session, "begin", request_id=12345)
        assert response["id"] == 12345


class TestWoundTranslation:
    def test_wound_between_calls_reads_as_txn_aborted(self, facade):
        older = Session(facade, conn_id=0, op_timeout=0.5)
        younger = Session(facade, conn_id=1, op_timeout=0.5)
        victim_txn = begin(older)  # begun first => older
        victim, aggressor = younger, older
        txn = begin(victim)
        assert txn != victim_txn
        # The victim takes the lock, then the older transaction's
        # request wounds it (wound-wait) and wins the lock.
        assert run(victim, "write", txn=txn, object="r", value=1)["ok"]
        assert run(
            aggressor, "write", txn=victim_txn, object="r", value=2
        )["ok"]
        # The victim's next op must surface the wound as the
        # *retryable* txn_aborted -- not invalid_state.
        response = run(victim, "read", txn=txn, object="r")
        assert response["error"]["code"] == proto.ERR_TXN_ABORTED
        assert response["error"]["retryable"] is True
        # ... and the dead tree is retired from the session.
        response = run(victim, "read", txn=txn, object="r")
        assert response["error"]["code"] == proto.ERR_UNKNOWN_TXN
        # An abort of the dead tree is still an idempotent ok.
        response = run(victim, "abort", txn=txn)
        assert response["ok"] and response["already_finished"]

    def test_wound_at_commit_reads_as_txn_aborted(self, facade):
        older = Session(facade, conn_id=0, op_timeout=0.5)
        younger = Session(facade, conn_id=1, op_timeout=0.5)
        victim_txn = begin(older)
        txn = begin(younger)
        assert run(younger, "write", txn=txn, object="r", value=1)["ok"]
        assert run(
            older, "write", txn=victim_txn, object="r", value=2
        )["ok"]
        response = run(younger, "commit", txn=txn)
        assert response["error"]["code"] == proto.ERR_TXN_ABORTED


class TestOrphanCleanup:
    def test_abort_orphans_kills_owned_trees(self, facade):
        session = Session(facade, conn_id=0)
        txn = begin(session)
        child = run(session, "child", txn=txn)["txn"]
        run(session, "write", txn=child, object="r", value=1)
        assert session.abort_orphans() == 1
        assert session.handles == {}
        # The lock is gone: a fresh transaction writes immediately.
        other = Session(facade, conn_id=1, op_timeout=0.2)
        txn2 = begin(other)
        assert run(other, "write", txn=txn2, object="r", value=2)["ok"]

    def test_abort_orphans_counts_trees_not_handles(self, facade):
        session = Session(facade, conn_id=0)
        first = begin(session)
        second = begin(session)
        run(session, "child", txn=first)
        assert session.owned_tops() == [
            tuple(first), tuple(second)
        ]
        assert session.abort_orphans() == 2

    def test_abort_orphans_skips_finished_trees(self, facade):
        session = Session(facade, conn_id=0)
        txn = begin(session)
        run(session, "commit", txn=txn)
        assert session.abort_orphans() == 0
