"""Golden pin of the service wire format.

These bytes are the contract: any client built against
``PROTOCOL_VERSION == 1`` must interoperate with any server of the
same version.  Changing any golden value here means bumping
:data:`repro.serve.protocol.PROTOCOL_VERSION` and writing migration
notes in docs/SERVICE.md -- not updating the test to match.  (Same
discipline as the WAL golden pin in ``tests/wal/test_format.py``.)
"""

import json
import zlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve import protocol as proto

# One golden frame per request op, plus representative responses and
# one error frame per taxonomy code.
GOLDEN_FRAMES = {
    # request("hello", 1, version=1)
    "hello": bytes.fromhex(
        "217b226964223a312c226f70223a2268656c6c6f222c2276657273696f6e"
        "223a317d155f1146"
    ),
    # request("begin", 2)
    "begin": bytes.fromhex(
        "157b226964223a322c226f70223a22626567696e227d68707e1c"
    ),
    # request("child", 3, txn=[0])
    "child": bytes.fromhex(
        "1f7b226964223a332c226f70223a226368696c64222c2274786e223a5b30"
        "5d7de92a8df3"
    ),
    # request("read", 4, txn=[0], object="c")
    "read": bytes.fromhex(
        "2b7b226964223a342c226f626a656374223a2263222c226f70223a227265"
        "6164222c2274786e223a5b305d7d7e587d68"
    ),
    # request("read", 5, txn=[0], object="c", kind="value", args=[])
    "read_kind": bytes.fromhex(
        "447b2261726773223a5b5d2c226964223a352c226b696e64223a2276616c"
        "7565222c226f626a656374223a2263222c226f70223a2272656164222c22"
        "74786e223a5b305d7d47fd2870"
    ),
    # request("write", 6, txn=[0], object="c", value=7)
    "write_value": bytes.fromhex(
        "367b226964223a362c226f626a656374223a2263222c226f70223a227772"
        "697465222c2274786e223a5b305d2c2276616c7565223a377d8fb88577"
    ),
    # request("write", 7, txn=[0, 0], object="c", kind="increment",
    #         args=[1])
    "write_kind": bytes.fromhex(
        "4c7b2261726773223a5b315d2c226964223a372c226b696e64223a22696e"
        "6372656d656e74222c226f626a656374223a2263222c226f70223a227772"
        "697465222c2274786e223a5b302c305d7da918a537"
    ),
    # request("commit", 8, txn=[0])
    "commit": bytes.fromhex(
        "207b226964223a382c226f70223a22636f6d6d6974222c2274786e223a5b"
        "305d7d178e5d73"
    ),
    # request("abort", 9, txn=[0])
    "abort": bytes.fromhex(
        "1f7b226964223a392c226f70223a2261626f7274222c2274786e223a5b30"
        "5d7d2caebb54"
    ),
    # request("ping", 10, payload="x")
    "ping": bytes.fromhex(
        "237b226964223a31302c226f70223a2270696e67222c227061796c6f6164"
        "223a2278227dbc01b2ee"
    ),
    # request("stats", 11)
    "stats": bytes.fromhex(
        "167b226964223a31312c226f70223a227374617473227de55d3a95"
    ),
    # ok_response(1)
    "ok": bytes.fromhex(
        "127b226964223a312c226f6b223a747275657d43423586"
    ),
    # ok_response(2, txn=[0])
    "ok_begin": bytes.fromhex(
        "1c7b226964223a322c226f6b223a747275652c2274786e223a5b305d7d39"
        "69283a"
    ),
    # error_response(3, ERR_OVERLOADED, "shed", retry_after_ms=25)
    "err_overloaded": bytes.fromhex(
        "677b226572726f72223a7b22636f6465223a226f7665726c6f6164656422"
        "2c226d657373616765223a2273686564222c2272657472795f6166746572"
        "5f6d73223a32352c22726574727961626c65223a747275657d2c22696422"
        "3a332c226f6b223a66616c73657df5bfa8ef"
    ),
    # error_response(4, ERR_LOCK_DENIED, "denied",
    #                blockers=[(1,), (0, 2)])  -- blockers sort
    "err_lock_denied": bytes.fromhex(
        "6d7b226572726f72223a7b22626c6f636b657273223a5b5b302c325d2c5b"
        "315d5d2c22636f6465223a226c6f636b5f64656e696564222c226d657373"
        "616765223a2264656e696564222c22726574727961626c65223a74727565"
        "7d2c226964223a342c226f6b223a66616c73657dad875d2b"
    ),
    # error_response(5, ERR_RETRY_LATER, "wait", retry_after_ms=1)
    "err_retry_later": bytes.fromhex(
        "677b226572726f72223a7b22636f6465223a2272657472795f6c61746572"
        "222c226d657373616765223a2277616974222c2272657472795f61667465"
        "725f6d73223a312c22726574727961626c65223a747275657d2c22696422"
        "3a352c226f6b223a66616c73657dbc780ec7"
    ),
    # error_response(6, ERR_TXN_ABORTED, "wounded")
    "err_txn_aborted": bytes.fromhex(
        "577b226572726f72223a7b22636f6465223a2274786e5f61626f72746564"
        "222c226d657373616765223a22776f756e646564222c2272657472796162"
        "6c65223a747275657d2c226964223a362c226f6b223a66616c73657d9052"
        "d314"
    ),
    # error_response(7, ERR_BAD_REQUEST, "bad")
    "err_bad_request": bytes.fromhex(
        "547b226572726f72223a7b22636f6465223a226261645f72657175657374"
        "222c226d657373616765223a22626164222c22726574727961626c65223a"
        "66616c73657d2c226964223a372c226f6b223a66616c73657d74b58558"
    ),
    # error_response(None, ERR_BAD_FRAME, "crc") -- id null: a frame
    # too corrupt to carry an id still gets a typed goodbye
    "err_bad_frame": bytes.fromhex(
        "557b226572726f72223a7b22636f6465223a226261645f6672616d65222c"
        "226d657373616765223a22637263222c22726574727961626c65223a6661"
        "6c73657d2c226964223a6e756c6c2c226f6b223a66616c73657d03535d70"
    ),
    # error_response(8, ERR_VERSION, "v9")
    "err_version": bytes.fromhex(
        "587b226572726f72223a7b22636f6465223a2276657273696f6e5f6d6973"
        "6d61746368222c226d657373616765223a227639222c2272657472796162"
        "6c65223a66616c73657d2c226964223a382c226f6b223a66616c73657d90"
        "f898c3"
    ),
    # error_response(9, ERR_UNKNOWN_TXN, "who")
    "err_unknown_txn": bytes.fromhex(
        "547b226572726f72223a7b22636f6465223a22756e6b6e6f776e5f74786e"
        "222c226d657373616765223a2277686f222c22726574727961626c65223a"
        "66616c73657d2c226964223a392c226f6b223a66616c73657d4ee753dc"
    ),
    # error_response(10, ERR_INVALID_STATE, "dead")
    "err_invalid_state": bytes.fromhex(
        "587b226572726f72223a7b22636f6465223a22696e76616c69645f737461"
        "7465222c226d657373616765223a2264656164222c22726574727961626c"
        "65223a66616c73657d2c226964223a31302c226f6b223a66616c73657dab"
        "1f7b1c"
    ),
    # error_response(11, ERR_INTERNAL, "boom")
    "err_internal": bytes.fromhex(
        "537b226572726f72223a7b22636f6465223a22696e7465726e616c222c22"
        "6d657373616765223a22626f6f6d222c22726574727961626c65223a6661"
        "6c73657d2c226964223a31312c226f6b223a66616c73657d994b5798"
    ),
}

_GOLDEN_MESSAGES = {
    "hello": proto.request("hello", 1, version=1),
    "begin": proto.request("begin", 2),
    "child": proto.request("child", 3, txn=[0]),
    "read": proto.request("read", 4, txn=[0], object="c"),
    "read_kind": proto.request(
        "read", 5, txn=[0], object="c", kind="value", args=[]
    ),
    "write_value": proto.request(
        "write", 6, txn=[0], object="c", value=7
    ),
    "write_kind": proto.request(
        "write", 7, txn=[0, 0], object="c", kind="increment", args=[1]
    ),
    "commit": proto.request("commit", 8, txn=[0]),
    "abort": proto.request("abort", 9, txn=[0]),
    "ping": proto.request("ping", 10, payload="x"),
    "stats": proto.request("stats", 11),
    "ok": proto.ok_response(1),
    "ok_begin": proto.ok_response(2, txn=[0]),
    "err_overloaded": proto.error_response(
        3, proto.ERR_OVERLOADED, "shed", retry_after_ms=25
    ),
    "err_lock_denied": proto.error_response(
        4, proto.ERR_LOCK_DENIED, "denied", blockers=[(1,), (0, 2)]
    ),
    "err_retry_later": proto.error_response(
        5, proto.ERR_RETRY_LATER, "wait", retry_after_ms=1
    ),
    "err_txn_aborted": proto.error_response(
        6, proto.ERR_TXN_ABORTED, "wounded"
    ),
    "err_bad_request": proto.error_response(
        7, proto.ERR_BAD_REQUEST, "bad"
    ),
    "err_bad_frame": proto.error_response(
        None, proto.ERR_BAD_FRAME, "crc"
    ),
    "err_version": proto.error_response(8, proto.ERR_VERSION, "v9"),
    "err_unknown_txn": proto.error_response(
        9, proto.ERR_UNKNOWN_TXN, "who"
    ),
    "err_invalid_state": proto.error_response(
        10, proto.ERR_INVALID_STATE, "dead"
    ),
    "err_internal": proto.error_response(
        11, proto.ERR_INTERNAL, "boom"
    ),
}


class TestGoldenEncoding:
    def test_protocol_version_is_pinned(self):
        assert proto.PROTOCOL_VERSION == 1

    def test_every_op_has_a_golden_request(self):
        pinned_ops = {
            message.get("op")
            for message in _GOLDEN_MESSAGES.values()
            if "op" in message
        }
        assert pinned_ops == set(proto.OPS)

    def test_every_error_code_has_a_golden_response(self):
        pinned_codes = {
            message["error"]["code"]
            for message in _GOLDEN_MESSAGES.values()
            if "error" in message
        }
        assert pinned_codes == {
            proto.ERR_BAD_REQUEST,
            proto.ERR_BAD_FRAME,
            proto.ERR_VERSION,
            proto.ERR_UNKNOWN_TXN,
            proto.ERR_INVALID_STATE,
            proto.ERR_TXN_ABORTED,
            proto.ERR_LOCK_DENIED,
            proto.ERR_RETRY_LATER,
            proto.ERR_OVERLOADED,
            proto.ERR_INTERNAL,
        }

    @pytest.mark.parametrize("name", sorted(GOLDEN_FRAMES))
    def test_encode_matches_golden(self, name):
        assert (
            proto.encode_frame(_GOLDEN_MESSAGES[name])
            == GOLDEN_FRAMES[name]
        )

    @pytest.mark.parametrize("name", sorted(GOLDEN_FRAMES))
    def test_decode_matches_golden(self, name):
        assert (
            proto.decode_frame(GOLDEN_FRAMES[name])
            == _GOLDEN_MESSAGES[name]
        )

    def test_retryable_flags_are_pinned(self):
        assert proto.RETRYABLE_CODES == frozenset(
            ("txn_aborted", "lock_denied", "retry_later", "overloaded")
        )


class TestFraming:
    def test_torn_frame_buffers_until_complete(self):
        frame = GOLDEN_FRAMES["write_kind"]
        decoder = proto.FrameDecoder()
        for index in range(len(frame) - 1):
            assert decoder.feed(frame[index:index + 1]) == []
        messages = decoder.feed(frame[-1:])
        assert messages == [_GOLDEN_MESSAGES["write_kind"]]
        assert decoder.pending == 0

    def test_torn_varint_prefix_waits(self):
        # A multi-byte varint cut mid-way must not decode as a length.
        body = b"{}" * 100
        frame = proto.encode_frame({"id": 1, "ok": True})
        big = proto.encode_frame(
            {"id": 1, "pad": "x" * 300, "ok": True}
        )
        decoder = proto.FrameDecoder()
        assert decoder.feed(big[:1]) == []  # first varint byte only
        assert decoder.feed(big[1:]) != []
        del body, frame

    def test_many_frames_one_feed(self):
        stream = b"".join(
            GOLDEN_FRAMES[name] for name in ("begin", "commit", "abort")
        )
        decoder = proto.FrameDecoder()
        assert decoder.feed(stream) == [
            _GOLDEN_MESSAGES["begin"],
            _GOLDEN_MESSAGES["commit"],
            _GOLDEN_MESSAGES["abort"],
        ]

    def test_oversized_frame_refused(self):
        decoder = proto.FrameDecoder(max_frame_bytes=64)
        frame = proto.encode_frame({"id": 1, "pad": "y" * 128})
        with pytest.raises(proto.FrameTooLarge):
            decoder.feed(frame)

    def test_oversized_announcement_refused_before_body(self):
        # A corrupt length must be refused without buffering the body.
        announced = proto._encode_varint(proto.MAX_FRAME_BYTES + 1)
        with pytest.raises(proto.FrameTooLarge):
            proto.FrameDecoder().feed(announced)

    def test_crc_mismatch_refused(self):
        frame = bytearray(GOLDEN_FRAMES["commit"])
        frame[-1] ^= 0xFF
        with pytest.raises(proto.FrameCorrupt):
            proto.FrameDecoder().feed(bytes(frame))

    def test_garbage_body_with_valid_crc_refused(self):
        body = b"\xff\xfenot json"
        crc = zlib.crc32(body) & 0xFFFFFFFF
        frame = (
            proto._encode_varint(len(body))
            + body
            + crc.to_bytes(4, "little")
        )
        with pytest.raises(proto.FrameCorrupt):
            proto.FrameDecoder().feed(frame)

    def test_non_object_body_refused(self):
        body = json.dumps([1, 2, 3]).encode()
        crc = zlib.crc32(body) & 0xFFFFFFFF
        frame = (
            proto._encode_varint(len(body))
            + body
            + crc.to_bytes(4, "little")
        )
        with pytest.raises(proto.FrameCorrupt):
            proto.FrameDecoder().feed(frame)

    def test_runaway_varint_refused(self):
        with pytest.raises(proto.FrameCorrupt):
            proto.FrameDecoder().feed(b"\x80" * 6)

    def test_decode_frame_rejects_trailing_bytes(self):
        with pytest.raises(proto.FrameCorrupt):
            proto.decode_frame(GOLDEN_FRAMES["ok"] + b"\x00")

    def test_decode_frame_rejects_two_frames(self):
        with pytest.raises(proto.FrameCorrupt):
            proto.decode_frame(GOLDEN_FRAMES["ok"] * 2)


class TestHelpers:
    def test_canonical_json_is_sorted_and_compact(self):
        body = proto.canonical_json({"b": 1, "a": [1, 2]})
        assert body == b'{"a":[1,2],"b":1}'

    def test_canonical_json_encodes_sets(self):
        body = proto.canonical_json({"s": {3, 1, 2}})
        assert body == b'{"s":[1,2,3]}'

    def test_canonical_json_refuses_opaque_values(self):
        with pytest.raises(TypeError):
            proto.canonical_json({"x": object()})

    def test_wire_args_nested_lists_become_tuples(self):
        assert proto.wire_args([1, [2, 3], "x"]) == (1, (2, 3), "x")
        assert proto.wire_args(None) == ()
        with pytest.raises(ValueError):
            proto.wire_args("not a list")

    def test_txn_name(self):
        assert proto.txn_name([0, 1]) == (0, 1)
        for bad in (None, [], [0, "x"], "01", 7):
            with pytest.raises(ValueError):
                proto.txn_name(bad)

    def test_exception_to_error_retry_later_hint_wins(self):
        from repro.errors import RetryLater

        response = proto.exception_to_error(
            1, RetryLater("w", retry_after_ms=7), retry_after_ms=99
        )
        assert response["error"]["code"] == proto.ERR_RETRY_LATER
        assert response["error"]["retry_after_ms"] == 7

    def test_exception_to_error_server_hint_fallback(self):
        from repro.errors import LockDenied, RetryLater

        response = proto.exception_to_error(
            1, RetryLater("w"), retry_after_ms=99
        )
        assert response["error"]["retry_after_ms"] == 99
        response = proto.exception_to_error(
            2, LockDenied("d", blockers=[(0,)]), retry_after_ms=42
        )
        assert response["error"]["code"] == proto.ERR_LOCK_DENIED
        assert response["error"]["retry_after_ms"] == 42
        assert response["error"]["blockers"] == [[0]]


# Values that can live in a message: JSON scalars and containers.
_json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2 ** 53), max_value=2 ** 53)
    | st.text(max_size=40),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=20,
)
_messages = st.dictionaries(
    st.text(max_size=10), _json_values, max_size=6
)


class TestRoundTrip:
    @settings(
        max_examples=200,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(message=_messages, data=st.data())
    def test_encode_decode_round_trip(self, message, data):
        frame = proto.encode_frame(message)
        # Feed in arbitrary chunkings: framing must reassemble.
        decoder = proto.FrameDecoder()
        messages = []
        offset = 0
        while offset < len(frame):
            size = data.draw(
                st.integers(min_value=1, max_value=len(frame) - offset)
            )
            messages.extend(decoder.feed(frame[offset:offset + size]))
            offset += size
        assert messages == [message]
        assert decoder.pending == 0

    @settings(max_examples=100, deadline=None)
    @given(messages=st.lists(_messages, max_size=5))
    def test_stream_of_frames_round_trips(self, messages):
        stream = b"".join(
            proto.encode_frame(message) for message in messages
        )
        assert proto.FrameDecoder().feed(stream) == messages
