"""Crash durability: SIGKILL anywhere, acked commits survive.

The contract under test (docs/SHARDING.md failure matrix): a commit
is acknowledged only after every participant flushed its COMMIT
record, so killing the coordinator or any worker -- with SIGKILL, no
cleanup -- must leave per-shard WALs from which
:func:`repro.shard.recover_sharded` reaches a decisive verdict with
every acked commit's effects present (in-doubt trees resolve by
presumed abort or decision-record roll-forward).
"""

import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.adt import Counter
from repro.errors import EngineError
from repro.shard import ShardDown, ShardedEngine, recover_sharded


def _counter_specs(count=8):
    return [Counter("k%d" % index) for index in range(count)]


def _cross_shard_targets(engine):
    """One object name per shard, so every commit pays real 2PC."""
    targets = {}
    for name in engine.store.names():
        targets.setdefault(engine.store.shard_of(name), name)
    return [targets[shard] for shard in sorted(targets)]


class TestWorkerKill:
    def test_sigkill_worker_mid_load(self, tmp_path):
        wal_dir = str(tmp_path / "wal")
        engine = ShardedEngine(_counter_specs(), workers=2)
        engine.attach_wal(wal_dir=wal_dir)
        engine.start()
        targets = _cross_shard_targets(engine)
        assert len(targets) == 2
        acked = 0
        for _ in range(6):
            top = engine.begin_top()
            for name in targets:
                top.perform(name, Counter.increment(1))
            top.commit()
            acked += 1
        victim = engine.worker_pids[0]
        os.kill(victim, signal.SIGKILL)
        # The dead shard surfaces as ShardDown, not a hang.
        with pytest.raises((ShardDown, EngineError)):
            for _ in range(20):
                top = engine.begin_top()
                for name in targets:
                    top.perform(name, Counter.increment(1))
                top.commit()
        engine.close()

        state = recover_sharded(wal_dir)
        assert state.verdict in ("complete", "partial")
        committed = state.committed()
        for name in targets:
            assert committed.get(name, 0) >= acked, state.render()

    def test_kill_then_recovery_is_decisive_per_shard(self, tmp_path):
        wal_dir = str(tmp_path / "wal")
        engine = ShardedEngine(_counter_specs(), workers=2)
        engine.attach_wal(wal_dir=wal_dir)
        engine.start()
        targets = _cross_shard_targets(engine)
        top = engine.begin_top()
        for name in targets:
            top.perform(name, Counter.increment(1))
        top.commit()
        for pid in engine.worker_pids:
            os.kill(pid, signal.SIGKILL)
        engine.close()
        state = recover_sharded(wal_dir)
        # Every shard's log replays on its own; the decision log
        # cross-checks the decided commits.
        assert sorted(state.shards) == [0, 1]
        assert not state.shard_errors
        assert state.decisions, "cross-shard commit must be decided"
        assert state.committed()[targets[0]] == 1


class TestCoordinatorKill:
    DRIVER = textwrap.dedent(
        """
        import sys

        from repro.adt import Counter
        from repro.shard import ShardedEngine


        def main():
            wal_dir = sys.argv[1]
            specs = [Counter("k%d" % i) for i in range(8)]
            engine = ShardedEngine(specs, workers=2)
            engine.attach_wal(wal_dir=wal_dir)
            engine.start()
            targets = {}
            for name in engine.store.names():
                targets.setdefault(engine.store.shard_of(name), name)
            picks = [targets[s] for s in sorted(targets)]
            acked = 0
            while True:
                top = engine.begin_top()
                for name in picks:
                    top.perform(name, Counter.increment(1))
                top.commit()
                acked += 1
                print("acked %d" % acked, flush=True)


        if __name__ == "__main__":
            main()
        """
    )

    def test_sigkill_coordinator_mid_load(self, tmp_path):
        wal_dir = str(tmp_path / "wal")
        script = tmp_path / "driver.py"
        script.write_text(self.DRIVER)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        proc = subprocess.Popen(
            [sys.executable, str(script), wal_dir],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            cwd=os.getcwd(),
            start_new_session=True,
            text=True,
        )
        acked = 0
        try:
            for line in proc.stdout:
                if line.startswith("acked"):
                    acked = int(line.split()[1])
                if acked >= 5:
                    break
            # SIGKILL the whole session: coordinator AND workers die
            # with no chance to flush anything further.
            os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
        finally:
            proc.wait(timeout=30)
            proc.stdout.close()
        assert acked >= 5

        state = recover_sharded(wal_dir)
        committed = state.committed()
        per_shard_targets = {}
        for name in ("k%d" % i for i in range(8)):
            per_shard_targets.setdefault(
                __import__("zlib").crc32(name.encode()) % 2, name
            )
        for name in per_shard_targets.values():
            assert committed.get(name, 0) >= acked, state.render()


class TestRecoveryErrors:
    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(EngineError):
            recover_sharded(str(tmp_path / "nope"))

    def test_empty_directory_raises(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(EngineError):
            recover_sharded(str(empty))
