"""The sharded engine's facade surface: routing, 2PC, wound-wait.

Every test spawns real worker processes (spawn context, one engine
per shard), so the suite keeps workloads small -- the goal is protocol
and lifecycle coverage, not throughput (benchmarks/bench_e25 does
that).
"""

import pytest

from repro.adt import Counter, IntRegister
from repro.errors import EngineError, TransactionAborted
from repro.shard import ShardedEngine
from repro.shard.engine import placement_sharding


def _specs(registers=4, counters=2):
    specs = [IntRegister("r%d" % index) for index in range(registers)]
    specs += [Counter("c%d" % index) for index in range(counters)]
    return specs


def _spread_sharding(name, shards):
    """Deterministic round-robin over the trailing digit: guarantees
    objects land on different shards, so commits really cross."""
    return int(name[1:]) % shards


class TestLifecycle:
    def test_single_worker_fast_path(self):
        with ShardedEngine(_specs(), workers=1) as engine:
            assert engine.shards == 1
            top = engine.begin_top()
            top.perform("c0", Counter.increment(3))
            assert top.perform("c0", Counter.value()) == 3
            top.commit()
            assert engine.object_value("c0") == 3
            assert engine.stats["commits"] == 1
            # A single participant takes the one-phase path: the
            # worker saw no prepare.
            (stats,) = engine.shard_stats()
            assert stats["engine"]["commits"] >= 1

    def test_workers_clamped_to_object_count(self):
        with ShardedEngine([Counter("only")], workers=4) as engine:
            assert engine.shards == 1

    def test_close_is_idempotent(self):
        engine = ShardedEngine(_specs(), workers=2).start()
        engine.close()
        engine.close()
        with pytest.raises(EngineError):
            engine.begin_top()

    def test_worker_pids_are_real_processes(self):
        with ShardedEngine(_specs(), workers=2) as engine:
            pids = engine.worker_pids
            assert len(pids) == 2
            assert all(pid > 0 for pid in pids)


class TestCrossShard:
    def test_two_phase_commit_spans_shards(self):
        with ShardedEngine(
            _specs(), workers=2, sharding=_spread_sharding
        ) as engine:
            top = engine.begin_top()
            top.perform("r0", IntRegister.write(7))  # shard 0
            top.perform("r1", IntRegister.write(9))  # shard 1
            top.commit()
            assert engine.object_value("r0") == 7
            assert engine.object_value("r1") == 9
            # Both shards saw engine work for the same tree.
            per_shard = engine.shard_stats()
            assert all(s["engine"]["accesses"] >= 1 for s in per_shard)

    def test_cross_shard_abort_undoes_both_shards(self):
        with ShardedEngine(
            _specs(), workers=2, sharding=_spread_sharding
        ) as engine:
            top = engine.begin_top()
            top.perform("r0", IntRegister.write(7))
            top.perform("r1", IntRegister.write(9))
            top.abort()
            assert engine.object_value("r0") == 0
            assert engine.object_value("r1") == 0
            assert engine.stats["aborts"] == 1

    def test_nested_child_commit_merges_to_parent(self):
        with ShardedEngine(
            _specs(), workers=2, sharding=_spread_sharding
        ) as engine:
            top = engine.begin_top()
            child = top.begin_child()
            child.perform("r1", IntRegister.write(5))
            child.commit()
            # The child's write survives through the parent...
            assert top.perform("r1", IntRegister.read()) == 5
            top.commit()
            assert engine.object_value("r1") == 5

    def test_nested_child_abort_discards_only_child(self):
        with ShardedEngine(
            _specs(), workers=2, sharding=_spread_sharding
        ) as engine:
            top = engine.begin_top()
            top.perform("r0", IntRegister.write(1))
            child = top.begin_child()
            child.perform("r1", IntRegister.write(5))
            child.abort()
            top.commit()
            assert engine.object_value("r0") == 1
            assert engine.object_value("r1") == 0

    def test_commit_with_live_children_refused(self):
        with ShardedEngine(_specs(), workers=2) as engine:
            top = engine.begin_top()
            top.begin_child()
            with pytest.raises(Exception):
                top.commit()
            top.abort()


class TestPlacement:
    def test_placement_pins_objects_to_workers(self):
        placement = {"r0": 1, "r1": 1, "r2": 0}
        with ShardedEngine(
            _specs(), workers=2, placement=placement
        ) as engine:
            assert engine.store.shard_of("r0") == 1
            assert engine.store.shard_of("r1") == 1
            assert engine.store.shard_of("r2") == 0
            # A transaction over co-placed objects stays single-shard.
            top = engine.begin_top()
            top.perform("r0", IntRegister.write(3))
            top.perform("r1", IntRegister.write(4))
            top.commit()
            assert engine.object_value("r0") == 3
            stats = engine.shard_stats()
            assert stats[1]["engine"]["accesses"] >= 2
            assert stats[0]["engine"]["accesses"] == 0

    def test_placement_affinity_folds_onto_worker_count(self):
        # Affinity 5 on 2 workers -> shard 1; same spec stays valid
        # when deployed on fewer shards than it was written for.
        sharding = placement_sharding({"r0": 5})
        assert sharding("r0", 2) == 1
        assert sharding("r0", 4) == 1
        # Unplaced objects fall back to CRC32.
        from repro.kernel.store import default_sharding

        assert sharding("r3", 2) == default_sharding("r3", 2)

    def test_placement_and_sharding_are_exclusive(self):
        with pytest.raises(EngineError):
            ShardedEngine(
                _specs(),
                workers=2,
                sharding=_spread_sharding,
                placement={"r0": 0},
            )


class TestWoundWait:
    def test_older_top_wounds_younger_holder(self):
        with ShardedEngine(_specs(), workers=2) as engine:
            older = engine.begin_top()
            # Pin the older tree's age by touching anything first.
            older.perform("r0", IntRegister.read())
            younger = engine.begin_top()
            younger.perform("r1", IntRegister.write(9))
            # The older top now wants r1: wound-wait kills the
            # younger holder rather than blocking behind it.
            older.perform("r1", IntRegister.write(4))
            older.commit()
            assert engine.object_value("r1") == 4
            with pytest.raises(TransactionAborted):
                younger.perform("r1", IntRegister.read())
            assert not younger.is_active

    def test_abort_top_from_foreign_thread_view(self):
        with ShardedEngine(_specs(), workers=2) as engine:
            top = engine.begin_top()
            top.perform("r0", IntRegister.write(1))
            assert engine.abort_top(top.name, cause="reaper") is True
            # Idempotent, like the facade.
            assert engine.abort_top(top.name) is False
            with pytest.raises(TransactionAborted):
                top.perform("r0", IntRegister.read())
            assert engine.object_value("r0") == 0


class TestGhostMirrorRegression:
    """A perform racing an abort down the pipe must not re-begin the
    tree on the worker (the ghost mirror held locks forever)."""

    def test_worker_refuses_perform_for_forgotten_top(self):
        from repro.serve import protocol as proto
        from repro.shard.worker import ShardWorker, WorkerConfig

        worker = ShardWorker(
            WorkerConfig(
                shard=0,
                shards=1,
                specs=_specs(),
                check_sharding=False,
            )
        )
        worker.handle({"id": 1, "op": "begin", "txn": [0]})
        reply = worker.handle(
            {
                "id": 2,
                "op": "perform",
                "txn": [0],
                "object": "r0",
                "kind": "write",
                "args": [3],
            }
        )
        assert reply["ok"] is True
        worker.handle({"id": 3, "op": "abort", "txn": [0]})
        # The straggler that lost the race: the tree is forgotten, so
        # the worker must refuse -- not lazily mirror a ghost.
        late = worker.handle(
            {
                "id": 4,
                "op": "perform",
                "txn": [0],
                "object": "r0",
                "kind": "read",
                "args": [],
                "read": True,
            }
        )
        assert late["ok"] is False
        assert late["error"]["code"] == proto.ERR_TXN_ABORTED
        # And no mirror reappeared: a fresh top can take the locks.
        worker.handle({"id": 5, "op": "begin", "txn": [1]})
        retry = worker.handle(
            {
                "id": 6,
                "op": "perform",
                "txn": [1],
                "object": "r0",
                "kind": "write",
                "args": [8],
            }
        )
        assert retry["ok"] is True, retry


class TestValues:
    def test_object_value_unknown_object(self):
        with ShardedEngine(_specs(), workers=2) as engine:
            with pytest.raises(EngineError):
                engine.object_value("nope")

    def test_uncommitted_value_visible_on_request(self):
        with ShardedEngine(_specs(), workers=1) as engine:
            top = engine.begin_top()
            top.perform("c0", Counter.increment(2))
            assert engine.object_value("c0") == 0
            assert engine.object_value("c0", committed=False) == 2
            top.abort()
