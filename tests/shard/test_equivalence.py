"""Cross-scheme equivalence: sharded execution equals in-process.

Per the paper's footnote 9, distribution is orthogonal to the locking
algorithm: the sharded engine must compute *exactly* what the proven
in-process engine computes.  Two independent checks:

* deterministic random programs (sequential trees with nested
  children) driven step-for-step through the ThreadSafeEngine and the
  ShardedEngine -- every perform result and every final committed
  value must agree, for every durable-or-not scheme, across seeds,
  with the online auditor watching the sharded side;
* declarative scenarios (``repro.scenario``): the sharded backend's
  state digest must equal the deterministic sim backend's and the
  threadsafe backend's for the same compiled spec.
"""

import random

import pytest

from repro.adt import Counter, IntRegister
from repro.engine.threadsafe import ThreadSafeEngine
from repro.scenario import compile_scenario, load_scenario
from repro.scenario.backends import get_driver
from repro.scenario.library import library_path
from repro.shard import ShardedEngine

SCHEMES = ("moss-rw", "exclusive", "mvto")
SEEDS = range(10)


def _specs():
    specs = [IntRegister("r%d" % index) for index in range(6)]
    specs += [Counter("c%d" % index) for index in range(3)]
    return specs


def _program(seed, trees=8):
    """A deterministic list of per-tree op scripts.

    Trees run sequentially (no inter-tree concurrency: both engines
    must then agree exactly, with no scheduler latitude), but each
    tree nests children and mixes reads, writes and aborts.
    """
    rng = random.Random(seed)
    program = []
    for _ in range(trees):
        ops = []
        for _ in range(rng.randrange(2, 7)):
            kind = rng.random()
            target = rng.randrange(9)
            if target < 6:
                name = "r%d" % target
                op = (
                    ("perform", name, IntRegister.read())
                    if kind < 0.5
                    else (
                        "perform",
                        name,
                        IntRegister.write(rng.randrange(100)),
                    )
                )
            else:
                name = "c%d" % (target - 6)
                op = (
                    ("perform", name, Counter.value())
                    if kind < 0.5
                    else (
                        "perform",
                        name,
                        Counter.increment(rng.randrange(1, 5)),
                    )
                )
            ops.append(op)
            if rng.random() < 0.25:
                ops.append(("child", rng.random() < 0.7))
        program.append((ops, rng.random() < 0.85))
    return program


def _run_program(facade, program):
    """Drive *program*; returns (perform results, final values)."""
    results = []
    for ops, commit_top in program:
        top = facade.begin_top()
        cursor = top
        stack = []
        for op in ops:
            if op[0] == "perform":
                _, name, operation = op
                results.append(cursor.perform(name, operation))
            else:
                # ("child", commit?): push a nested child, run the
                # *next* ops inside it... closed immediately keeps
                # the scripts trivially replayable, so instead the
                # child performs one marker read and closes.
                child = cursor.begin_child()
                value = child.perform("r0", IntRegister.read())
                results.append(value)
                if op[1]:
                    child.commit()
                else:
                    child.abort()
        if commit_top:
            top.commit()
        else:
            top.abort()
        results.append(("closed", commit_top))
    values = {
        name: facade.object_value(name)
        for name in ("r%d" % i for i in range(6))
    }
    values.update(
        ("c%d" % i, facade.object_value("c%d" % i)) for i in range(3)
    )
    return results, values


class TestProgramEquivalence:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_sharded_matches_inprocess_across_seeds(self, scheme):
        for seed in SEEDS:
            program = _program(seed)
            reference = _run_program(
                ThreadSafeEngine(_specs(), policy=scheme), program
            )
            with ShardedEngine(
                _specs(), policy=scheme, workers=2
            ) as sharded:
                auditor = sharded.attach_auditor()
                observed = _run_program(sharded, program)
            assert observed == reference, "seed %d diverged" % seed
            assert auditor.verdict == "clean", (
                "seed %d: %r" % (seed, auditor.report())
            )


class TestScenarioDigests:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_sharded_backend_matches_deterministic_backends(
        self, scheme
    ):
        spec = load_scenario(library_path("inventory"))
        compiled = compile_scenario(spec, 1)
        sim = get_driver("sim").run(compiled, scheme=scheme)
        threadsafe = get_driver("threadsafe").run(
            compiled, scheme=scheme, workers=2
        )
        sharded = get_driver("sharded").run(
            compiled, scheme=scheme, workers=2
        )
        assert sim.digest == threadsafe.digest
        assert sim.digest == sharded.digest
        assert sharded.committed > 0
